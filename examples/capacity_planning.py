#!/usr/bin/env python3
"""Sizing a corporate proxy cache: capacity vs hit rate, by policy.

The paper's simulations assume an unbounded cache ("valid entries are
never evicted"); a real deployment has to pick a disk budget and a
replacement policy.  This example drives one synthetic Microsoft-style
weekday (Table 2 access mix, 10% dynamic requests) through a bounded
cache at several capacities and replacement policies, and reports the
hit-rate curve a capacity planner would use.

Netscape's 1995 claim that "a single local proxy server can reduce
internetwork demands by up to 65%" (the paper's introduction) is
directly checkable here: look at which capacity/policy combinations
reach that bar.

Run:
    python examples/capacity_planning.py [--requests 30000]
"""

import argparse

from repro.analysis.report import format_table, pct
from repro.core import Cache, SimulatorMode, simulate
from repro.core.protocols import AlexProtocol
from repro.core.replacement import POLICIES, make_policy
from repro.workload import MicrosoftProxyWorkload

CAPACITY_FRACTIONS = (0.05, 0.15, 0.40, 1.00)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=30_000,
                        help="weekday request volume to simulate")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = MicrosoftProxyWorkload(
        sites=20, files_per_site=80, requests=args.requests, seed=args.seed
    ).build()
    population_bytes = sum(
        h.obj.size for h in workload.histories if h.obj.cacheable
    )
    print(f"{workload.name}")
    print(f"static population: {population_bytes / 1e6:.1f} MB across "
          f"{sum(1 for h in workload.histories if h.obj.cacheable)} objects\n")

    def run(cache):
        return simulate(
            workload.server(), AlexProtocol.from_percent(20),
            workload.requests, SimulatorMode.OPTIMIZED,
            cache=cache, preload=False, end_time=workload.duration,
        )

    unbounded = run(Cache())
    rows = []
    for fraction in CAPACITY_FRACTIONS:
        capacity = max(1, int(population_bytes * fraction))
        for name in sorted(POLICIES):
            result = run(Cache(capacity_bytes=capacity,
                               policy=make_policy(name)))
            rows.append(
                (
                    f"{fraction:.0%}",
                    name,
                    pct(result.hit_rate),
                    pct(result.miss_rate),
                    f"{result.total_megabytes:.1f}",
                )
            )
    rows.append(
        ("unbounded", "(paper)", pct(unbounded.hit_rate),
         pct(unbounded.miss_rate), f"{unbounded.total_megabytes:.1f}")
    )
    print(format_table(
        ("capacity", "policy", "hit rate", "miss rate", "MB from origin"),
        rows,
        title="One weekday through the proxy, Alex(20%) consistency:",
    ))
    print(
        "\nReading the table: hit rate buys origin bandwidth.  Dynamic"
        "\nrequests (10% of traffic) are uncacheable and cap every row;"
        "\nrecency-aware policies (lru/lfu) approach the unbounded"
        "\nceiling at a fraction of the capacity, while fifo/size need"
        "\nmore room for the same hit rate — the standard mid-90s"
        "\nweb-caching result, reproduced on this workload."
    )


if __name__ == "__main__":
    main()
