#!/usr/bin/env python3
"""Why flattening the cache hierarchy was a fair methodological move.

The paper collapsed Worrell's hierarchical cache into a single cache and
argued (Figure 1) that wherever this changes the invalidation-vs-
time-based comparison, it biases *against* the time-based protocols —
so the paper's pro-time-based conclusions survive the simplification.

This example runs the four Figure 1 scenarios through a real two-level
hierarchy simulator and its collapsed counterpart, printing the measured
traffic side by side.

Run:
    python examples/hierarchy_bias.py
"""

from repro.analysis.report import format_table
from repro.experiments.figure1 import SCENARIOS, _measure


def main() -> None:
    rows = []
    for scenario in SCENARIOS:
        data = _measure(scenario)
        hier, flat = data["hierarchical"], data["collapsed"]

        def ratio(d):
            if d["inval_bytes"] == 0:
                return "n/a"
            return f"{100 * d['time_bytes'] / d['inval_bytes']:.0f}%"

        rows.append(
            (
                scenario.key,
                scenario.description,
                f"{hier['time_bytes']}/{hier['inval_bytes']}",
                ratio(hier),
                f"{flat['time_bytes']}/{flat['inval_bytes']}",
                ratio(flat),
            )
        )

    print(format_table(
        ("id", "scenario", "hier time/inval B", "ratio",
         "flat time/inval B", "ratio"),
        rows,
        title="Figure 1 scenarios, measured (100-byte object, 5-day TTL):",
    ))
    print(
        "\nReading the ratios: a lower time/invalidation ratio favours the"
        "\ntime-based protocol.  Collapsing the hierarchy either leaves the"
        "\nratio unchanged (a, b, c-all, d) or RAISES it (c-partial) — it"
        "\nnever flatters the time-based side.  The paper's single-cache"
        "\nresults therefore under-, not over-state the case for weak"
        "\nconsistency."
    )


if __name__ == "__main__":
    main()
