#!/usr/bin/env python3
"""When plain TTL is the right tool: objects with known lifetimes.

"Although Alex is preferable to TTL, there are cases where TTL might
still be suitable.  For example, when object lifetimes are known a
priori, as is the case with daily news articles or weekly schedules,
TTL is the right choice."  (Section 6)

This example models a small online newspaper: every page is regenerated
each morning at 06:00, readers arrive between 07:00 and 23:00, and the
server advertises the known lifetime via the Expires header (17 hours —
long enough to cover the whole reading day, short enough to lapse before
the next edition).  An Expires-honouring cache then achieves zero
staleness with exactly one revalidation per page per day, while an
adaptive cache must rediscover the daily rhythm after every edition,
paying for the same freshness with many times the server queries.

Run:
    python examples/news_site.py
"""

from repro.analysis.report import format_table, pct
from repro.core import OriginServer, SimulatorMode, simulate
from repro.core.clock import HOUR, days, hours
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import (
    AlexProtocol,
    ExpiresTTLProtocol,
    PollEveryRequestProtocol,
)

PAGES = 8
DAYS = 14
READERS_PER_PAGE_PER_DAY = 120
EDITION_HOUR = 6 * HOUR
READING_OPENS = 7 * HOUR
READING_CLOSES = 23 * HOUR


def build_newspaper() -> tuple[OriginServer, list[tuple[float, str]]]:
    histories = []
    for i in range(PAGES):
        # Yesterday's edition is the content at preload time, so the
        # cache starts with pages that are ~18 hours old.
        created = -days(1) + EDITION_HOUR
        editions = [days(d) + EDITION_HOUR for d in range(1, DAYS + 1)]
        histories.append(
            ObjectHistory(
                WebObject(
                    f"/news/section{i}.html", size=6000, created=created,
                    expires_after=hours(17),
                ),
                ModificationSchedule(created, editions),
            )
        )
    reading_span = READING_CLOSES - READING_OPENS
    requests = sorted(
        (days(d) + READING_OPENS + (reading_span * r)
         / READERS_PER_PAGE_PER_DAY,
         f"/news/section{i}.html")
        for d in range(1, DAYS + 1)
        for i in range(PAGES)
        for r in range(READERS_PER_PAGE_PER_DAY)
    )
    return OriginServer(histories), requests


def main() -> None:
    server, requests = build_newspaper()
    print(f"{PAGES} pages, {DAYS} daily editions, "
          f"{len(requests)} reader requests\n")

    rows = []
    for protocol in (
        ExpiresTTLProtocol(default_ttl=hours(1)),
        AlexProtocol.from_percent(10),
        AlexProtocol.from_percent(100),
        PollEveryRequestProtocol(),
    ):
        result = simulate(
            server, protocol, requests, SimulatorMode.OPTIMIZED,
            end_time=days(DAYS + 1),
        )
        rows.append(
            (
                result.protocol_name,
                f"{result.total_megabytes:.2f}",
                pct(result.stale_hit_rate),
                result.counters.validations,
            )
        )
    print(format_table(
        ("protocol", "bandwidth MB", "stale rate", "validations"), rows
    ))
    print(
        "\nThe Expires-driven cache revalidates exactly once per page per"
        "\nedition (8 pages x 14 days = 112 validations) and never serves"
        "\nyesterday's news.  The adaptive caches stay fresh too, but only"
        "\nby re-deriving the daily rhythm from scratch after every"
        "\nedition — costing 4x to 26x the validations and up to 35% more"
        "\nbandwidth.  Known lifetimes are the one case the paper reserves"
        "\nfor plain TTL."
    )


if __name__ == "__main__":
    main()
