#!/usr/bin/env python3
"""Tune the Alex update threshold for a target stale-hit rate.

The paper's conclusion is that the Alex protocol "can be tuned to"
simultaneously (a) cut bandwidth by an order of magnitude versus an
invalidation protocol, (b) keep the stale rate under 5%, and (c) impose
no more server load than invalidation.  This example performs that
tuning on the synthetic campus traces: it sweeps the threshold, prints
the trade-off curve, and picks the largest threshold that satisfies the
stale-rate budget.

Run:
    python examples/tune_stale_rate.py [--budget 0.05] [--scale 0.5]
"""

import argparse

from repro.analysis.report import format_table, pct
from repro.analysis.sweep import sweep_alex
from repro.core.simulator import SimulatorMode
from repro.workload import build_campus_workloads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.05,
                        help="acceptable stale-hit rate (default 0.05)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="request-volume scale for a faster run")
    args = parser.parse_args()

    workloads = list(
        build_campus_workloads(seed=4, request_scale=args.scale).values()
    )
    sweep = sweep_alex(
        workloads, SimulatorMode.OPTIMIZED,
        thresholds_percent=tuple(range(0, 101, 10)),
    )

    rows = [
        (
            f"{point.parameter:g}%",
            f"{point.metrics['total_mb']:.3f}",
            pct(point.metrics["stale_hit_rate"]),
            int(point.metrics["server_operations"]),
        )
        for point in sweep.points
    ]
    rows.append(
        (
            "invalidation",
            f"{sweep.invalidation['total_mb']:.3f}",
            pct(sweep.invalidation["stale_hit_rate"]),
            int(sweep.invalidation["server_operations"]),
        )
    )
    print(format_table(
        ("threshold", "bandwidth MB", "stale rate", "server ops"), rows,
        title="Alex tuning curve (average of DAS/FAS/HCS):",
    ))

    acceptable = [
        p for p in sweep.points
        if p.metrics["stale_hit_rate"] <= args.budget
    ]
    if not acceptable:
        print(f"\nno threshold meets a {pct(args.budget)} stale budget")
        return
    best = max(acceptable, key=lambda p: p.parameter)
    savings = sweep.invalidation["total_mb"] / best.metrics["total_mb"]
    ops_ratio = (
        best.metrics["server_operations"]
        / sweep.invalidation["server_operations"]
    )
    print(
        f"\nrecommended threshold: {best.parameter:g}%"
        f"\n  stale rate  {pct(best.metrics['stale_hit_rate'])}"
        f" (budget {pct(args.budget)})"
        f"\n  bandwidth   {savings:.1f}x below the invalidation protocol"
        f"\n  server load {ops_ratio:.2f}x the invalidation protocol's"
    )


if __name__ == "__main__":
    main()
