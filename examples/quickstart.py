#!/usr/bin/env python3
"""Quickstart: compare the three cache-consistency protocols on one workload.

Builds a small Worrell-style synthetic workload (flat file lifetimes,
uniform requests), runs TTL, Alex, and the invalidation protocol through
the optimized (If-Modified-Since) simulator, and prints the trade-off
each one makes between bandwidth, staleness, and server load.

Run:
    python examples/quickstart.py
"""

from repro.analysis.report import format_table, pct
from repro.core import SimulatorMode, simulate
from repro.core.clock import hours
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    TTLProtocol,
)
from repro.workload import WorrellWorkload


def main() -> None:
    workload = WorrellWorkload(files=500, requests=25_000, seed=7).build()
    server = workload.server()
    print(f"workload: {workload.name}")
    print(f"  {workload.total_changes} file modifications over "
          f"{workload.duration / 86400:.0f} simulated days\n")

    protocols = [
        TTLProtocol(hours(48)),
        TTLProtocol(hours(500)),
        AlexProtocol.from_percent(10),
        AlexProtocol.from_percent(100),
        InvalidationProtocol(),
    ]
    rows = []
    for protocol in protocols:
        result = simulate(
            server, protocol, workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        )
        rows.append(
            (
                result.protocol_name,
                f"{result.total_megabytes:.1f}",
                pct(result.miss_rate),
                pct(result.stale_hit_rate),
                result.server_operations,
            )
        )

    print(format_table(
        ("protocol", "bandwidth MB", "miss rate", "stale rate",
         "server ops"),
        rows,
    ))
    print(
        "\nThe invalidation protocol never returns stale data but pays a"
        "\nmessage per modification; the weakly consistent protocols trade"
        "\na small stale rate for less traffic — the paper's core result."
    )


if __name__ == "__main__":
    main()
