#!/usr/bin/env python3
"""Self-tuning cache consistency — the paper's future work, running.

Section 5: "We are investigating algorithms by which caches can be
self-tuning, by adjusting parameters based on the data type and the
history of accesses to items of that type."

This example runs the self-tuning protocol over the synthetic campus
traces and shows (a) the per-file-type thresholds it converges to, and
(b) that it lands in the tuned-Alex operating regime without anyone
choosing a threshold.

Run:
    python examples/self_tuning.py
"""

from repro.analysis.report import format_table, pct
from repro.core import SimulatorMode, simulate
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    SelfTuningProtocol,
)
from repro.workload import build_campus_workloads


def main() -> None:
    workloads = build_campus_workloads(seed=8)

    rows = []
    learned: dict[str, dict[str, float]] = {}
    for name, workload in workloads.items():
        for protocol in (
            SelfTuningProtocol(initial_threshold=0.10),
            AlexProtocol.from_percent(10),
            InvalidationProtocol(),
        ):
            result = simulate(
                workload.server(), protocol, workload.requests,
                SimulatorMode.OPTIMIZED, end_time=workload.duration,
            )
            rows.append(
                (
                    name,
                    result.protocol_name,
                    f"{result.total_megabytes:.3f}",
                    pct(result.stale_hit_rate),
                    result.server_operations,
                )
            )
            if isinstance(protocol, SelfTuningProtocol):
                learned[name] = protocol.snapshot()

    print(format_table(
        ("trace", "protocol", "bandwidth MB", "stale rate", "server ops"),
        rows,
    ))

    print("\nlearned per-type thresholds (fraction of object age):")
    type_rows = []
    for name, thresholds in learned.items():
        for file_type, value in sorted(thresholds.items()):
            type_rows.append((name, file_type, f"{value:.3f}"))
    print(format_table(("trace", "file type", "threshold"), type_rows))
    print(
        "\nStable types (gif/jpg, long Table 2 life-spans) drift toward"
        "\nlong check intervals; types that burn the cache drift down —"
        "\nno manual parameter selection required."
    )


if __name__ == "__main__":
    main()
