#!/usr/bin/env python3
"""A campus proxy cache replaying a (synthetic) server log from disk.

This walks the paper's full pipeline end to end:

1. synthesize a month of the HCS campus server's traffic (Table 1 row);
2. write it to disk as an extended Common-Log-Format file — the format
   the paper's modified servers produced (Last-Modified per request);
3. read the log back and drive a proxy cache from it;
4. report the consistency statistics a cache operator would care about.

Run:
    python examples/campus_proxy.py [--log PATH]
"""

import argparse
import tempfile
from pathlib import Path

from repro.analysis.report import format_table, pct
from repro.core import SimulatorMode, simulate
from repro.core.protocols import AlexProtocol, InvalidationProtocol
from repro.trace import (
    mutability_from_trace,
    read_trace,
    trace_from_workload,
    write_trace,
)
from repro.workload import HCS, CampusWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--log", type=Path, default=None,
                        help="where to write the synthetic log")
    args = parser.parse_args()
    log_path = args.log or Path(tempfile.gettempdir()) / "hcs-month.log"

    # 1-2. Synthesize and persist the trace.
    workload = CampusWorkload(HCS, seed=1995).build()
    trace = trace_from_workload(workload)
    lines = write_trace(trace, log_path)
    print(f"wrote {lines} log lines to {log_path}")

    # 3. Read it back, as a real proxy study would.
    loaded = read_trace(log_path)
    stats = mutability_from_trace(loaded)
    print("\nobservable mutability statistics (cf. paper Table 1, HCS row):")
    print(format_table(
        ("files", "requests", "% remote", "observed changes",
         "% mutable", "% very mutable"),
        [stats.as_row()[1:]],
    ))

    # 4. Drive the proxy under a tuned Alex protocol and the
    #    invalidation baseline.
    rows = []
    for protocol in (AlexProtocol.from_percent(10), InvalidationProtocol()):
        result = simulate(
            workload.server(), protocol, loaded.requests(),
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        )
        rows.append(
            (
                result.protocol_name,
                f"{result.total_megabytes:.2f}",
                pct(result.stale_hit_rate),
                result.server_operations,
            )
        )
    print("\nproxy behaviour over the month:")
    print(format_table(
        ("protocol", "bandwidth MB", "stale rate", "server ops"), rows
    ))
    print(
        "\nA 10% update threshold keeps stale responses well under the"
        "\npaper's 5% bar while using a fraction of the invalidation"
        "\nprotocol's bandwidth — with zero server-side bookkeeping."
    )


if __name__ == "__main__":
    main()
