# Convenience targets for the reproduction.

PYTHON ?= python
# Process-pool size for experiment runs (see docs/PERFORMANCE.md).
WORKERS ?= 2

.PHONY: install dev test bench bench-timings bench-baseline experiments lint typecheck verify live-smoke live-chaos trace-smoke snapshot snapshot-check examples clean

install:
	pip install -e .

dev:
	pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

# Perf-trajectory sample (schema repro.bench/1, docs/OBSERVABILITY.md):
# run every experiment at reduced scale, write BENCH_<date>.json, and
# gate overall requests/sec against the committed conservative
# baseline.  The historical pytest-benchmark micro-suite remains
# available as 'make bench-timings'.
# Extra flags (e.g. BENCH_FLAGS='--min-speedup 1.0' in the CI smoke
# gate) ride along via BENCH_FLAGS.
bench:
	$(PYTHON) -m repro.obs.bench --workers $(WORKERS) \
	  --baseline benchmarks/BENCH_baseline.json $(BENCH_FLAGS)

bench-timings:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Refresh the committed baseline: measure, then halve the requests/sec
# into a conservative floor so slower CI runners don't trip the 30%
# gate ("Bench baseline policy" in docs/OBSERVABILITY.md).
bench-baseline:
	$(PYTHON) -m repro.obs.bench --workers $(WORKERS) --stamp baseline \
	  --out benchmarks
	$(PYTHON) -c "import json, pathlib; \
	  p = pathlib.Path('benchmarks/BENCH_baseline.json'); \
	  d = json.loads(p.read_text()); \
	  d['requests_per_second'] = round(d['requests_per_second'] / 2, 1); \
	  d['note'] = 'conservative floor: measured req/s halved by make bench-baseline'; \
	  p.write_text(json.dumps(d, indent=2, sort_keys=True) + chr(10))"

experiments:
	$(PYTHON) -m repro.experiments all

# Static invariant analysis (RPR001-RPR009, see docs/DEVELOPING.md):
# determinism, unit discipline, protocol registration, oracle
# exhaustiveness, hygiene, observability-name discipline, plus the
# project-wide dataflow rules (async/lock discipline, fastpath
# transcription drift, interprocedural units).  Exit 1 on any
# non-baselined error.  '--format json|github' for machine output.
lint:
	$(PYTHON) -m repro.lint src benchmarks examples

# Strict typing gate over the simulation core, the fast path, the
# sweep engine, the differential oracle, the fault layer, the
# observability layer, and the live origin/proxy mode (config in
# pyproject.toml).
# Skips with a notice
# when mypy is not installed (it ships in the '.[dev]' extra; CI always
# runs it).
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
	  $(PYTHON) -m mypy src/repro/core src/repro/fastpath src/repro/runtime src/repro/verify src/repro/faults src/repro/obs src/repro/live; \
	else \
	  echo "typecheck: mypy not installed (pip install -e '.[dev]'); skipped"; \
	fi

# Live-mode smoke gate (docs/LIVE.md): synthesize a reduced trace,
# replay it through the real asyncio origin+proxy pair on loopback
# sockets, and require the live counters and bandwidth ledger to match
# a simulation of the same trace cell-for-cell (the oracle's live leg).
live-smoke:
	$(PYTHON) -m repro.cli synthesize hcs .live-smoke.log --seed 7 \
	  --scale 0.02
	$(PYTHON) -m repro.cli replay .live-smoke.log --protocol alex \
	  --parameter 10 --verify
	$(PYTHON) -m repro.cli replay .live-smoke.log --protocol invalidation \
	  --verify
	rm .live-smoke.log
	@echo "live-smoke: live replay matched simulation exactly"

# Chaos-hardened live gate (docs/LIVE.md): the same differential
# oracle, but with concurrent keep-alive connections, socket-level
# fault injection on both hops, injected invalidation-message faults,
# and a SIGKILLed proxy restarting from its journal.  Every leg must
# still match a simulation of the same trace cell-for-cell.
live-chaos:
	rm -f .live-chaos.log .live-chaos-journal.jsonl
	$(PYTHON) -m repro.cli synthesize hcs .live-chaos.log --seed 7 \
	  --scale 0.02
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol alex \
	  --parameter 10 --verify --connections 4 --keepalive
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol selftuning \
	  --parameter 4 --verify --connections 4 --keepalive
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol invalidation \
	  --verify --connections 2 --keepalive --chaos "loss=0.25,seed=7"
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol leased \
	  --parameter 1 --verify --connections 2 --keepalive \
	  --chaos "delay=0.002,truncate=0.3,seed=11"
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol invalidation \
	  --verify --connections 2 --keepalive \
	  --chaos "reset=0.3,dribble=0.3,seed=3"
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol invalidation \
	  --verify --faults "downtime=2h@50h,delay=30s,seed=3"
	$(PYTHON) -m repro.cli replay .live-chaos.log --protocol invalidation \
	  --verify --journal .live-chaos-journal.jsonl --crash-after 200 \
	  --connections 2 --keepalive
	rm .live-chaos.log .live-chaos-journal.jsonl
	@echo "live-chaos: concurrent, chaotic, faulted, and crash-restart" \
	  "replays matched simulation exactly"

# Causal-trace gate (docs/OBSERVABILITY.md, "Cross-process causal
# tracing"): a chaotic traced replay must write three per-role
# repro.trace/1 files that merge into a violation-free repro.trace/2
# timeline (`trace merge` exits 1 on any happens-before violation),
# and the summary must carry the schema id with its retry count equal
# to its own retry-mark count.
trace-smoke:
	rm -f .trace-smoke.log .trace-smoke.jsonl .trace-smoke.proxy.jsonl \
	  .trace-smoke.origin.jsonl
	$(PYTHON) -m repro.cli synthesize hcs .trace-smoke.log --seed 7 \
	  --scale 0.02
	$(PYTHON) -m repro.cli replay .trace-smoke.log --protocol alex \
	  --parameter 10 --verify --connections 2 --keepalive \
	  --chaos "loss=0.25,truncate=0.2,seed=7" --trace .trace-smoke.jsonl
	$(PYTHON) -m repro.cli trace merge .trace-smoke.jsonl > /dev/null
	$(PYTHON) -m repro.cli trace summarize .trace-smoke.jsonl \
	  --format json | $(PYTHON) -c "import json, sys; \
	  summary = json.load(sys.stdin); \
	  assert summary['schema'] == 'repro.trace.summary/1', summary['schema']; \
	  assert summary['retries'] == summary['marks'].get('live.trace.retry', 0); \
	  assert summary['exchanges'] > 0 and summary['chaos_injected'] > 0"
	$(PYTHON) -m repro.cli trace critical-path .trace-smoke.jsonl \
	  --format json > /dev/null
	rm -f .trace-smoke.log .trace-smoke.jsonl .trace-smoke.proxy.jsonl \
	  .trace-smoke.origin.jsonl
	@echo "trace-smoke: chaotic traced replay merged into a validated" \
	  "cross-process timeline"

# Consistency-oracle gate (see docs/PROTOCOLS.md, "Invariants &
# verification"): static analysis + typing first, then the
# differential/metamorphic property suite, then replay every experiment
# at reduced scale with each simulation checked event-for-event against
# the brute-force spec model.
verify: lint typecheck
	$(PYTHON) -m pytest tests/verify/ -q
	$(PYTHON) -m repro.experiments all --scale 0.25 --workers $(WORKERS) \
	  --verify > /dev/null
	@echo "verify: lint + typecheck + property suite + oracle-checked replay passed"

# Regenerate the committed full-scale results snapshot and SVG figures.
snapshot:
	$(PYTHON) -m repro.experiments all --svg docs/figures > docs/RESULTS.txt.tmp 2>&1
	{ printf 'RESULTS SNAPSHOT — full-scale run of every experiment\n'; \
	  printf '======================================================\n\n'; \
	  printf 'Generated by:  python -m repro.experiments all   (scale 1.0, seed 0)\n'; \
	  printf 'Regenerate with the same command; output is deterministic.\n\n'; \
	  printf 'This file is a committed convenience snapshot of the ASCII figures,\n'; \
	  printf 'data tables, and shape-check verdicts.  EXPERIMENTS.md narrates the\n'; \
	  printf 'paper-vs-measured comparison; DESIGN.md maps experiments to modules.\n\n'; \
	  cat docs/RESULTS.txt.tmp; } > docs/RESULTS.txt
	rm docs/RESULTS.txt.tmp

# CI-friendly regression gate: rerun every experiment at reduced scale
# with the parallel engine and diff the verdict lines against the
# committed expectation.  Catches rewired runners silently changing or
# breaking a shape check.  (~10 s; engine output is byte-identical for
# any WORKERS value, see docs/PERFORMANCE.md.)  --verify additionally
# replays every simulation through the repro.verify oracle: any counter
# or ledger divergence aborts the run before the diff.
snapshot-check:
	$(PYTHON) -m repro.experiments all --scale 0.25 --workers $(WORKERS) \
	  --verify | grep -E '^(== |  -> )' > .snapshot-check.out
	diff docs/snapshot-check.expected .snapshot-check.out \
	  && rm .snapshot-check.out \
	  && echo "snapshot-check: verdicts match docs/snapshot-check.expected"

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) "$$f"; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
