"""Profiling hooks: phase timers, the protocol wrapper, reporting."""

from __future__ import annotations

from repro.core.clock import hours
from repro.core.protocols import TTLProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.obs import profile
from repro.workload.worrell import WorrellWorkload


class TestPhaseTimers:
    def test_phase_noop_when_disabled(self):
        with profile.phase("harvest"):
            pass
        assert profile.phase_breakdown() == []

    def test_phase_accumulates_when_enabled(self):
        profile.enable()
        with profile.phase("harvest"):
            pass
        with profile.phase("harvest"):
            pass
        rows = profile.phase_breakdown()
        assert [name for name, _ in rows] == ["harvest"]
        assert rows[0][1] >= 0.0

    def test_breakdown_orders_known_phases(self):
        profile.add_phase("harvest", 2.0)
        profile.add_phase("fork", 1.0)
        profile.add_phase("custom", 9.0)  # extras trail in sorted order
        assert profile.phase_breakdown() == [
            ("fork", 1.0), ("harvest", 2.0), ("custom", 9.0)
        ]

    def test_reset_keeps_enabled_flag(self):
        profile.enable()
        profile.add_phase("serial", 1.0)
        profile.reset()
        assert profile.phase_breakdown() == []
        assert profile.is_enabled()


class TestCaptureMerge:
    def test_delta_and_merge_are_additive(self):
        profile.add_phase("harvest", 1.0)
        profile.add_hook("TTLProtocol.is_fresh", 0.25)
        snap = profile.snapshot()
        profile.add_phase("harvest", 0.5)
        profile.add_hook("TTLProtocol.is_fresh", 0.25)
        payload = profile.delta(snap)
        assert payload["phases"] == {"harvest": 0.5}
        assert payload["hook_calls"] == {"TTLProtocol.is_fresh": 1}
        profile.merge(payload)  # fold the delta back in once more
        assert dict(profile.phase_breakdown())["harvest"] == 2.0
        assert profile.hook_table()[0][1] == 3  # 2 real calls + 1 merged


class TestProfiledProtocol:
    def test_transparent_to_the_simulation(self):
        workload = WorrellWorkload(files=10, requests=300, seed=5).build()
        plain = simulate(
            workload.server(), TTLProtocol(hours(10)), workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        )
        profiled = simulate(
            workload.server(),
            profile.ProfiledProtocol(TTLProtocol(hours(10))),
            workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        )
        assert profiled.counters == plain.counters
        assert profiled.bandwidth == plain.bandwidth
        assert profiled.protocol_name == plain.protocol_name

    def test_hooks_keyed_by_wrapped_class(self):
        wrapped = profile.ProfiledProtocol(TTLProtocol(hours(1)))
        assert wrapped.name == TTLProtocol(hours(1)).name
        assert wrapped.wants_invalidations == (
            TTLProtocol(hours(1)).wants_invalidations
        )
        workload = WorrellWorkload(files=10, requests=200, seed=5).build()
        simulate(
            workload.server(), wrapped, workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        )
        hooks = {name for name, _, _ in profile.hook_table()}
        assert "TTLProtocol.is_fresh" in hooks
        assert "TTLProtocol.on_stored" in hooks

    def test_attribute_delegation(self):
        inner = TTLProtocol(hours(2))
        wrapped = profile.ProfiledProtocol(inner)
        assert wrapped.ttl == inner.ttl
        assert "ProfiledProtocol" in repr(wrapped)


class TestReport:
    def test_render_report_shape(self):
        profile.add_phase("fork", 0.1)
        profile.add_phase("harvest", 0.9)
        profile.add_hook("AlexProtocol.is_fresh", 0.5)
        text = profile.render_report(total_wall=2.0)
        assert "engine phase breakdown:" in text
        assert "fork" in text and "harvest" in text
        assert "total wall" in text
        assert "AlexProtocol.is_fresh" in text
        assert "1 calls" in text

    def test_render_report_empty_hints(self):
        text = profile.render_report()
        assert "no phases recorded" in text
        assert "no hooks timed" in text
