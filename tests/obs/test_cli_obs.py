"""The CLI surface of the obs layer: flags, renderers, failure paths."""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.verify import ConsistencyViolation, set_enabled
from repro.verify.oracle import OracleReport


@pytest.fixture(autouse=True)
def verify_disabled_after():
    # Same idiom as tests/test_cli.py: --verify flips a process-global
    # flag that must not leak into other tests.
    yield
    set_enabled(False)


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("clf") / "tiny.log"
    status = cli.main([
        "synthesize", "worrell", str(path), "--seed", "7", "--scale", "0.005",
    ])
    assert status == 0
    return path


class TestSimulateFlags:
    def test_trace_and_metrics_written(self, trace_file, tmp_path, capsys):
        trace_out = tmp_path / "run.jsonl"
        metrics_out = tmp_path / "run.metrics.json"
        status = cli.main([
            "simulate", str(trace_file), "--protocol", "alex",
            "--parameter", "10",
            "--trace", str(trace_out), "--metrics", str(metrics_out),
        ])
        assert status == 0
        captured = capsys.readouterr()
        assert "trace: wrote" in captured.err
        assert "metrics: wrote" in captured.err

        lines = trace_out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"type": "header", "schema": obs_trace.SCHEMA}
        records = [json.loads(line) for line in lines[1:]]
        kinds = {r["kind"] for r in records if r["type"] == "event"}
        assert kinds  # the tee saw the simulator's observer stream

        dump = json.loads(metrics_out.read_text())
        assert dump["schema"] == obs_registry.SCHEMA
        event_total = sum(
            value for name, value in dump["counters"].items()
            if name.startswith("sim.event.")
        )
        assert event_total > 0
        assert {f"sim.event.{kind}" for kind in kinds} <= set(
            dump["counters"]
        )

    def test_nothing_installed_without_flags(self, trace_file):
        status = cli.main([
            "simulate", str(trace_file), "--protocol", "ttl",
            "--parameter", "5",
        ])
        assert status == 0
        assert obs_registry.active() is None
        assert obs_trace.active() is None

    def test_simulate_output_identical_with_tracing(
        self, trace_file, tmp_path, capsys
    ):
        cli.main(["simulate", str(trace_file)])
        bare = capsys.readouterr().out
        cli.main([
            "simulate", str(trace_file),
            "--trace", str(tmp_path / "t.jsonl"),
            "--metrics", str(tmp_path / "m.json"),
        ])
        traced = capsys.readouterr().out
        assert traced == bare


class TestSweepFlags:
    def test_sweep_workers_metrics_verify(self, trace_file, tmp_path, capsys):
        metrics_out = tmp_path / "sweep.metrics.json"
        status = cli.main([
            "sweep", str(trace_file), "--protocol", "alex", "--step", "50",
            "--workers", "2", "--verify", "--metrics", str(metrics_out),
        ])
        assert status == 0
        captured = capsys.readouterr()
        # Diagnostics land on stderr; the result table on stdout is
        # byte-identical with and without --verify.
        assert "verified, zero divergence" in captured.err
        dump = json.loads(metrics_out.read_text())
        # 3 alex points (0/50/100) + the invalidation baseline, each
        # oracle-checked — worker increments merged into the parent dump.
        assert dump["counters"]["verify.runs"] == 4.0

    def test_sweep_output_identical_across_worker_counts(
        self, trace_file, capsys
    ):
        cli.main(["sweep", str(trace_file), "--step", "50", "--workers", "1"])
        serial = capsys.readouterr().out
        cli.main(["sweep", str(trace_file), "--step", "50", "--workers", "3"])
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestVerifyFailurePath:
    """Satellite: the failure path must report verified_runs too."""

    def _raise_violation(self, *args, **kwargs):
        raise ConsistencyViolation(OracleReport(
            protocol_name="alex-0.10", mode="optimized",
            divergences=["counter mismatch: stale_hits 3 != 4"],
        ))

    def test_simulate_failure_reports_verified_runs(
        self, trace_file, capsys, monkeypatch
    ):
        monkeypatch.setattr(cli, "checked_simulate", self._raise_violation)
        status = cli.main([
            "simulate", str(trace_file), "--verify",
            "--faults", "loss=0.2,retries=2,seed=3",
        ])
        assert status == 1
        err = capsys.readouterr().err
        assert "oracle divergence for alex-0.10" in err
        assert "0 run(s) verified before the divergence" in err
        assert "fault spec in effect" in err
        assert "retries=2" in err

    def test_sweep_failure_reports_verified_runs(
        self, trace_file, capsys, monkeypatch
    ):
        calls = {"n": 0}
        real = cli.checked_simulate

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                self._raise_violation()
            return real(*args, **kwargs)

        monkeypatch.setattr(cli, "checked_simulate", flaky)
        status = cli.main([
            "sweep", str(trace_file), "--step", "50", "--verify",
        ])
        assert status == 1
        err = capsys.readouterr().err
        assert "2 run(s) verified before the divergence" in err


class TestMetricsSubcommand:
    def write_dump(self, tmp_path):
        registry = obs_registry.MetricsRegistry()
        registry.counter("cache.stores").add(7.0)
        registry.histogram("sim.transfer_bytes").observe(1024.0)
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(registry.as_dict()))
        return path

    def test_prom_rendering(self, tmp_path, capsys):
        status = cli.main([
            "metrics", str(self.write_dump(tmp_path)), "--format", "prom",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro_cache_stores 7\n" in out
        assert 'repro_sim_transfer_bytes_bucket{le="+Inf"} 1' in out

    def test_json_rendering_roundtrips(self, tmp_path, capsys):
        status = cli.main([
            "metrics", str(self.write_dump(tmp_path)), "--format", "json",
        ])
        assert status == 0
        rendered = json.loads(capsys.readouterr().out)
        assert rendered["counters"]["cache.stores"] == 7.0

    def test_bad_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "not/metrics"}')
        for fmt in ("json", "prom"):
            status = cli.main(["metrics", str(bad), "--format", fmt])
            assert status == 2
        assert "not/metrics" in capsys.readouterr().err

    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        status = cli.main(["metrics", str(tmp_path / "absent.json")])
        assert status == 2
        assert "absent.json" in capsys.readouterr().err


class TestProfileSubcommand:
    def test_parallel_profile_report(self, capsys):
        status = cli.main([
            "profile", "--protocol", "alex", "--scale", "0.02",
            "--workers", "2", "--step", "50",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "engine phase breakdown:" in out
        for phase in ("fork", "dispatch", "harvest", "reassembly"):
            assert phase in out
        assert "AlexProtocol.is_fresh" in out

    def test_serial_profile_report(self, capsys):
        status = cli.main([
            "profile", "--protocol", "ttl", "--scale", "0.02",
            "--workers", "1", "--step", "250",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "serial" in out
        assert "TTLProtocol.is_fresh" in out
