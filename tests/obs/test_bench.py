"""The bench emitter: schema validation, baseline gate, end-to-end run."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.bench import (
    EXPERIMENT_KEYS,
    REQUIRED_KEYS,
    SCHEMA,
    check_baseline,
    main,
    validate,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"


def minimal_document(**overrides) -> dict:
    document = {
        "schema": SCHEMA,
        "generated": "2026-01-01",
        "scale": 0.25,
        "seed": 0,
        "workers": 1,
        "engine": "fast",
        "wall_seconds": 1.0,
        "simulated_requests": 1000,
        "requests_per_second": 1000.0,
        "speedup_vs_reference": 1.0,
        "peak_grid_size": 4,
        "experiments": [
            {
                "id": "figure2",
                "wall_seconds": 1.0,
                "simulated_requests": 1000,
                "requests_per_second": 1000.0,
                "grid_points": 4,
                "peak_grid_size": 4,
                "all_passed": True,
            }
        ],
    }
    document.update(overrides)
    return document


class TestValidate:
    def test_minimal_document_valid(self):
        validate(minimal_document())

    def test_committed_baseline_is_schema_valid(self):
        document = json.loads(COMMITTED_BASELINE.read_text())
        validate(document)
        # The committed floor runs at the snapshot-check scale, where
        # every shape check holds.
        assert document["scale"] == 0.25
        assert all(e["all_passed"] for e in document["experiments"])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate(minimal_document(schema="repro.bench/0"))

    @pytest.mark.parametrize("key", REQUIRED_KEYS[1:])
    def test_rejects_missing_top_level_key(self, key):
        document = minimal_document()
        del document[key]
        with pytest.raises(ValueError, match=key):
            validate(document)

    @pytest.mark.parametrize("key", EXPERIMENT_KEYS)
    def test_rejects_missing_experiment_key(self, key):
        document = minimal_document()
        del document["experiments"][0][key]
        with pytest.raises(ValueError, match=key):
            validate(document)


class TestBaselineGate:
    def test_within_tolerance_passes(self):
        baseline = minimal_document(requests_per_second=1000.0)
        document = minimal_document(requests_per_second=701.0)
        assert check_baseline(document, baseline) == []

    def test_regression_beyond_tolerance_fails(self):
        baseline = minimal_document(requests_per_second=1000.0)
        document = minimal_document(requests_per_second=699.0)
        findings = check_baseline(document, baseline)
        assert len(findings) == 1
        assert "regressed" in findings[0]

    def test_tolerance_is_configurable(self):
        baseline = minimal_document(requests_per_second=1000.0)
        document = minimal_document(requests_per_second=950.0)
        assert check_baseline(document, baseline, max_regression=0.10) == []
        assert check_baseline(document, baseline, max_regression=0.01)


class TestEndToEnd:
    def test_main_emits_schema_valid_sample_and_gates(self, tmp_path, capsys):
        # An impossible floor forces the regression exit path while one
        # real reduced-scale run checks the emitter end to end.
        impossible = minimal_document(requests_per_second=1.0e12)
        baseline_path = tmp_path / "BENCH_impossible.json"
        baseline_path.write_text(json.dumps(impossible))
        status = main([
            "--scale", "0.02", "--seed", "0", "--out", str(tmp_path),
            "--stamp", "test", "--baseline", str(baseline_path),
        ])
        assert status == 1  # regression gate fired (shape checks may
        # also fail at this tiny scale; either way the document exists)
        err = capsys.readouterr().err
        assert "regressed" in err
        emitted = tmp_path / "BENCH_test.json"
        document = json.loads(emitted.read_text())
        validate(document)
        assert document["scale"] == 0.02
        assert document["generated"] == "test"
        assert document["simulated_requests"] > 0
        ids = [e["id"] for e in document["experiments"]]
        assert "figure2" in ids and len(ids) == len(set(ids))
