"""Prometheus text exposition: sanitization, cumulation, golden file."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.prom import CONTENT_TYPE, metric_name, render
from repro.obs.registry import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def golden_registry() -> MetricsRegistry:
    """The deterministic registry the golden file was rendered from.

    Deliberately includes the live-mode counters (``live.retries``,
    ``live.chaos.injected``, ``live.connection_errors``) so a renderer
    change that mishandles any of them breaks the golden byte-compare —
    new metric families must not silently skip Prometheus exposition.
    """
    registry = MetricsRegistry()
    registry.counter("cache.stores").add(353.0)
    registry.counter("sim.event.stale_hit").add(12.0)
    registry.counter("live.chaos.injected").add(19.0)
    registry.counter("live.retries").add(19.0)
    registry.counter("live.connection_errors").add(2.0)
    registry.gauge("sweep.grid_points").set(11.0)
    hist = registry.histogram("sim.transfer_bytes")
    for value in (10.0, 2048.0, 2048.0, 5.0e7):
        hist.observe(value)
    return registry


class TestRender:
    def test_golden_file_byte_identical(self):
        assert render(golden_registry().as_dict()) == GOLDEN.read_text()

    def test_live_metrics_are_exposed(self):
        text = render(golden_registry().as_dict())
        assert "repro_live_chaos_injected 19\n" in text
        assert "repro_live_retries 19\n" in text
        assert "repro_live_connection_errors 2\n" in text

    def test_name_sanitization(self):
        assert metric_name("sim.event.stale_hit") == (
            "repro_sim_event_stale_hit"
        )
        assert metric_name("weird-name/x") == "repro_weird_name_x"

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="repro.metrics/1"):
            render({"schema": "something/else"})

    def test_integral_floats_render_as_ints(self):
        registry = MetricsRegistry()
        registry.counter("cache.stores").add(3.0)
        registry.gauge("sweep.grid_points").set(2.5)
        text = render(registry.as_dict())
        assert "repro_cache_stores 3\n" in text
        assert "repro_sweep_grid_points 2.5\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render(golden_registry().as_dict())
        lines = [l for l in text.splitlines() if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # cumulative by construction
        assert lines[-1].startswith(
            'repro_sim_transfer_bytes_bucket{le="+Inf"}'
        )
        assert counts[-1] == 4

    def test_empty_dump_renders_empty(self):
        assert render(MetricsRegistry().as_dict()) == ""

    def test_content_type_is_prometheus_004(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4"
