"""The trace sink, the observer tee, and the JSONL schema."""

from __future__ import annotations

import json

import pytest

from repro.core.simulator import EVENT_KINDS
from repro.obs import names
from repro.obs.registry import MetricsRegistry, installed as metrics_installed
from repro.obs.trace import (
    EVENT_METRICS,
    SCHEMA,
    TraceSink,
    installed,
    instrumented_observer,
    read_jsonl,
    span,
    write_jsonl,
)


class TestSink:
    def test_event_and_span_records(self):
        sink = TraceSink()
        sink.event("hit", 12.5, "/a")
        sink.span("engine.task", 0.25, {"index": 3})
        sink.span("engine.map", 0.5)
        assert len(sink) == 3
        assert sink.records[0] == {
            "type": "event", "kind": "hit", "t": 12.5, "id": "/a"
        }
        assert sink.records[1]["meta"] == {"index": 3}
        assert "meta" not in sink.records[2]

    def test_events_filters_spans_out(self):
        sink = TraceSink()
        sink.span("engine.map", 0.1)
        sink.event("miss", 1.0, "/b")
        assert sink.events() == [
            {"type": "event", "kind": "miss", "t": 1.0, "id": "/b"}
        ]

    def test_span_helper_noop_without_sink(self):
        span("engine.map", 0.1, tasks=3)  # must not raise

    def test_span_helper_records_on_active_sink(self):
        sink = TraceSink()
        with installed(sink):
            span("engine.map", 0.1, tasks=3)
        assert sink.records == [
            {"type": "span", "name": "engine.map", "wall": 0.1,
             "meta": {"tasks": 3}}
        ]


class TestObserverTee:
    def test_passthrough_when_fully_disabled(self):
        def observer(kind, t, oid):
            pass

        assert instrumented_observer(observer) is observer
        assert instrumented_observer(None) is None

    def test_tee_records_counts_and_forwards(self):
        seen = []
        sink = TraceSink()
        registry = MetricsRegistry()
        with installed(sink), metrics_installed(registry):
            tee = instrumented_observer(
                lambda kind, t, oid: seen.append((kind, t, oid))
            )
            assert tee is not None
            tee("stale_hit", 42.0, "/x")
            tee("stale_hit", 43.0, "/x")
            tee("miss", 44.0, "/y")
        assert seen == [
            ("stale_hit", 42.0, "/x"),
            ("stale_hit", 43.0, "/x"),
            ("miss", 44.0, "/y"),
        ]
        assert [r["kind"] for r in sink.events()] == [
            "stale_hit", "stale_hit", "miss"
        ]
        dump = registry.as_dict()["counters"]
        assert dump["sim.event.stale_hit"] == 2.0
        assert dump["sim.event.miss"] == 1.0

    def test_tee_without_downstream_observer(self):
        sink = TraceSink()
        with installed(sink):
            tee = instrumented_observer(None)
            assert tee is not None
            tee("hit", 1.0, "/a")
        assert sink.events()[0]["kind"] == "hit"


class TestEventAlphabet:
    def test_event_metrics_bijective_with_simulator_kinds(self):
        # Every simulator event kind has exactly one tee counter; the
        # fault_* kinds included.  RPR006 keeps the values declared.
        assert set(EVENT_METRICS) == set(EVENT_KINDS)
        values = list(EVENT_METRICS.values())
        assert len(values) == len(set(values))
        for kind, metric in EVENT_METRICS.items():
            assert metric == f"sim.event.{kind}"
            assert names.is_metric(metric)

    def test_span_names_declared(self):
        for span_name in ("engine.map", "engine.task", "sweep.run",
                          "verify.run"):
            assert names.is_span(span_name)


class TestJsonl:
    def test_roundtrip_with_header(self, tmp_path):
        sink = TraceSink()
        sink.event("hit", 1.0, "/a")
        sink.span("engine.map", 0.5, {"tasks": 2})
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(sink, path) == 3  # header + 2 records
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"type": "header", "schema": SCHEMA}
        assert read_jsonl(path) == sink.records

    def test_read_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"type": "event"}\n')
        with pytest.raises(ValueError, match="header"):
            read_jsonl(path)
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_jsonl(path)
