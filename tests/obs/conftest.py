"""Shared obs fixtures: pristine module state around every test.

The observability layer is deliberately module-global (one registry /
sink / profiler per process, inherited by forked workers), so tests
must not leak installations into each other — or into the rest of the
suite, where a stray registry would silently instrument unrelated
simulations.
"""

from __future__ import annotations

import pytest

from repro.obs import profile as obs_profile
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.workload.worrell import WorrellWorkload


@pytest.fixture(autouse=True)
def pristine_obs_state():
    previous_registry = obs_registry.install(None)
    previous_sink = obs_trace.install(None)
    obs_profile.disable()
    obs_profile.reset()
    yield
    obs_registry.install(previous_registry)
    obs_trace.install(previous_sink)
    obs_profile.disable()
    obs_profile.reset()


@pytest.fixture(scope="module")
def workload():
    """A small deterministic workload shared by the equivalence tests."""
    return WorrellWorkload(files=20, requests=600, seed=3).build()
