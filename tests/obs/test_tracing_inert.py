"""Tracing off must change nothing; tracing on must change no *output*.

Two guarantees pinned here:

* with no registry and no sink installed, the instrumented code paths
  are the historical ones — simulation results are byte-identical to
  what an instrumented-but-disabled run produces;
* with tracing ON, simulation outputs and experiment verdicts are still
  byte-identical — observability measures, never perturbs.  The Table 2
  experiment exercises :class:`repro.trace.sampler.DailySampler` under
  the tee, the satellite case from the issue.
"""

from __future__ import annotations

import pytest

from repro.core.clock import hours
from repro.core.protocols import AlexProtocol, TTLProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.obs.registry import MetricsRegistry, installed as metrics_installed
from repro.obs.trace import TraceSink, installed as trace_installed
from repro.workload.worrell import WorrellWorkload


@pytest.fixture(scope="module")
def small_workload():
    return WorrellWorkload(files=15, requests=500, seed=11).build()


def run_once(workload, protocol):
    return simulate(
        workload.server(), protocol, workload.requests,
        SimulatorMode.OPTIMIZED, end_time=workload.duration,
    )


class TestSimulationUnperturbed:
    @pytest.mark.parametrize("make_protocol", [
        lambda: TTLProtocol(hours(10)),
        lambda: AlexProtocol(0.2),
    ])
    def test_results_identical_with_tracing_on(
        self, small_workload, make_protocol
    ):
        bare = run_once(small_workload, make_protocol())
        with metrics_installed(MetricsRegistry()), \
                trace_installed(TraceSink()):
            traced = run_once(small_workload, make_protocol())
        assert traced.counters == bare.counters
        assert traced.bandwidth == bare.bandwidth
        assert traced.total_megabytes == bare.total_megabytes

    def test_tee_sees_the_full_event_stream(self, small_workload):
        from repro.core.simulator import EVENT_KINDS

        sink = TraceSink()
        with trace_installed(sink):
            result = run_once(small_workload, TTLProtocol(hours(10)))
        kinds = {r["kind"] for r in sink.events()}
        # Caches are preloaded by default, so no cold "miss" events —
        # hits and validations dominate a TTL run.
        assert "hit" in kinds
        assert kinds <= set(EVENT_KINDS)
        # Every request produced at least one observer event.
        assert len(sink.events()) >= result.counters.requests


class TestExperimentVerdictsUnperturbed:
    """Satellite: DailySampler-driven verdicts, tracing on vs off."""

    def rendered_report(self, experiment_id: str) -> str:
        from repro.experiments.common import clear_caches
        from repro.experiments.registry import run_experiment

        clear_caches()
        report = run_experiment(experiment_id, scale=0.05, seed=0, workers=1)
        return report.render()

    def test_table2_sampler_verdicts_byte_identical(self):
        bare = self.rendered_report("table2")
        with metrics_installed(MetricsRegistry()), \
                trace_installed(TraceSink()):
            traced = self.rendered_report("table2")
        assert traced == bare

    def test_figure2_verdicts_byte_identical(self):
        bare = self.rendered_report("figure2")
        with metrics_installed(MetricsRegistry()), \
                trace_installed(TraceSink()):
            traced = self.rendered_report("figure2")
        assert traced == bare


class TestSamplerDirectly:
    def test_daily_sampler_estimates_unchanged_under_tee(
        self, changing_server
    ):
        from repro.core.clock import days
        from repro.trace.sampler import DailySampler

        histories = list(changing_server.histories().values())
        bare_sampler = DailySampler(histories, days(30))
        bare = bare_sampler.estimate_lifespans(bare_sampler.run())
        with metrics_installed(MetricsRegistry()), \
                trace_installed(TraceSink()):
            teed_sampler = DailySampler(histories, days(30))
            teed = teed_sampler.estimate_lifespans(teed_sampler.run())
        assert teed == bare
