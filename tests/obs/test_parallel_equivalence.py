"""Serial vs parallel observability: merged output must be identical.

The acceptance bar for the obs layer: with tracing/metrics on, a
``--workers N`` run and a serial run of the same sweep produce the same
merged registry dump and the same deterministic event-record sequence
(spans carry wall times and pids, so they are excluded by design —
``TraceSink.events()`` is the diffable subset).
"""

from __future__ import annotations

from repro.analysis.sweep import sweep_alex, sweep_ttl
from repro.core.simulator import SimulatorMode
from repro.faults import parse_faults
from repro.obs import profile as obs_profile
from repro.obs.registry import MetricsRegistry, installed as metrics_installed
from repro.obs.trace import TraceSink, installed as trace_installed

GRID = (0, 50, 100)


def traced_sweep(workload, *, workers, faults=None, ttl=False):
    """One instrumented sweep; returns (result, registry dump, events)."""
    registry = MetricsRegistry()
    sink = TraceSink()
    with metrics_installed(registry), trace_installed(sink):
        if ttl:
            result = sweep_ttl(
                [workload], SimulatorMode.BASE, ttl_hours=(0, 100),
                workers=workers, faults=faults,
            )
        else:
            result = sweep_alex(
                [workload], SimulatorMode.OPTIMIZED,
                thresholds_percent=GRID, workers=workers, faults=faults,
            )
    return result, registry.as_dict(), sink.events()


class TestMergedRegistries:
    def test_parallel_dump_equals_serial_dump(self, workload):
        serial_result, serial_dump, serial_events = traced_sweep(
            workload, workers=1
        )
        parallel_result, parallel_dump, parallel_events = traced_sweep(
            workload, workers=4
        )
        assert serial_result == parallel_result
        assert parallel_dump["counters"]  # instrumentation actually fired
        assert serial_dump == parallel_dump
        assert serial_events == parallel_events

    def test_engine_counters_cover_every_task(self, workload):
        _, dump, _ = traced_sweep(workload, workers=4)
        # 3 grid points + the invalidation baseline.
        assert dump["counters"]["engine.tasks"] == float(len(GRID) + 1)
        assert dump["gauges"]["sweep.grid_points"] == float(len(GRID))

    def test_spans_present_but_excluded_from_event_diff(self, workload):
        registry = MetricsRegistry()
        sink = TraceSink()
        with metrics_installed(registry), trace_installed(sink):
            sweep_alex([workload], SimulatorMode.OPTIMIZED,
                       thresholds_percent=GRID, workers=4)
        span_names = {
            r["name"] for r in sink.records if r["type"] == "span"
        }
        assert "engine.task" in span_names
        assert "engine.map" in span_names
        assert "sweep.run" in span_names
        assert all(r["type"] == "event" for r in sink.events())


class TestWithFaults:
    def test_fault_schedule_metrics_merge_identically(self, workload):
        faults = parse_faults("loss=0.3,retries=1,seed=7").build(
            workload.duration
        )
        _, serial_dump, serial_events = traced_sweep(
            workload, workers=1, faults=faults, ttl=True
        )
        _, parallel_dump, parallel_events = traced_sweep(
            workload, workers=3, faults=faults, ttl=True
        )
        assert serial_dump == parallel_dump
        assert serial_events == parallel_events
        # The invalidation baseline runs under the plan, so the fault
        # counters are populated.
        assert serial_dump["counters"]["faults.attempts"] > 0


class TestWithVerify:
    def test_verify_runs_counter_merges_across_workers(self, workload):
        from repro.verify import set_enabled

        set_enabled(True)
        try:
            _, serial_dump, _ = traced_sweep(workload, workers=1)
            _, parallel_dump, _ = traced_sweep(workload, workers=4)
        finally:
            set_enabled(False)
        assert serial_dump == parallel_dump
        # 3 grid points + baseline, one verified run each.
        assert serial_dump["counters"]["verify.runs"] == float(len(GRID) + 1)


class TestProfileMerge:
    def test_hook_calls_identical_serial_vs_parallel(self, workload):
        obs_profile.enable()
        obs_profile.reset()
        sweep_alex([workload], SimulatorMode.OPTIMIZED,
                   thresholds_percent=GRID, workers=1)
        serial_hooks = {
            name: calls for name, calls, _ in obs_profile.hook_table()
        }
        obs_profile.reset()
        sweep_alex([workload], SimulatorMode.OPTIMIZED,
                   thresholds_percent=GRID, workers=4)
        parallel_hooks = {
            name: calls for name, calls, _ in obs_profile.hook_table()
        }
        assert serial_hooks == parallel_hooks == {}  # plain protocols

    def test_parallel_phases_recorded(self, workload):
        obs_profile.enable()
        obs_profile.reset()
        sweep_alex([workload], SimulatorMode.OPTIMIZED,
                   thresholds_percent=GRID, workers=4)
        phases = dict(obs_profile.phase_breakdown())
        for name in ("fork", "dispatch", "harvest", "reassembly"):
            assert name in phases, f"missing engine phase {name!r}"

    def test_serial_phase_recorded(self, workload):
        obs_profile.enable()
        obs_profile.reset()
        sweep_alex([workload], SimulatorMode.OPTIMIZED,
                   thresholds_percent=GRID, workers=1)
        phases = dict(obs_profile.phase_breakdown())
        assert "serial" in phases
