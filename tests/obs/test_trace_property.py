"""Property-based trace-schema round-trip: JSONL write → load → merge.

The live leg's observability rests on three per-role ``repro.trace/1``
files surviving the disk round trip *exactly* and merging into one
``repro.trace/2`` timeline with ids and ordering intact.  Hypothesis
drives arbitrary record sequences (events, spans, marks, in any
interleaving) through:

* :func:`repro.obs.trace.write_jsonl` → :func:`~repro.obs.trace.load_jsonl`
  — lossless, header ``proc`` included;
* a mid-write kill (the file truncated at an arbitrary byte) — the
  torn-line-tolerant loader must return a clean *prefix* of the
  records, mirroring the live journal's torn-line tests;
* :func:`repro.obs.timeline.merge` over three role files — every
  record present exactly once, stamped with its role, trace ids
  untouched, and the timeline ordered by ``clk`` (unclocked records
  first) with per-role file order preserved among ties.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import timeline
from repro.obs import trace as obs_trace

#: JSON-safe strings (no surrogates; utf-8 encodable).
_names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    min_size=0,
    max_size=20,
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_meta = st.dictionaries(
    st.text(alphabet="abcdefgh.", min_size=1, max_size=8),
    st.one_of(_names, _floats, st.integers(-10, 10), st.none()),
    max_size=3,
)


@st.composite
def records(draw) -> dict:
    """One record in any of the three shapes, via the sink API."""
    shape = draw(st.sampled_from(["event", "span", "mark"]))
    sink = obs_trace.TraceSink()
    if shape == "event":
        sink.event(draw(_names), draw(_floats), draw(_names))
    elif shape == "span":
        meta = draw(st.one_of(st.none(), _meta))
        sink.span(draw(_names), draw(_floats), meta)
    else:
        trace_id = draw(st.one_of(st.none(), _names))
        sink.mark(draw(_names), trace_id, draw(_floats), **draw(_meta))
    return sink.records[0]


def _fill(sink: obs_trace.TraceSink, items: list[dict]) -> None:
    sink.records.extend(dict(record) for record in items)


class TestRoundTrip:
    @given(
        items=st.lists(records(), max_size=20),
        proc=st.one_of(st.none(), st.sampled_from(["driver", "proxy", "x"])),
    )
    @settings(max_examples=60, deadline=None)
    def test_write_then_load_is_lossless(self, tmp_path_factory, items, proc):
        path = tmp_path_factory.mktemp("trace") / "t.jsonl"
        sink = obs_trace.TraceSink(proc=proc)
        _fill(sink, items)
        lines = obs_trace.write_jsonl(sink, path)
        assert lines == len(items) + 1  # records + header
        header, loaded = obs_trace.load_jsonl(path)
        assert header.get("schema") == obs_trace.SCHEMA
        assert header.get("proc") == proc
        assert loaded == sink.records

    @given(
        items=st.lists(records(), min_size=1, max_size=12),
        cut=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_torn_tail_yields_a_clean_prefix(self, tmp_path_factory, items,
                                             cut):
        """Truncating anywhere after the header loses at most a suffix."""
        path = tmp_path_factory.mktemp("trace") / "t.jsonl"
        sink = obs_trace.TraceSink(proc="proxy")
        _fill(sink, items)
        obs_trace.write_jsonl(sink, path)
        raw = path.read_bytes()
        header_end = raw.index(b"\n") + 1
        torn = raw[: header_end + cut % max(1, len(raw) - header_end + 1)]
        path.write_bytes(torn)
        _, loaded = obs_trace.load_jsonl(path)
        assert loaded == sink.records[: len(loaded)]  # a prefix, in order


class TestMergeProperties:
    @given(
        per_role=st.fixed_dictionaries({
            "driver": st.lists(records(), max_size=10),
            "proxy": st.lists(records(), max_size=10),
            "origin": st.lists(records(), max_size=10),
        }),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_ids_and_orders_by_clk(self, tmp_path_factory,
                                                   per_role):
        base = tmp_path_factory.mktemp("trace") / "TRACE.jsonl"
        paths = timeline.role_trace_paths(base)
        for role, items in per_role.items():
            sink = obs_trace.TraceSink(proc=role)
            _fill(sink, items)
            obs_trace.write_jsonl(sink, paths[role])
        merged = timeline.merge(base)

        assert merged["schema"] == timeline.SCHEMA
        assert set(merged["roles"]) == {"driver", "proxy", "origin"}

        # Exactly-once: stripping the proc stamp recovers each role's
        # records as a multiset (the sort may legitimately reorder a
        # role's records relative to its file when clks interleave).
        for role, items in per_role.items():
            survived = sorted(
                json.dumps(
                    {k: v for k, v in record.items() if k != "proc"},
                    sort_keys=True,
                )
                for record in merged["records"]
                if record["proc"] == role
            )
            assert survived == sorted(
                json.dumps(record, sort_keys=True) for record in items
            )

        # Ordering: clk is non-decreasing, unclocked records first.
        keys = [
            -math.inf if timeline._clk(record) is None
            else timeline._clk(record)
            for record in merged["records"]
        ]
        assert keys == sorted(keys)

        # Trace ids survive untouched (the merge key must never warp).
        merged_ids = sorted(
            record["trace"]
            for record in merged["records"]
            if record["type"] == "mark" and record["trace"] is not None
        )
        original_ids = sorted(
            record["trace"]
            for items in per_role.values()
            for record in items
            if record["type"] == "mark" and record["trace"] is not None
        )
        assert merged_ids == original_ids
