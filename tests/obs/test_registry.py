"""The metrics registry: primitives, dumps, and the capture/merge triple."""

from __future__ import annotations

import pytest

from repro.obs import names
from repro.obs.registry import (
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active,
    emit,
    install,
    installed,
    observe,
    set_gauge,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter("cache.stores")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_gauge_last_write_wins(self):
        gauge = Gauge("sweep.grid_points")
        gauge.set(3)
        gauge.set(7.0)
        assert gauge.value == 7.0

    def test_histogram_buckets_by_upper_bound(self):
        hist = Histogram("x", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 100.0, 1e6):
            hist.observe(value)
        # bounds are inclusive upper edges; 1e6 overflows.
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.total == pytest.approx(0.5 + 1.0 + 5.0 + 100.0 + 1e6)

    def test_histogram_bounds_fixed_by_name(self):
        by_name = Histogram("sim.transfer_bytes")
        assert by_name.bounds == names.HISTOGRAM_BINS["sim.transfer_bytes"]
        fallback = Histogram("something.unlisted")
        assert fallback.bounds == names.DEFAULT_BINS

    def test_log_bins_shape(self):
        assert names.log_bins(1.0, 100.0, per_decade=1) == (1.0, 10.0, 100.0)
        bins = names.log_bins(1.0, 1.0e6)
        assert bins[0] == 1.0
        assert bins[-1] >= 1.0e6
        assert list(bins) == sorted(bins)

    def test_log_bins_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            names.log_bins(0.0, 10.0)
        with pytest.raises(ValueError):
            names.log_bins(10.0, 1.0)
        with pytest.raises(ValueError):
            names.log_bins(1.0, 10.0, per_decade=0)


class TestModuleHandle:
    def test_disabled_by_default(self):
        assert active() is None
        emit("cache.stores")  # all three are cheap no-ops
        observe("sim.transfer_bytes", 10.0)
        set_gauge("sweep.grid_points", 4.0)

    def test_installed_scopes_and_restores(self):
        registry = MetricsRegistry()
        with installed(registry):
            assert active() is registry
            emit("cache.stores", 2.0)
            observe("sim.transfer_bytes", 10.0)
            set_gauge("sweep.grid_points", 4.0)
        assert active() is None
        dump = registry.as_dict()
        assert dump["counters"]["cache.stores"] == 2.0
        assert dump["gauges"]["sweep.grid_points"] == 4.0
        assert dump["histograms"]["sim.transfer_bytes"]["count"] == 1

    def test_install_returns_previous(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        assert install(first) is None
        assert install(second) is first
        assert install(None) is second


class TestDump:
    def test_schema_and_sorted_keys(self):
        registry = MetricsRegistry()
        registry.counter("b.two").add()
        registry.counter("a.one").add()
        dump = registry.as_dict()
        assert dump["schema"] == SCHEMA
        assert list(dump["counters"]) == ["a.one", "b.two"]


class TestCaptureMerge:
    """snapshot/delta/merge — the engine's per-worker protocol."""

    def test_delta_drops_zero_increments(self):
        registry = MetricsRegistry()
        registry.counter("engine.tasks").add(0.0)  # touched, not moved
        snap = registry.snapshot()
        registry.counter("cache.stores").add(3.0)
        delta = registry.delta(snap)
        assert delta["counters"] == {"cache.stores": 3.0}

    def test_delta_reports_changed_and_new_gauges_only(self):
        registry = MetricsRegistry()
        registry.gauge("sweep.grid_points").set(5.0)
        snap = registry.snapshot()
        registry.gauge("sweep.grid_points").set(5.0)  # unchanged value
        assert registry.delta(snap)["gauges"] == {}
        registry.gauge("sweep.grid_points").set(9.0)
        assert registry.delta(snap)["gauges"] == {"sweep.grid_points": 9.0}

    def test_merged_registry_matches_direct_publication(self):
        direct = MetricsRegistry()
        for value in (10.0, 2000.0, 10.0):
            direct.histogram("sim.transfer_bytes").observe(value)
        direct.counter("cache.stores").add(3.0)
        direct.gauge("sweep.grid_points").set(2.0)

        parent = MetricsRegistry()
        worker = MetricsRegistry()  # a fork starts from an empty copy
        snap = worker.snapshot()
        for value in (10.0, 2000.0, 10.0):
            worker.histogram("sim.transfer_bytes").observe(value)
        worker.counter("cache.stores").add(3.0)
        worker.gauge("sweep.grid_points").set(2.0)
        parent.merge(worker.delta(snap))

        assert parent.as_dict() == direct.as_dict()

    def test_merge_rejects_bin_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("sim.transfer_bytes").observe(1.0)
        payload = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "sim.transfer_bytes": ((1.0, 2.0), [1, 0, 0], 1.0, 1)
            },
        }
        with pytest.raises(ValueError, match="bin mismatch"):
            parent.merge(payload)
