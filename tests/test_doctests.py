"""Run the library's embedded doctests.

Docstring examples are part of the public documentation; if they drift
from the code they are worse than no examples.  This keeps them honest.
"""

import doctest

import pytest

import repro.core.protocols.alex
import repro.core.simulator

MODULES_WITH_DOCTESTS = [
    repro.core.protocols.alex,
    repro.core.simulator,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
