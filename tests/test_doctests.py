"""Run the library's embedded doctests.

Docstring examples are part of the public documentation; if they drift
from the code they are worse than no examples.  This keeps them honest.
"""

import doctest

import pytest

import repro.analysis.sweep
import repro.core.protocols.alex
import repro.core.server
import repro.core.simulator
import repro.experiments.common
import repro.experiments.registry
import repro.faults.plan
import repro.faults.rng
import repro.faults.spec
import repro.runtime.engine
import repro.runtime.stats

MODULES_WITH_DOCTESTS = [
    repro.analysis.sweep,
    repro.core.protocols.alex,
    repro.core.server,
    repro.core.simulator,
    repro.experiments.common,
    repro.experiments.registry,
    repro.faults.plan,
    repro.faults.rng,
    repro.faults.spec,
    repro.runtime.engine,
    repro.runtime.stats,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
