"""ASCII chart rendering."""

import pytest

from repro.analysis.plots import Series, ascii_chart, assign_glyphs


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1.0])

    def test_bad_glyph_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1], [1.0], glyph="ab")
        with pytest.raises(ValueError):
            Series("s", [1], [1.0], glyph="")


class TestAssignGlyphs:
    def test_distinct_for_small_sets(self):
        glyphs = assign_glyphs(["a", "b", "c"])
        assert len(set(glyphs)) == 3

    def test_cycles_beyond_seven(self):
        assert len(assign_glyphs([str(i) for i in range(9)])) == 9


class TestAsciiChart:
    def _one(self, **kwargs):
        return ascii_chart(
            [Series("line", [0, 50, 100], [1.0, 10.0, 100.0])], **kwargs
        )

    def test_contains_title_and_legend(self):
        out = self._one(title="My Chart")
        assert "My Chart" in out
        assert "* line" in out

    def test_contains_axis_labels(self):
        out = self._one(xlabel="threshold", ylabel="MB")
        assert "x: threshold" in out
        assert "y: MB" in out

    def test_log_scale_marks_output(self):
        out = self._one(log_y=True)
        assert "[log y]" in out
        assert "1e" in out

    def test_dimensions_respected(self):
        out = ascii_chart(
            [Series("s", [0, 1], [0.0, 1.0])], width=30, height=5
        )
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 5
        assert all(len(l.split("|", 1)[1]) <= 30 for l in plot_rows)

    def test_extremes_plotted_at_edges(self):
        out = ascii_chart(
            [Series("s", [0, 100], [0.0, 1.0])], width=20, height=4
        )
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("*")    # max y at top-right
        assert rows[-1].startswith("*")          # min y at bottom-left

    def test_multiple_series_glyphs(self):
        out = ascii_chart(
            [
                Series("a", [0, 1], [1.0, 2.0], glyph="*"),
                Series("b", [0, 1], [2.0, 1.0], glyph="o"),
            ]
        )
        assert "*" in out and "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([])
        with pytest.raises(ValueError):
            ascii_chart([Series("s", [], [])])

    def test_log_scale_handles_zeros(self):
        out = ascii_chart(
            [Series("s", [0, 1, 2], [0.0, 1.0, 10.0])], log_y=True
        )
        assert "*" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_chart([Series("s", [0, 1], [5.0, 5.0])])
        assert "*" in out

    def test_single_point(self):
        out = ascii_chart([Series("s", [3], [7.0])])
        assert "*" in out

    def test_negative_y_floor_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([Series("s", [0], [1.0])], log_y=True, y_floor=-1.0)
