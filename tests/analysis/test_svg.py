"""The dependency-free SVG chart renderer."""

import pytest

from repro.analysis.plots import Series
from repro.analysis.svg import dump_experiment_svg, render_svg, write_svg


def series():
    return [
        Series("alex", [0, 50, 100], [5.0, 2.0, 1.0]),
        Series("invalidation", [0, 50, 100], [3.0, 3.0, 3.0]),
    ]


class TestRenderSvg:
    def test_valid_svg_document(self):
        text = render_svg(series(), title="T", xlabel="x", ylabel="y")
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in text

    def test_contains_series_geometry_and_legend(self):
        text = render_svg(series())
        assert text.count("<polyline") == 2
        assert text.count("<circle") == 6
        assert "alex" in text and "invalidation" in text

    def test_title_and_labels(self):
        text = render_svg(series(), title="Figure 6", xlabel="threshold",
                          ylabel="MB")
        assert "Figure 6" in text
        assert "threshold" in text and "MB" in text

    def test_log_scale_marks_axis(self):
        text = render_svg(series(), log_y=True, xlabel="x")
        assert "[log y]" in text
        assert "1e" in text

    def test_escapes_markup(self):
        text = render_svg(
            [Series("a<b&c>", [0, 1], [1.0, 2.0])], title="x<y"
        )
        assert "a&lt;b&amp;c&gt;" in text
        assert "x&lt;y" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_svg([])

    def test_log_handles_zeros(self):
        text = render_svg(
            [Series("s", [0, 1], [0.0, 10.0])], log_y=True
        )
        assert "<polyline" in text

    def test_single_point_no_polyline(self):
        text = render_svg([Series("s", [1], [2.0])])
        assert "<polyline" not in text
        assert "<circle" in text

    def test_xml_parses(self):
        import xml.etree.ElementTree as ET

        ET.fromstring(render_svg(series(), title="ok & fine"))


class TestWriteSvg:
    def test_writes_file(self, tmp_path):
        path = write_svg(series(), tmp_path / "chart.svg", title="t")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestDumpExperimentSvg:
    def test_series_dicts_rendered(self, tmp_path):
        data = {
            "alex": {"threshold": [0, 50, 100], "mb": [5.0, 2.0, 1.0]},
            "scalar": 3.0,
            "rows": [("a", 1)],
        }
        written = dump_experiment_svg(data, tmp_path, "figX")
        assert [p.name for p in written] == ["figX_alex.svg"]

    def test_log_scale_chosen_for_wide_ranges(self, tmp_path):
        data = {"s": {"x": [0, 1], "y": [0.01, 100.0]}}
        written = dump_experiment_svg(data, tmp_path, "e")
        assert "[log y]" in written[0].read_text()

    def test_real_experiment_renders(self, tmp_path):
        from repro.experiments.registry import run_experiment

        report = run_experiment("figure1")
        # figure1's data is nested scenario dicts: no series, no files.
        assert dump_experiment_svg(report.data, tmp_path, "figure1") == []

    def test_cli_flag(self, tmp_path, capsys):
        from repro.experiments import common
        from repro.experiments.__main__ import main

        common.clear_caches()
        assert main(["figure2", "--scale", "0.05",
                     "--svg", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "svg:" in out
        assert (tmp_path / "figure2_alex.svg").exists()
