"""CSV export round trips."""

import pytest

from repro.analysis.export import read_csv_rows, write_rows_csv, write_sweep_csv
from repro.analysis.sweep import SweepPoint, SweepResult


def make_sweep(with_baseline=True) -> SweepResult:
    points = [
        SweepPoint(0.0, {"total_mb": 5.0, "stale_hit_rate": 0.0}),
        SweepPoint(50.0, {"total_mb": 2.0, "stale_hit_rate": 0.01}),
    ]
    baseline = {"total_mb": 3.0, "stale_hit_rate": 0.0} if with_baseline else {}
    return SweepResult(family="alex", points=points, invalidation=baseline)


class TestWriteRows:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        assert write_rows_csv(("a", "b"), [(1, "x"), (2, "y")], path) == 2
        headers, rows = read_csv_rows(path)
        assert headers == ["a", "b"]
        assert rows == [["1", "x"], ["2", "y"]]

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="row 0"):
            write_rows_csv(("a", "b"), [(1,)], tmp_path / "t.csv")

    def test_empty_rows_ok(self, tmp_path):
        path = tmp_path / "t.csv"
        assert write_rows_csv(("a",), [], path) == 0
        headers, rows = read_csv_rows(path)
        assert headers == ["a"] and rows == []


class TestWriteSweep:
    def test_columns_and_values(self, tmp_path):
        path = tmp_path / "sweep.csv"
        assert write_sweep_csv(make_sweep(), path, "threshold") == 2
        headers, rows = read_csv_rows(path)
        assert headers == [
            "threshold", "stale_hit_rate", "total_mb",
            "invalidation_stale_hit_rate", "invalidation_total_mb",
        ]
        assert rows[0] == ["0.0", "0.0", "5.0", "0.0", "3.0"]
        assert rows[1][0] == "50.0"

    def test_baseline_optional(self, tmp_path):
        path = tmp_path / "s.csv"
        write_sweep_csv(make_sweep(with_baseline=False), path)
        headers, _ = read_csv_rows(path)
        assert headers == ["parameter", "stale_hit_rate", "total_mb"]

    def test_empty_sweep_rejected(self, tmp_path):
        empty = SweepResult(family="ttl", points=[])
        with pytest.raises(ValueError):
            write_sweep_csv(empty, tmp_path / "x.csv")

    def test_real_sweep_exports(self, tmp_path):
        from repro.analysis.sweep import sweep_ttl
        from repro.core.simulator import SimulatorMode
        from repro.workload.worrell import WorrellWorkload

        workload = WorrellWorkload(files=50, requests=500, seed=1).build()
        sweep = sweep_ttl([workload], SimulatorMode.OPTIMIZED,
                          ttl_hours=(0, 100))
        path = tmp_path / "real.csv"
        assert write_sweep_csv(sweep, path, "ttl_hours") == 2
        headers, rows = read_csv_rows(path)
        assert "total_mb" in headers
        assert len(rows) == 2
