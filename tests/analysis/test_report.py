"""Report tables and shape checks."""

from repro.analysis.report import (
    ExperimentReport,
    ShapeCheck,
    format_table,
    pct,
)


class TestShapeCheck:
    def test_render_ok(self):
        line = ShapeCheck("my-check", True, "42 < 43").render()
        assert "[ok" in line and "my-check" in line and "42 < 43" in line

    def test_render_fail(self):
        assert "[FAIL" in ShapeCheck("c", False, "d").render()


class TestExperimentReport:
    def _report(self, passes):
        return ExperimentReport(
            experiment_id="figureX",
            title="Title",
            rendered="body",
            checks=[ShapeCheck(f"c{i}", ok, "detail")
                    for i, ok in enumerate(passes)],
        )

    def test_all_passed(self):
        assert self._report([True, True]).all_passed
        assert not self._report([True, False]).all_passed

    def test_failed_checks(self):
        report = self._report([True, False, False])
        assert len(report.failed_checks()) == 2

    def test_render_includes_everything(self):
        text = self._report([True]).render()
        assert "figureX" in text
        assert "body" in text
        assert "ALL CHECKS PASSED" in text

    def test_render_flags_failures(self):
        assert "CHECKS FAILED" in self._report([False]).render()

    def test_no_checks_counts_as_passed(self):
        assert self._report([]).all_passed


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(
            ("name", "value"),
            [("alpha", 1.5), ("b", 22)],
            title="T:",
        )
        lines = out.splitlines()
        assert lines[0] == "T:"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_numeric_right_aligned(self):
        out = format_table(("n",), [(5,), (123,)])
        rows = out.splitlines()[1:]
        assert rows[-1].startswith("123")
        assert rows[-2].endswith("5")

    def test_empty_rows(self):
        out = format_table(("a", "b"), [])
        assert "a" in out

    def test_float_formatting(self):
        out = format_table(("x",), [(0.00012345,), (12345.6,), (0.0,)])
        assert "1.234e-04" in out or "1.235e-04" in out
        assert "1.235e+04" in out or "1.2346e+04" in out
        assert "0" in out


class TestPct:
    def test_formats_rate(self):
        assert pct(0.0512) == "5.12%"
        assert pct(0.0) == "0.00%"
        assert pct(1.0) == "100.00%"
