"""Parameter sweeps and crossover detection."""

import pytest

from repro.core.clock import days, hours
from repro.core.protocols import TTLProtocol
from repro.core.simulator import SimulatorMode
from repro.analysis.sweep import (
    SweepPoint,
    SweepResult,
    crossover_parameter,
    run_protocol,
    sweep_alex,
    sweep_protocol,
    sweep_ttl,
)
from repro.workload.base import Workload
from tests.conftest import make_history


@pytest.fixture
def workload() -> Workload:
    return Workload(
        histories=[
            make_history("/hot", changes=tuple(days(i) for i in range(1, 6))),
            make_history("/cold", size=2000),
        ],
        requests=[(days(0.25 * i), "/hot" if i % 2 else "/cold")
                  for i in range(1, 60)],
        duration=days(20),
    )


class TestRunProtocol:
    def test_metrics_keys(self, workload):
        metrics = run_protocol([workload], lambda: TTLProtocol(hours(24)),
                               SimulatorMode.OPTIMIZED)
        assert set(metrics) == {
            "total_mb", "miss_rate", "stale_hit_rate",
            "server_operations", "requests", "mean_round_trips",
        }

    def test_fresh_protocol_instance_per_workload(self, workload):
        instances = []

        def factory():
            proto = TTLProtocol(hours(1))
            instances.append(proto)
            return proto

        run_protocol([workload, workload], factory, SimulatorMode.OPTIMIZED)
        assert len(instances) == 2


class TestSweeps:
    def test_alex_sweep_structure(self, workload):
        sweep = sweep_alex([workload], SimulatorMode.OPTIMIZED,
                           thresholds_percent=(0, 50, 100))
        assert sweep.family == "alex"
        assert sweep.parameters() == [0, 50, 100]
        assert len(sweep.series("total_mb")) == 3
        assert sweep.invalidation["stale_hit_rate"] == 0.0

    def test_ttl_sweep_parameters_in_hours(self, workload):
        sweep = sweep_ttl([workload], SimulatorMode.OPTIMIZED,
                          ttl_hours=(0, 125))
        assert sweep.parameters() == [0, 125]

    def test_point_at(self, workload):
        sweep = sweep_ttl([workload], SimulatorMode.OPTIMIZED,
                          ttl_hours=(0, 125))
        assert sweep.point_at(125).parameter == 125
        with pytest.raises(KeyError):
            sweep.point_at(99)

    def test_invalidation_optional(self, workload):
        sweep = sweep_protocol(
            [workload], lambda h: TTLProtocol(hours(h)), (1,),
            SimulatorMode.OPTIMIZED, family="ttl",
            include_invalidation=False,
        )
        assert sweep.invalidation == {}

    def test_sweep_point_indexing(self):
        point = SweepPoint(parameter=5.0, metrics={"total_mb": 1.5})
        assert point["total_mb"] == 1.5


class TestCrossover:
    def _sweep(self, values, baseline) -> SweepResult:
        return SweepResult(
            family="alex",
            points=[SweepPoint(p, {"ops": v})
                    for p, v in zip((0, 25, 50, 75, 100), values)],
            invalidation={"ops": baseline},
        )

    def test_finds_first_crossing(self):
        sweep = self._sweep([100, 80, 40, 20, 10], baseline=50)
        assert crossover_parameter(sweep, "ops") == 50

    def test_none_when_never_crossing(self):
        sweep = self._sweep([100, 90, 80, 70, 60], baseline=50)
        assert crossover_parameter(sweep, "ops") is None

    def test_explicit_threshold(self):
        sweep = self._sweep([100, 80, 40, 20, 10], baseline=50)
        assert crossover_parameter(sweep, "ops", threshold=15) == 100
