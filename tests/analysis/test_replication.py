"""Multi-seed replication summaries."""

import math

import pytest

from repro.analysis.replication import Replication, all_hold, replicate


class TestReplicate:
    def test_constant_metric(self):
        rep = replicate(lambda seed: 5.0, seeds=range(4))
        assert rep.mean == 5.0
        assert rep.stdev == 0.0
        assert rep.ci_half_width == 0.0
        assert rep.ci_low == rep.ci_high == 5.0

    def test_known_values(self):
        rep = replicate(lambda seed: float(seed), seeds=[1, 2, 3])
        assert rep.mean == pytest.approx(2.0)
        assert rep.stdev == pytest.approx(1.0)
        assert rep.ci_half_width == pytest.approx(1.96 / math.sqrt(3))

    def test_single_seed(self):
        rep = replicate(lambda seed: 7.0, seeds=[42])
        assert rep.values == (7.0,)
        assert rep.stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 0.0, seeds=[])

    def test_relative_spread(self):
        rep = replicate(lambda seed: float(seed), seeds=[9, 11])
        assert rep.relative_spread == pytest.approx(math.sqrt(2) / 10)
        zero = Replication(values=(0.0,), mean=0.0, stdev=1.0,
                           ci_half_width=0.0)
        assert zero.relative_spread == math.inf

    def test_describe_readable(self):
        text = replicate(lambda seed: float(seed), seeds=[1, 2, 3]).describe()
        assert "95% CI" in text and "3 seeds" in text


class TestAllHold:
    def test_reports_failing_seeds(self):
        ok, failures = all_hold(lambda seed: seed % 2 == 0, seeds=[0, 1, 2, 3])
        assert not ok
        assert failures == [1, 3]

    def test_all_pass(self):
        ok, failures = all_hold(lambda seed: True, seeds=range(5))
        assert ok and failures == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_hold(lambda seed: True, seeds=[])


class TestSeedRobustness:
    """The reproduction's headline claims hold across seeds, not just
    seed 0.  Small workload scale keeps this affordable in the unit
    suite; the full-scale version lives in the benchmarks."""

    SEEDS = (0, 1, 2)

    def _ratio(self, seed: int) -> float:
        from repro.analysis.sweep import run_protocol
        from repro.core.protocols import AlexProtocol, InvalidationProtocol
        from repro.core.simulator import SimulatorMode
        from repro.workload.campus import build_campus_workloads

        workloads = list(
            build_campus_workloads(seed=seed, request_scale=0.2).values()
        )
        alex = run_protocol(
            workloads, lambda: AlexProtocol.from_percent(100),
            SimulatorMode.OPTIMIZED,
        )
        inval = run_protocol(workloads, InvalidationProtocol,
                             SimulatorMode.OPTIMIZED)
        return inval["total_mb"] / alex["total_mb"]

    def test_bandwidth_ratio_robust_across_seeds(self):
        rep = replicate(self._ratio, seeds=self.SEEDS)
        # Large savings on every seed, and not wildly dispersed.
        assert min(rep.values) > 4.0, rep.describe()
        assert rep.relative_spread < 0.5, rep.describe()

    def test_invalidation_never_stale_across_seeds(self):
        from repro.analysis.sweep import run_protocol
        from repro.core.protocols import InvalidationProtocol
        from repro.core.simulator import SimulatorMode
        from repro.workload.campus import build_campus_workloads

        def never_stale(seed: int) -> bool:
            workloads = list(
                build_campus_workloads(seed=seed, request_scale=0.1).values()
            )
            metrics = run_protocol(workloads, InvalidationProtocol,
                                   SimulatorMode.OPTIMIZED)
            return metrics["stale_hit_rate"] == 0.0

        ok, failures = all_hold(never_stale, seeds=self.SEEDS)
        assert ok, f"stale hits under invalidation for seeds {failures}"
