"""Theory vs simulation: the closed-form models match the simulator."""

import numpy as np
import pytest

from repro.analysis.theory import (
    alex_check_times,
    alex_validation_count,
    invalidation_message_bytes,
    ttl_stale_fraction,
    ttl_validation_rate,
)
from repro.core.clock import DAY, days, hours
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import AlexProtocol, TTLProtocol
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate


class TestFormulas:
    def test_ttl_stale_zero_at_zero(self):
        assert ttl_stale_fraction(0.0, hours(10)) == 0.0
        assert ttl_stale_fraction(1.0 / DAY, 0.0) == 0.0

    def test_ttl_stale_monotone_in_both_arguments(self):
        base = ttl_stale_fraction(1.0 / (5 * DAY), hours(100))
        assert ttl_stale_fraction(1.0 / (2 * DAY), hours(100)) > base
        assert ttl_stale_fraction(1.0 / (5 * DAY), hours(300)) > base

    def test_ttl_stale_approaches_one(self):
        assert ttl_stale_fraction(1.0, 1e7) > 0.99

    def test_ttl_stale_invalid(self):
        with pytest.raises(ValueError):
            ttl_stale_fraction(-1.0, 10.0)

    def test_validation_rate(self):
        assert ttl_validation_rate(hours(10)) == pytest.approx(1 / hours(10))
        with pytest.raises(ValueError):
            ttl_validation_rate(0.0)

    def test_alex_check_times_geometric(self):
        times = alex_check_times(days(10), 0.5, days(100))
        ages = [days(10) + t for t in times]
        ratios = [b / a for a, b in zip([days(10), *ages], ages)]
        assert all(r == pytest.approx(1.5) for r in ratios)

    def test_alex_count_matches_times(self):
        for age_days, theta, window_days in (
            (10, 0.5, 100), (85, 0.1, 30), (1, 1.0, 365), (50, 0.05, 25),
        ):
            times = alex_check_times(days(age_days), theta, days(window_days))
            count = alex_validation_count(
                days(age_days), theta, days(window_days)
            )
            assert count == len(times)

    def test_alex_count_logarithmic(self):
        # Doubling the window adds ~log(2)/log(1+theta) checks, not 2x.
        small = alex_validation_count(days(10), 0.5, days(100))
        big = alex_validation_count(days(10), 0.5, days(200))
        assert big - small <= 2

    def test_invalidation_bytes(self):
        assert invalidation_message_bytes(260) == 260 * 43
        with pytest.raises(ValueError):
            invalidation_message_bytes(-1)


class TestTheoryVsSimulation:
    def test_ttl_stale_fraction_matches_simulation(self):
        """One Poisson-changing file under dense access: the measured
        stale-hit fraction matches the renewal-theory formula."""
        rng = np.random.default_rng(7)
        rate = 1.0 / (4 * DAY)
        window = 400 * DAY
        # Poisson modification times.
        times, t = [], float(rng.exponential(1 / rate))
        while t < window:
            times.append(t)
            t += float(rng.exponential(1 / rate))
        server = OriginServer(
            [ObjectHistory(
                WebObject("/f", size=1000, created=-30 * DAY),
                ModificationSchedule(-30 * DAY, times),
            )]
        )
        ttl = hours(48)
        step = hours(1)           # dense: 48 accesses per TTL window
        requests = [(k * step, "/f") for k in range(1, int(window / step))]
        result = simulate(server, TTLProtocol(ttl), requests,
                          SimulatorMode.OPTIMIZED, end_time=window)
        # Hits are (requests - validations); stale fraction over *hits*.
        stale_of_hits = result.counters.stale_hits / result.counters.hits
        predicted = ttl_stale_fraction(rate, ttl)
        assert stale_of_hits == pytest.approx(predicted, abs=0.03)

    def test_alex_backoff_matches_simulation(self):
        """A never-changing object under dense access: the simulator
        issues exactly the validations the geometric model predicts."""
        initial_age = days(10)
        window = days(120)
        for percent in (10, 50, 100):
            server = OriginServer(
                [ObjectHistory(
                    WebObject("/f", size=1000, created=-initial_age)
                )]
            )
            step = hours(2)
            requests = [
                (k * step, "/f") for k in range(1, int(window / step))
            ]
            result = simulate(
                server, AlexProtocol.from_percent(percent), requests,
                SimulatorMode.OPTIMIZED, end_time=window,
            )
            predicted = alex_validation_count(
                initial_age, percent / 100.0, window
            )
            # Dense-access discretization can defer a boundary check by
            # one step; allow off-by-one.
            assert abs(result.counters.validations - predicted) <= 1, (
                percent,
                result.counters.validations,
                predicted,
            )
