"""Case-insensitive header container and typed accessors."""

import pytest

from repro.http.datefmt import HTTPDateError
from repro.http.headers import (
    EXPIRES,
    IF_MODIFIED_SINCE,
    LAST_MODIFIED,
    Headers,
)


class TestBasicOperations:
    def test_set_get(self):
        h = Headers()
        h.set("Content-Type", "text/html")
        assert h.get("Content-Type") == "text/html"

    def test_case_insensitive_get(self):
        h = Headers()
        h.set("Content-Type", "text/html")
        assert h.get("content-type") == "text/html"
        assert h.get("CONTENT-TYPE") == "text/html"

    def test_first_casing_preserved(self):
        h = Headers()
        h.set("X-Custom", "1")
        h.set("x-custom", "2")
        assert list(h) == [("X-Custom", "2")]

    def test_get_default(self):
        assert Headers().get("Missing", "fallback") == "fallback"
        assert Headers().get("Missing") is None

    def test_contains(self):
        h = Headers({"Expires": "x"})
        assert "expires" in h
        assert "EXPIRES" in h
        assert "other" not in h
        assert 42 not in h

    def test_remove(self):
        h = Headers({"A": "1"})
        h.remove("a")
        assert "A" not in h
        h.remove("a")  # idempotent

    def test_len_and_init_mapping(self):
        h = Headers({"A": "1", "B": "2"})
        assert len(h) == 2

    def test_equality(self):
        assert Headers({"A": "1"}) == Headers({"a": "1"})
        assert Headers({"A": "1"}) != Headers({"A": "2"})
        assert Headers() != "not headers"

    def test_repr_contains_fields(self):
        assert "A: 1" in repr(Headers({"A": "1"}))


class TestDateAccessors:
    def test_set_and_get_date(self):
        h = Headers()
        h.set_date(LAST_MODIFIED, 86400.0)
        assert h.get_date(LAST_MODIFIED) == 86400.0

    def test_absent_date_is_none(self):
        h = Headers()
        assert h.expires is None
        assert h.last_modified is None
        assert h.if_modified_since is None

    def test_named_properties(self):
        h = Headers()
        h.set_date(EXPIRES, 100.0)
        h.set_date(LAST_MODIFIED, 200.0)
        h.set_date(IF_MODIFIED_SINCE, 300.0)
        assert h.expires == 100.0
        assert h.last_modified == 200.0
        assert h.if_modified_since == 300.0

    def test_malformed_date_raises(self):
        h = Headers({LAST_MODIFIED: "garbage"})
        with pytest.raises(HTTPDateError):
            _ = h.last_modified


class TestContentLength:
    def test_parses_int(self):
        assert Headers({"Content-Length": "1234"}).content_length == 1234

    def test_absent_is_none(self):
        assert Headers().content_length is None

    def test_non_numeric_raises(self):
        with pytest.raises(HTTPDateError):
            _ = Headers({"Content-Length": "abc"}).content_length

    def test_negative_raises(self):
        with pytest.raises(HTTPDateError):
            _ = Headers({"Content-Length": "-1"}).content_length


class TestWireSize:
    def test_empty_is_zero(self):
        assert Headers().wire_size() == 0

    def test_counts_name_colon_space_value_crlf(self):
        h = Headers({"A": "b"})
        assert h.wire_size() == len("A: b\r\n")

    def test_additive(self):
        h = Headers({"A": "b", "CC": "dd"})
        assert h.wire_size() == len("A: b\r\n") + len("CC: dd\r\n")
