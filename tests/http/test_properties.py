"""Hypothesis round-trip properties for the repro.http substrate.

Two invariant families back the live wire layer (``repro.live``):

* **HTTP-date identity** — ``parse_http_date(format_http_date(t)) == t``
  for every whole-second simulation time, *including negative ones*
  (pre-epoch Last-Modified stamps for objects created before the trace
  window).  Fractional times floor onto the second containing them.
* **Serialization/size agreement** — ``len(msg.serialize())`` equals
  ``msg.wire_size()`` for requests and responses, so the 43-byte cost
  model's grounding and the live servers' actual socket writes can
  never drift apart.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.datefmt import (
    SIM_EPOCH_UNIX,
    format_http_date,
    parse_http_date,
    sim_to_unix,
)
from repro.http.headers import Headers
from repro.http.messages import (
    Request,
    Response,
    make_conditional_get,
    make_ok,
    parse_request,
    parse_response,
)

# calendar.monthrange / calendar.weekday (used by the parse-side
# validation) are defined for years 1..9999; sim times outside that
# window cannot round-trip by construction.  These bounds map to
# 01 Jan 0001 .. 31 Dec 9999 in unix seconds, shifted to sim time.
_SIM_MIN = -62_135_596_800 - SIM_EPOCH_UNIX
_SIM_MAX = 253_402_300_799 - SIM_EPOCH_UNIX

_whole_seconds = st.integers(min_value=_SIM_MIN, max_value=_SIM_MAX)


# -- HTTP-date identity -------------------------------------------------------


@given(_whole_seconds)
def test_http_date_round_trip_identity(t):
    """Whole-second sim times — negatives included — survive exactly."""
    assert parse_http_date(format_http_date(float(t))) == float(t)


@given(st.integers(min_value=_SIM_MIN, max_value=-1))
def test_http_date_round_trip_negative_times(t):
    """The pre-epoch half of the range, pinned explicitly."""
    assert parse_http_date(format_http_date(float(t))) == float(t)


@given(
    st.floats(
        min_value=float(_SIM_MIN),
        max_value=float(_SIM_MAX),
        allow_nan=False,
        allow_infinity=False,
    )
)
def test_http_date_round_trip_floors_fractional(t):
    """Fractional times land on the whole second containing them."""
    assert parse_http_date(format_http_date(t)) == float(math.floor(t))


@given(_whole_seconds)
def test_sim_to_unix_inverts_on_whole_seconds(t):
    assert sim_to_unix(float(t)) == SIM_EPOCH_UNIX + t


@given(_whole_seconds)
def test_formatted_date_is_fixed_length_rfc1123(t):
    """Every emitted date is the 29-char fixed-length RFC 1123 form."""
    text = format_http_date(float(t))
    parts = text.split()
    assert len(parts) == 6 and parts[5] == "GMT"
    # Fixed-length except the year, which the range can push to 4 digits
    # at most (years 1..9999 render %04d).
    assert len(text) == 29


# -- message serialization/size agreement -------------------------------------

_paths = st.text(
    alphabet=st.sampled_from(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        "-._~/"
    ),
    min_size=1,
    max_size=40,
).map(lambda s: "/" + s.lstrip("/"))

_header_names = st.text(
    alphabet=st.sampled_from(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-"
    ),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip("-") == s)

_header_values = st.text(
    alphabet=st.sampled_from(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 "
        "-._~/=,;"
    ),
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip() == s)

_header_maps = st.dictionaries(_header_names, _header_values, max_size=5)


def _build_headers(mapping):
    headers = Headers()
    for name, value in mapping.items():
        headers.set(name, value)
    return headers


@given(_paths, _header_maps)
def test_request_serialize_length_equals_wire_size(path, header_map):
    request = Request("GET", path, headers=_build_headers(header_map))
    assert len(request.serialize()) == request.wire_size()


@given(_paths, _whole_seconds)
def test_conditional_get_serialize_length_equals_wire_size(path, t):
    request = make_conditional_get(path, float(t))
    assert len(request.serialize()) == request.wire_size()


@given(
    st.integers(min_value=0, max_value=10_000),
    st.one_of(st.none(), _whole_seconds),
    _header_maps,
)
def test_response_serialize_length_equals_wire_size(size, lm, header_map):
    response = make_ok(
        size, last_modified=float(lm) if lm is not None else None
    )
    for name, value in header_map.items():
        response.headers.set(name, value)
    assert len(response.serialize()) == response.wire_size()


@given(_header_maps)
def test_not_modified_serialize_length_equals_wire_size(header_map):
    response = Response(304, headers=_build_headers(header_map))
    assert len(response.serialize()) == response.wire_size()


@settings(max_examples=50)
@given(_paths, st.one_of(st.none(), _whole_seconds))
def test_request_parse_round_trip(path, since):
    if since is None:
        request = Request("GET", path)
    else:
        request = make_conditional_get(path, float(since))
    parsed = parse_request(request.serialize())
    assert parsed.method == request.method
    assert parsed.path == request.path
    assert parsed.headers == request.headers


@settings(max_examples=50)
@given(
    st.integers(min_value=0, max_value=2_000),
    st.one_of(st.none(), _whole_seconds),
)
def test_response_parse_round_trip(size, lm):
    response = make_ok(
        size, last_modified=float(lm) if lm is not None else None
    )
    parsed = parse_response(response.serialize())
    assert parsed.status == response.status
    assert parsed.body_size == response.body_size
    assert parsed.headers == response.headers
