"""RFC 1123 date formatting/parsing."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http.datefmt import (
    SIM_EPOCH_UNIX,
    HTTPDateError,
    format_http_date,
    parse_http_date,
    sim_to_unix,
    unix_to_sim,
)


class TestEpochMapping:
    def test_epoch_is_fixed(self):
        assert sim_to_unix(0.0) == SIM_EPOCH_UNIX

    def test_round_trip_unix(self):
        assert unix_to_sim(sim_to_unix(12345.0)) == 12345.0

    def test_fractional_seconds_truncate(self):
        assert sim_to_unix(1.9) == SIM_EPOCH_UNIX + 1


class TestPreEpochRounding:
    """Regression: sim_to_unix must floor, not truncate toward zero."""

    def test_negative_fractional_floors_down(self):
        # int(-0.5) == 0 put pre-epoch fractional times in the *wrong*
        # second; floor(-0.5) == -1 keeps them in the second containing
        # them, symmetric with +0.5 -> 0.
        assert sim_to_unix(-0.5) == SIM_EPOCH_UNIX - 1
        assert sim_to_unix(-1.0) == SIM_EPOCH_UNIX - 1
        assert sim_to_unix(-1.1) == SIM_EPOCH_UNIX - 2

    def test_positive_fractional_still_floors(self):
        assert sim_to_unix(1.9) == SIM_EPOCH_UNIX + 1

    def test_pre_epoch_round_trip_is_floor(self):
        # A Last-Modified stamped before sim time 0 (object created
        # before the trace window) must land on floor(t) after a header
        # round trip, not floor(t) + 1.
        for t in (-0.5, -1.5, -86400.25):
            assert parse_http_date(format_http_date(t)) == float(math.floor(t))

    def test_format_negative_half_second(self):
        # With int() truncation this rendered as the epoch itself.
        assert format_http_date(-0.5) == "Tue, 28 Feb 1995 23:59:59 GMT"


class TestFormat:
    def test_epoch_renders_1995(self):
        assert format_http_date(0.0) == "Wed, 01 Mar 1995 00:00:00 GMT"

    def test_one_day_later(self):
        assert format_http_date(86400.0) == "Thu, 02 Mar 1995 00:00:00 GMT"

    def test_negative_times_render_before_epoch(self):
        assert "Feb 1995" in format_http_date(-86400.0)

    def test_always_gmt_suffix(self):
        assert format_http_date(123456.0).endswith(" GMT")


class TestParse:
    def test_round_trip_epoch(self):
        assert parse_http_date("Wed, 01 Mar 1995 00:00:00 GMT") == 0.0

    def test_parse_arbitrary(self):
        t = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT")
        assert format_http_date(t) == "Sun, 06 Nov 1994 08:49:37 GMT"

    def test_whitespace_tolerated(self):
        assert parse_http_date("  Wed, 01 Mar 1995 00:00:00 GMT ") == 0.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not a date",
            "Wed, 01 Mar 1995 00:00:00",          # missing zone
            "Wed, 01 Mar 1995 00:00:00 PST",      # wrong zone
            "Wed 01 Mar 1995 00:00:00 GMT",       # missing comma
            "Xyz, 01 Mar 1995 00:00:00 GMT",      # bad weekday
            "Wed, 01 Xyz 1995 00:00:00 GMT",      # bad month
            "Wed, 41 Mar 1995 00:00:00 GMT",      # day out of range
            "Wed, 01 Mar 1995 25:00:00 GMT",      # hour out of range
            "Wed, 01 Mar 1995 00:61:00 GMT",      # minute out of range
            "Wed, aa Mar 1995 00:00:00 GMT",      # non-numeric day
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(HTTPDateError):
            parse_http_date(bad)


class TestImpossibleCalendarDates:
    """Regression: timegm silently normalizes 31 Feb to 3 Mar."""

    @pytest.mark.parametrize(
        "bad",
        [
            "Tue, 31 Feb 1995 00:00:00 GMT",   # February has 28 days
            "Wed, 29 Feb 1995 00:00:00 GMT",   # 1995 is not a leap year
            "Fri, 31 Apr 1995 00:00:00 GMT",   # April has 30 days
            "Thu, 31 Jun 1995 00:00:00 GMT",
            "Sat, 31 Sep 1995 00:00:00 GMT",
            "Tue, 31 Nov 1995 00:00:00 GMT",
        ],
    )
    def test_rejects_impossible_day(self, bad):
        with pytest.raises(HTTPDateError):
            parse_http_date(bad)

    def test_leap_day_accepted_in_leap_year(self):
        t = parse_http_date("Thu, 29 Feb 1996 12:00:00 GMT")
        assert format_http_date(t) == "Thu, 29 Feb 1996 12:00:00 GMT"

    def test_out_of_calendar_year_rejected(self):
        with pytest.raises(HTTPDateError):
            parse_http_date("Mon, 01 Jan 99999 00:00:00 GMT")


class TestWeekdayConsistency:
    """Regression: the weekday token must match the date it precedes."""

    def test_rejects_mismatched_weekday(self):
        # 06 Nov 1994 was a Sunday; "Mon" must not parse silently (it
        # would never round-trip byte-identically through
        # format_http_date).
        with pytest.raises(HTTPDateError):
            parse_http_date("Mon, 06 Nov 1994 08:49:37 GMT")

    @pytest.mark.parametrize(
        "wrong", ["Mon", "Tue", "Thu", "Fri", "Sat", "Sun"]
    )
    def test_rejects_every_wrong_weekday(self, wrong):
        # 01 Mar 1995 (the sim epoch) was a Wednesday.
        with pytest.raises(HTTPDateError):
            parse_http_date(f"{wrong}, 01 Mar 1995 00:00:00 GMT")

    def test_accepts_matching_weekday(self):
        assert parse_http_date("Wed, 01 Mar 1995 00:00:00 GMT") == 0.0


@given(st.integers(min_value=-10 * 365 * 86400, max_value=10 * 365 * 86400))
def test_format_parse_round_trip(t):
    """Whole-second times survive the format/parse round trip exactly."""
    assert parse_http_date(format_http_date(float(t))) == float(t)
