"""RFC 1123 date formatting/parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.http.datefmt import (
    SIM_EPOCH_UNIX,
    HTTPDateError,
    format_http_date,
    parse_http_date,
    sim_to_unix,
    unix_to_sim,
)


class TestEpochMapping:
    def test_epoch_is_fixed(self):
        assert sim_to_unix(0.0) == SIM_EPOCH_UNIX

    def test_round_trip_unix(self):
        assert unix_to_sim(sim_to_unix(12345.0)) == 12345.0

    def test_fractional_seconds_truncate(self):
        assert sim_to_unix(1.9) == SIM_EPOCH_UNIX + 1


class TestFormat:
    def test_epoch_renders_1995(self):
        assert format_http_date(0.0) == "Wed, 01 Mar 1995 00:00:00 GMT"

    def test_one_day_later(self):
        assert format_http_date(86400.0) == "Thu, 02 Mar 1995 00:00:00 GMT"

    def test_negative_times_render_before_epoch(self):
        assert "Feb 1995" in format_http_date(-86400.0)

    def test_always_gmt_suffix(self):
        assert format_http_date(123456.0).endswith(" GMT")


class TestParse:
    def test_round_trip_epoch(self):
        assert parse_http_date("Wed, 01 Mar 1995 00:00:00 GMT") == 0.0

    def test_parse_arbitrary(self):
        t = parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT")
        assert format_http_date(t) == "Sun, 06 Nov 1994 08:49:37 GMT"

    def test_whitespace_tolerated(self):
        assert parse_http_date("  Wed, 01 Mar 1995 00:00:00 GMT ") == 0.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "not a date",
            "Wed, 01 Mar 1995 00:00:00",          # missing zone
            "Wed, 01 Mar 1995 00:00:00 PST",      # wrong zone
            "Wed 01 Mar 1995 00:00:00 GMT",       # missing comma
            "Xyz, 01 Mar 1995 00:00:00 GMT",      # bad weekday
            "Wed, 01 Xyz 1995 00:00:00 GMT",      # bad month
            "Wed, 41 Mar 1995 00:00:00 GMT",      # day out of range
            "Wed, 01 Mar 1995 25:00:00 GMT",      # hour out of range
            "Wed, 01 Mar 1995 00:61:00 GMT",      # minute out of range
            "Wed, aa Mar 1995 00:00:00 GMT",      # non-numeric day
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(HTTPDateError):
            parse_http_date(bad)


@given(st.integers(min_value=-10 * 365 * 86400, max_value=10 * 365 * 86400))
def test_format_parse_round_trip(t):
    """Whole-second times survive the format/parse round trip exactly."""
    assert parse_http_date(format_http_date(float(t))) == float(t)
