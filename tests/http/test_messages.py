"""HTTP message models and the 43-byte cost grounding."""

import pytest

from repro.core.costs import PAPER_MESSAGE_BYTES
from repro.http.messages import (
    InvalidationNotice,
    Request,
    Response,
    make_conditional_get,
    make_get,
    make_not_modified,
    make_ok,
)


class TestRequest:
    def test_plain_get_is_not_conditional(self):
        assert not make_get("/x").is_conditional

    def test_conditional_get_carries_ims(self):
        req = make_conditional_get("/x", since=0.0)
        assert req.is_conditional
        assert req.headers.if_modified_since == 0.0

    def test_request_line(self):
        assert make_get("/a/b.html").request_line() == "GET /a/b.html HTTP/1.0"

    def test_serialize_ends_with_blank_line(self):
        assert make_get("/x").serialize().endswith("\r\n\r\n")

    def test_wire_size_matches_serialization(self):
        for req in (make_get("/x"), make_conditional_get("/path/y", 86400.0)):
            assert req.wire_size() == len(req.serialize())


class TestResponse:
    def test_ok_carries_content_length(self):
        resp = make_ok(5000, last_modified=0.0)
        assert resp.status == 200
        assert resp.headers.content_length == 5000
        assert resp.headers.last_modified == 0.0

    def test_not_modified_has_no_body(self):
        resp = make_not_modified()
        assert resp.status == 304
        assert resp.body_size == 0

    def test_304_with_body_rejected(self):
        with pytest.raises(ValueError):
            Response(304, body_size=10)

    def test_negative_body_rejected(self):
        with pytest.raises(ValueError):
            Response(200, body_size=-1)

    def test_wire_size_includes_body(self):
        resp = make_ok(5000)
        assert resp.wire_size() == resp.header_size() + 5000

    def test_status_lines(self):
        assert Response(200).status_line() == "HTTP/1.0 200 OK"
        assert Response(304).status_line() == "HTTP/1.0 304 Not Modified"
        assert Response(400).status_line() == "HTTP/1.0 400 Bad Request"
        assert Response(404).status_line() == "HTTP/1.0 404 Not Found"
        assert (Response(500).status_line()
                == "HTTP/1.0 500 Internal Server Error")

    def test_unlisted_status_gets_unknown_reason(self):
        assert Response(418).status_line() == "HTTP/1.0 418 Unknown"


class TestInvalidationNotice:
    def test_names_the_object(self):
        notice = InvalidationNotice("/x/y.html")
        assert "/x/y.html" in notice.serialize()

    def test_wire_size_matches(self):
        notice = InvalidationNotice("/f")
        assert notice.wire_size() == len(notice.serialize())


class TestPaperCostGrounding:
    """The flat 43-byte control-message cost should be the right order of
    magnitude for the concrete messages it abstracts."""

    def test_plain_get_near_43_bytes(self):
        size = make_get("/img/logo.gif").wire_size()
        assert PAPER_MESSAGE_BYTES / 2 <= size <= PAPER_MESSAGE_BYTES * 2

    def test_invalidation_notice_near_43_bytes(self):
        size = InvalidationNotice("/img/logo.gif").wire_size()
        assert PAPER_MESSAGE_BYTES / 2 <= size <= PAPER_MESSAGE_BYTES * 2

    def test_304_reply_near_43_bytes(self):
        size = make_not_modified().header_size()
        assert size <= PAPER_MESSAGE_BYTES * 2


class TestParseRequest:
    def test_round_trip_plain_get(self):
        from repro.http.messages import parse_request

        original = make_get("/a/b.html")
        assert parse_request(original.serialize()) == original

    def test_round_trip_conditional_get(self):
        from repro.http.messages import parse_request

        original = make_conditional_get("/x", since=86_400.0)
        parsed = parse_request(original.serialize())
        assert parsed.is_conditional
        assert parsed.headers.if_modified_since == 86_400.0

    def test_bare_lf_accepted(self):
        from repro.http.messages import parse_request

        parsed = parse_request("GET /x HTTP/1.0\nHost: h\n\n")
        assert parsed.path == "/x"
        assert parsed.headers.get("host") == "h"

    def test_header_whitespace_normalized(self):
        from repro.http.messages import parse_request

        parsed = parse_request("GET /x HTTP/1.0\r\nA:   spaced   \r\n\r\n")
        assert parsed.headers.get("A") == "spaced"

    def test_malformed_request_line_rejected(self):
        import pytest as _pytest

        from repro.http.messages import HTTPParseError, parse_request

        for bad in ("", "GET /x", "GET /x FTP/1.0", "GET x HTTP/1.0"):
            with _pytest.raises(HTTPParseError):
                parse_request(bad + "\r\n\r\n")

    def test_malformed_header_rejected(self):
        import pytest as _pytest

        from repro.http.messages import HTTPParseError, parse_request

        with _pytest.raises(HTTPParseError, match="line 2"):
            parse_request("GET /x HTTP/1.0\r\nnot-a-header\r\n\r\n")
