"""Failure injection: corrupted inputs fail loudly, never silently.

A simulation study's worst bug is garbage-in/plausible-out.  These tests
inject the realistic failure modes — requests for unknown objects,
corrupt log files, empty traces, schedule/trace mismatches — and require
a loud, typed error (or a sound degraded result), never a quietly wrong
number.
"""

import pytest

from repro.cli import main, server_from_trace
from repro.core.clock import days, hours
from repro.core.protocols import TTLProtocol
from repro.core.server import OriginServer, UnknownObjectError
from repro.core.simulator import Simulation, SimulatorMode, simulate
from repro.trace.clf import CLFParseError
from repro.trace.records import Trace, TraceRecord
from repro.trace.synthesis import read_trace
from tests.conftest import make_history


class TestSimulatorInputFailures:
    def test_unknown_object_raises(self, static_server):
        with pytest.raises(UnknownObjectError):
            simulate(static_server, TTLProtocol(hours(1)),
                     [(1.0, "/ghost")])

    def test_partial_progress_is_visible_after_failure(self, static_server):
        sim = Simulation(static_server, TTLProtocol(hours(1)))
        sim.step(1.0, "/a")
        with pytest.raises(UnknownObjectError):
            sim.step(2.0, "/ghost")
        # The failed request was never counted as served.
        assert sim.counters.requests == 2  # presented
        assert sim.counters.hits + sim.counters.misses == 1

    def test_empty_request_stream_is_sound(self, static_server):
        result = simulate(static_server, TTLProtocol(hours(1)), [])
        assert result.counters.requests == 0
        assert result.miss_rate == 0.0
        result.counters.check_invariants()


class TestCorruptTraceFiles:
    def test_truncated_file_fails_with_line_number(self, tmp_path):
        path = tmp_path / "corrupt.log"
        good = ('h - - [01/Mar/1995:00:00:00 +0000] '
                '"GET /x HTTP/1.0" 200 10 "-"')
        path.write_text(good + "\n" + good[: len(good) // 2] + "\n")
        with pytest.raises(CLFParseError, match="line 2"):
            read_trace(path)

    def test_binary_garbage_rejected(self, tmp_path):
        path = tmp_path / "binary.log"
        path.write_bytes(b"GET\x01\x02\x03 nonsense\n")
        with pytest.raises((CLFParseError, UnicodeDecodeError)):
            read_trace(path)

    def test_cli_surfaces_parse_errors(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("this is not a log\n")
        with pytest.raises(CLFParseError):
            main(["stats", str(path)])

    def test_empty_trace_file_yields_empty_stats(self, tmp_path, capsys):
        path = tmp_path / "empty.log"
        path.write_text("# just a comment\n")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0" in out


class TestScheduleTraceMismatch:
    def test_reconstruction_survives_lm_going_backwards(self):
        """A log whose Last-Modified regresses (clock skew on the 1995
        server) still reconstructs a usable, sorted schedule."""
        trace = Trace([
            TraceRecord(timestamp=1.0, client="h", path="/a", size=10,
                        last_modified=100.0),
            TraceRecord(timestamp=2.0, client="h", path="/a", size=10,
                        last_modified=50.0),   # regression!
        ])
        server = server_from_trace(trace)
        schedule = server.schedule("/a")
        assert schedule.created == 50.0
        assert schedule.times == (100.0,)

    def test_simulating_the_skewed_trace_is_sound(self):
        trace = Trace([
            TraceRecord(timestamp=days(1), client="h", path="/a", size=10,
                        last_modified=days(0.5)),
            TraceRecord(timestamp=days(2), client="h", path="/a", size=10,
                        last_modified=-days(3)),
        ])
        server = server_from_trace(trace)
        result = simulate(server, TTLProtocol(hours(1)), trace.requests(),
                          SimulatorMode.OPTIMIZED)
        result.counters.check_invariants()


class TestDuplicatePopulation:
    def test_duplicate_object_ids_rejected_up_front(self):
        with pytest.raises(ValueError, match="duplicate"):
            OriginServer([make_history("/same"), make_history("/same")])
