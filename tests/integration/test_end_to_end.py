"""Cross-module integration: the full paper pipeline on one workload.

Generate a campus trace → write it to disk as extended CLF → read it back
→ drive all three protocols through both simulator modes → verify the
paper's qualitative orderings hold on the single trace.
"""

import pytest

from repro.core import SimulatorMode, simulate
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.clock import hours
from repro.trace.synthesis import read_trace, trace_from_workload, write_trace
from repro.workload.campus import HCS, CampusWorkload


@pytest.fixture(scope="module")
def workload():
    return CampusWorkload(HCS, seed=21, request_scale=0.3).build()


@pytest.fixture(scope="module")
def disk_requests(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "hcs.log"
    write_trace(trace_from_workload(workload), path)
    return read_trace(path).requests()


class TestDiskDrivenSimulation:
    def test_disk_and_memory_requests_agree(self, workload, disk_requests):
        assert [oid for _, oid in disk_requests] == [
            oid for _, oid in workload.requests
        ]
        # Timestamps round to whole seconds in the log format.
        for (t_mem, _), (t_disk, _) in zip(workload.requests, disk_requests):
            assert abs(t_mem - t_disk) < 1.0

    def test_simulation_from_disk_matches_memory(self, workload,
                                                 disk_requests):
        mem = simulate(
            workload.server(), AlexProtocol.from_percent(20),
            workload.requests, SimulatorMode.OPTIMIZED,
            end_time=workload.duration,
        )
        disk = simulate(
            workload.server(), AlexProtocol.from_percent(20),
            disk_requests, SimulatorMode.OPTIMIZED,
            end_time=workload.duration,
        )
        assert disk.counters.requests == mem.counters.requests
        # Sub-second timestamp rounding can flip boundary freshness
        # decisions on a handful of requests, no more.
        assert abs(disk.counters.misses - mem.counters.misses) <= 3


class TestPaperOrderings:
    """The qualitative results on one trace, protocol by protocol."""

    def _run(self, workload, protocol, mode=SimulatorMode.OPTIMIZED):
        return simulate(
            workload.server(), protocol, workload.requests, mode,
            end_time=workload.duration,
        )

    def test_invalidation_perfect_but_not_cheapest(self, workload):
        inval = self._run(workload, InvalidationProtocol())
        alex = self._run(workload, AlexProtocol.from_percent(50))
        assert inval.counters.stale_hits == 0
        assert alex.counters.stale_hits > 0
        assert alex.bandwidth.total_bytes < inval.bandwidth.total_bytes

    def test_alex_tunable_below_5pct_stale(self, workload):
        alex = self._run(workload, AlexProtocol.from_percent(10))
        assert alex.stale_hit_rate < 0.05

    def test_ttl_loads_server_more_than_alex(self, workload):
        ttl = self._run(workload, TTLProtocol(hours(200)))
        alex = self._run(workload, AlexProtocol.from_percent(50))
        assert alex.server_operations < ttl.server_operations

    def test_optimized_mode_strictly_cheaper_than_base(self, workload):
        for protocol_factory in (
            lambda: TTLProtocol(hours(100)),
            lambda: AlexProtocol.from_percent(25),
        ):
            base = self._run(workload, protocol_factory(),
                             SimulatorMode.BASE)
            opt = self._run(workload, protocol_factory(),
                            SimulatorMode.OPTIMIZED)
            assert opt.bandwidth.total_bytes < base.bandwidth.total_bytes

    def test_self_tuning_competitive_without_manual_tuning(self, workload):
        """The Section 5 extension: self-tuning lands in the same regime
        as a hand-tuned Alex without anyone picking the threshold."""
        tuned = self._run(workload, AlexProtocol.from_percent(10))
        auto = self._run(workload, SelfTuningProtocol())
        assert auto.stale_hit_rate < 0.05
        assert auto.bandwidth.total_bytes < 3 * tuned.bandwidth.total_bytes

    def test_self_tuning_learns_per_type_thresholds(self, workload):
        proto = SelfTuningProtocol()
        self._run(workload, proto)
        learned = proto.snapshot()
        assert learned, "expected at least one type to be tuned"
        assert all(
            proto.min_threshold <= v <= proto.max_threshold
            for v in learned.values()
        )
