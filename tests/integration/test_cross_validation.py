"""Cross-validation: two independent simulator implementations agree.

A "hierarchy" of exactly one cache node is the same system as the flat
single-cache simulator in optimized mode.  The two code paths share no
request-handling logic (``core/simulator.py`` vs ``core/hierarchy.py``),
so requiring byte-for-byte agreement between them is a strong check that
neither implementation smuggles in an accounting bug.

Invalidation protocols are excluded: the hierarchy's callback
registration is deliberately consume-on-notify (AFS-style) while the
flat simulator follows Section 4.1's notify-on-every-change, so their
notice counts legitimately differ.  Time-based protocols have no such
modelling freedom.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DAY, hours
from repro.core.hierarchy import CacheNode, HierarchySimulation
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import AlexProtocol, TTLProtocol
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate

DURATION = 15 * DAY


@st.composite
def workloads(draw):
    n_files = draw(st.integers(1, 4))
    histories = []
    for i in range(n_files):
        created = -draw(st.floats(min_value=1.0, max_value=60.0)) * DAY
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.01 * DAY, max_value=DURATION),
                    max_size=5, unique=True,
                )
            )
        )
        histories.append(
            ObjectHistory(
                WebObject(f"/f{i}", size=draw(st.integers(64, 20_000)),
                          created=created),
                ModificationSchedule(created, times),
            )
        )
    n_requests = draw(st.integers(0, 40))
    raw = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=DURATION),
                st.integers(0, n_files - 1),
            ),
            min_size=n_requests, max_size=n_requests,
        )
    )
    requests = sorted((t, histories[i].object_id) for t, i in raw)
    return histories, requests


def protocols():
    return st.sampled_from(
        [
            lambda: TTLProtocol(hours(0)),
            lambda: TTLProtocol(hours(36)),
            lambda: TTLProtocol(hours(400)),
            lambda: AlexProtocol.from_percent(5),
            lambda: AlexProtocol.from_percent(60),
            lambda: AlexProtocol.from_percent(100),
        ]
    )


@settings(max_examples=50, deadline=None)
@given(workload=workloads(), make_protocol=protocols())
def test_single_node_hierarchy_equals_flat_simulator(workload, make_protocol):
    histories, requests = workload
    server = OriginServer(histories)

    flat = simulate(server, make_protocol(), requests,
                    SimulatorMode.OPTIMIZED, end_time=DURATION)

    node = CacheNode("cache", make_protocol())
    tree = HierarchySimulation(server, node, [node])
    tree.preload(at=0.0)
    stale_hits = 0
    for t, oid in requests:
        if tree.request("cache", oid, t):
            stale_hits += 1
    tree.finish(DURATION)

    assert node.uplink.total_bytes == flat.bandwidth.total_bytes
    assert stale_hits == flat.counters.stale_hits
    assert node.counters.misses == flat.counters.misses
    assert node.counters.validations == flat.counters.validations
    assert (
        node.counters.validations_not_modified
        == flat.counters.validations_not_modified
    )
    assert node.counters.server_gets == flat.counters.server_gets
    assert node.counters.server_ims_queries == flat.counters.server_ims_queries
