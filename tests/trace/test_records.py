"""Trace records and the observed-change computation."""

import pytest

from repro.trace.records import Trace, TraceRecord


def record(t, path="/a", client="h1", lm=None, size=100) -> TraceRecord:
    return TraceRecord(timestamp=t, client=client, path=path, size=size,
                       last_modified=lm)


class TestTraceRecord:
    def test_defaults(self):
        r = record(1.0)
        assert r.status == 200
        assert r.last_modified is None

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(timestamp=0, client="h", path="")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(timestamp=0, client="h", path="/a", size=-1)


class TestTrace:
    def test_sorted_on_ingest(self):
        trace = Trace([record(3.0), record(1.0), record(2.0)])
        assert [r.timestamp for r in trace] == [1.0, 2.0, 3.0]

    def test_len_getitem(self):
        trace = Trace([record(1.0), record(2.0)])
        assert len(trace) == 2
        assert trace[0].timestamp == 1.0

    def test_duration(self):
        assert Trace([record(1.0), record(9.0)]).duration == 8.0
        assert Trace([]).duration == 0.0

    def test_paths_and_requests(self):
        trace = Trace([record(1.0, "/a"), record(2.0, "/b")])
        assert trace.paths() == {"/a", "/b"}
        assert trace.requests() == [(1.0, "/a"), (2.0, "/b")]

    def test_filter(self):
        trace = Trace([record(1.0, client="x"), record(2.0, client="y")])
        filtered = trace.filter(lambda r: r.client == "x")
        assert len(filtered) == 1

    def test_request_counts(self):
        trace = Trace([record(1.0, "/a"), record(2.0, "/a"),
                       record(3.0, "/b")])
        assert trace.request_counts() == {"/a": 2, "/b": 1}


class TestObservedChanges:
    def test_lm_transition_counts_as_change(self):
        trace = Trace([record(1.0, lm=-100.0), record(2.0, lm=50.0)])
        assert trace.observed_changes() == {"/a": 1}

    def test_stable_lm_no_change(self):
        trace = Trace([record(1.0, lm=-100.0), record(2.0, lm=-100.0)])
        assert trace.observed_changes() == {}

    def test_changes_between_requests_collapse(self):
        """Two content changes with no request in between are observed
        as one — the undercounting the paper's method inherits."""
        trace = Trace([record(1.0, lm=0.0), record(10.0, lm=9.0)])
        assert trace.observed_changes() == {"/a": 1}

    def test_multiple_transitions(self):
        trace = Trace([
            record(1.0, lm=0.0), record(2.0, lm=1.5),
            record(3.0, lm=2.5), record(4.0, lm=2.5),
        ])
        assert trace.observed_changes() == {"/a": 2}

    def test_per_path_isolation(self):
        trace = Trace([
            record(1.0, "/a", lm=0.0), record(2.0, "/b", lm=0.0),
            record(3.0, "/a", lm=2.0),
        ])
        assert trace.observed_changes() == {"/a": 1}

    def test_records_without_lm_ignored(self):
        trace = Trace([record(1.0, lm=None), record(2.0, lm=1.0),
                       record(3.0, lm=None), record(4.0, lm=3.0)])
        assert trace.observed_changes() == {"/a": 1}
