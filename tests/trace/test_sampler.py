"""The BU daily-sampling methodology (Table 2)."""

import pytest

from repro.core.clock import DAY, days
from repro.trace.sampler import DailySampler
from tests.conftest import make_history


class TestSampling:
    def test_one_sample_per_day(self):
        sampler = DailySampler([make_history("/a")], window=days(10))
        samples = sampler.run()
        assert [s.day for s in samples] == list(range(1, 11))

    def test_change_lands_on_right_day(self):
        sampler = DailySampler(
            [make_history("/a", changes=(days(2.5),))], window=days(5)
        )
        samples = sampler.run()
        assert samples[2].day == 3
        assert samples[2].changed == {"/a"}
        assert all(not s.changed for s in samples if s.day != 3)

    def test_same_day_changes_collapse(self):
        """Day granularity masks multiple changes in one day."""
        sampler = DailySampler(
            [make_history("/a", changes=(days(2.1), days(2.5), days(2.9)))],
            window=days(5),
        )
        samples = sampler.run()
        counts = sampler.observed_change_days(samples)
        assert counts["/a"] == 1

    def test_changes_on_distinct_days_all_seen(self):
        sampler = DailySampler(
            [make_history("/a", changes=(days(1.5), days(3.5)))],
            window=days(5),
        )
        counts = sampler.observed_change_days(sampler.run())
        assert counts["/a"] == 2

    def test_window_shorter_than_a_day_rejected(self):
        with pytest.raises(ValueError):
            DailySampler([], window=0.5 * DAY)

    def test_masking_loss(self):
        sampler = DailySampler(
            [make_history("/a", changes=(days(2.1), days(2.5), days(2.9)))],
            window=days(5),
        )
        loss = sampler.masking_loss(sampler.run())
        assert loss == pytest.approx(2 / 3)

    def test_masking_loss_zero_when_no_changes(self):
        sampler = DailySampler([make_history("/a")], window=days(5))
        assert sampler.masking_loss(sampler.run()) == 0.0


class TestEstimators:
    def test_never_changed_file_gets_window_lifespan(self):
        """The paper's conservative bias: unchanged files are assumed to
        have changed exactly once, capping life-spans at the window."""
        sampler = DailySampler([make_history("/a")], window=days(100))
        estimates = sampler.estimate_lifespans(sampler.run())
        est = estimates["html"]
        assert est.median_lifespan_days == 100.0
        assert est.avg_age_days == 100.0

    def test_changed_file_lifespan(self):
        sampler = DailySampler(
            [make_history("/a", changes=(days(10.5), days(50.5)))],
            window=days(100),
        )
        est = sampler.estimate_lifespans(sampler.run())["html"]
        assert est.median_lifespan_days == 50.0        # 100 / 2 changes
        assert est.avg_age_days == pytest.approx(49.0)  # last change day 51

    def test_per_type_grouping(self):
        sampler = DailySampler(
            [
                make_history("/a", file_type="gif"),
                make_history("/b", file_type="html",
                             changes=(days(5.5),)),
            ],
            window=days(10),
        )
        estimates = sampler.estimate_lifespans(sampler.run())
        assert set(estimates) == {"gif", "html"}
        assert estimates["gif"].files == 1
        assert estimates["html"].observed_change_days == 1

    def test_last_observed_change(self):
        sampler = DailySampler(
            [make_history("/a", changes=(days(1.5), days(7.5)))],
            window=days(10),
        )
        last = sampler.last_observed_change(sampler.run())
        assert last["/a"] == 8

    def test_frequent_changes_short_lifespan(self):
        changes = tuple(days(d + 0.5) for d in range(0, 100, 2))
        sampler = DailySampler(
            [make_history("/hot", changes=changes)], window=days(100)
        )
        est = sampler.estimate_lifespans(sampler.run())["html"]
        assert est.median_lifespan_days == pytest.approx(2.0)
