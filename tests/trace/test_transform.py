"""Trace transformations."""

import pytest

from repro.trace.records import Trace, TraceRecord
from repro.trace.transform import (
    anonymize_clients,
    clip_window,
    filter_paths,
    merge_traces,
    sample_every,
    shift_times,
)


def record(t, path="/a.html", client="h1", lm=None):
    return TraceRecord(timestamp=t, client=client, path=path, size=10,
                       last_modified=lm)


@pytest.fixture
def trace():
    return Trace(
        [
            record(1.0, "/a.html", "alice.example.net", lm=-5.0),
            record(2.0, "/b.gif", "bob.example.net"),
            record(3.0, "/a.html", "alice.example.net", lm=1.5),
            record(4.0, "/c.jpg", "carol.example.net"),
        ],
        name="t",
    )


class TestMerge:
    def test_interleaves_in_time_order(self):
        a = Trace([record(1.0), record(5.0)])
        b = Trace([record(3.0)])
        merged = merge_traces([a, b])
        assert [r.timestamp for r in merged] == [1.0, 3.0, 5.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_traces([])

    def test_inputs_untouched(self, trace):
        before = len(trace)
        merge_traces([trace, trace])
        assert len(trace) == before


class TestClipAndShift:
    def test_clip_half_open(self, trace):
        clipped = clip_window(trace, 2.0, 4.0)
        assert [r.timestamp for r in clipped] == [2.0, 3.0]

    def test_clip_inverted_rejected(self, trace):
        with pytest.raises(ValueError):
            clip_window(trace, 5.0, 1.0)

    def test_shift_moves_lm_too(self, trace):
        shifted = shift_times(trace, 100.0)
        assert shifted[0].timestamp == 101.0
        assert shifted[0].last_modified == 95.0
        assert shifted[1].last_modified is None

    def test_clip_then_rebase(self, trace):
        window = shift_times(clip_window(trace, 2.0, 4.0), -2.0)
        assert window[0].timestamp == 0.0


class TestAnonymize:
    def test_labels_stable_and_opaque(self, trace):
        anon = anonymize_clients(trace)
        assert anon[0].client == "client000"
        assert anon[2].client == "client000"   # same original client
        assert anon[1].client == "client001"
        assert "alice" not in "".join(r.client for r in anon)

    def test_structure_preserved(self, trace):
        anon = anonymize_clients(trace)
        assert anon.requests() == trace.requests()
        assert anon.observed_changes() == trace.observed_changes()

    def test_custom_prefix(self, trace):
        assert anonymize_clients(trace, "host")[0].client == "host000"


class TestSampleAndFilter:
    def test_sample_every_keeps_first(self, trace):
        thinned = sample_every(trace, 2)
        assert [r.timestamp for r in thinned] == [1.0, 3.0]

    def test_sample_one_is_identity(self, trace):
        assert len(sample_every(trace, 1)) == len(trace)

    def test_sample_invalid(self, trace):
        with pytest.raises(ValueError):
            sample_every(trace, 0)

    def test_filter_paths(self, trace):
        images = filter_paths(trace, (".gif", ".jpg"))
        assert {r.path for r in images} == {"/b.gif", "/c.jpg"}

    def test_filter_composes_with_clip(self, trace):
        sliced = filter_paths(clip_window(trace, 0.0, 3.5), (".html",))
        assert len(sliced) == 2
