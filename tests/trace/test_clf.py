"""Extended Common-Log-Format round trips."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.clf import (
    CLFParseError,
    format_clf_time,
    format_record,
    parse_clf_time,
    parse_record,
    read_clf,
    write_clf,
)
from repro.trace.records import TraceRecord


def record(**kwargs) -> TraceRecord:
    defaults = dict(
        timestamp=86_400.0, client="ws01.das.harvard.edu",
        path="/das/doc0001.html", status=200, size=5120,
        last_modified=-86_400.0,
    )
    defaults.update(kwargs)
    return TraceRecord(**defaults)


class TestClfTime:
    def test_format(self):
        assert format_clf_time(0.0) == "01/Mar/1995:00:00:00 +0000"

    def test_round_trip(self):
        for t in (0.0, 86_400.0, 123_456.0):
            assert parse_clf_time(format_clf_time(t)) == t

    def test_zone_offset_applied(self):
        base = parse_clf_time("01/Mar/1995:12:00:00 +0000")
        plus = parse_clf_time("01/Mar/1995:12:00:00 +0100")
        assert plus == base - 3600

    @pytest.mark.parametrize(
        "bad", ["", "garbage", "01/Xxx/1995:00:00:00 +0000",
                "1/Mar/1995:00:00:00 +0000"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_clf_time(bad)


class TestRecordLine:
    def test_format_contains_fields(self):
        line = format_record(record())
        assert "ws01.das.harvard.edu" in line
        assert '"GET /das/doc0001.html HTTP/1.0"' in line
        assert " 200 5120 " in line
        assert line.endswith('GMT"')

    def test_round_trip(self):
        original = record()
        parsed = parse_record(format_record(original))
        assert parsed == original

    def test_missing_lm_renders_dash(self):
        line = format_record(record(last_modified=None))
        assert line.endswith('"-"')
        assert parse_record(line).last_modified is None

    def test_plain_clf_without_extension_accepted(self):
        line = ('h - - [01/Mar/1995:00:00:00 +0000] '
                '"GET /x HTTP/1.0" 200 10')
        parsed = parse_record(line)
        assert parsed.last_modified is None
        assert parsed.size == 10

    def test_dash_size_parsed_as_zero(self):
        line = ('h - - [01/Mar/1995:00:00:00 +0000] '
                '"GET /x HTTP/1.0" 304 -')
        assert parse_record(line).size == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "not a log line",
            'h - - [bad time] "GET /x HTTP/1.0" 200 10',
            'h - - [01/Mar/1995:00:00:00 +0000] "GET /x HTTP/1.0" 200 10 "bad date"',
        ],
    )
    def test_malformed_line_raises_with_lineno(self, bad):
        with pytest.raises(CLFParseError) as exc_info:
            parse_record(bad, lineno=7)
        assert exc_info.value.lineno == 7
        assert "line 7" in str(exc_info.value)


class TestStreamIO:
    def test_write_read_round_trip(self):
        records = [record(timestamp=float(i * 3600)) for i in range(10)]
        buffer = io.StringIO()
        assert write_clf(records, buffer) == 10
        buffer.seek(0)
        trace = read_clf(buffer, name="t")
        assert len(trace) == 10
        assert list(trace) == records

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n" + format_record(record()) + "\n"
        trace = read_clf(io.StringIO(text))
        assert len(trace) == 1

    def test_error_reports_line_number(self):
        text = "# header\ngarbage\n"
        with pytest.raises(CLFParseError, match="line 2"):
            read_clf(io.StringIO(text))


@settings(max_examples=50, deadline=None)
@given(
    timestamp=st.integers(min_value=0, max_value=365 * 86400).map(float),
    size=st.integers(min_value=0, max_value=10**8),
    status=st.sampled_from([200, 304, 404]),
    lm=st.one_of(
        st.none(),
        st.integers(min_value=-365 * 86400, max_value=365 * 86400).map(float),
    ),
)
def test_round_trip_property(timestamp, size, status, lm):
    original = TraceRecord(
        timestamp=timestamp, client="host.example.net", path="/p/q.gif",
        status=status, size=size, last_modified=lm,
    )
    assert parse_record(format_record(original)) == original
