"""Workload → trace rendering and on-disk round trips."""

import pytest

from repro.core.clock import days
from repro.trace.stats import mutability_from_trace
from repro.trace.synthesis import (
    DEFAULT_CLIENT,
    read_trace,
    trace_from_workload,
    write_trace,
)
from repro.workload.base import Workload
from repro.workload.campus import FAS, CampusWorkload
from tests.conftest import make_history


def tiny_workload(clients=None) -> Workload:
    return Workload(
        histories=[
            make_history("/a", size=500, changes=(days(2),)),
            make_history("/dyn", cacheable=False, size=100),
        ],
        requests=[(days(1), "/a"), (days(3), "/a"), (days(4), "/dyn")],
        duration=days(10),
        clients=clients,
        name="tiny",
    )


class TestTraceFromWorkload:
    def test_record_per_request(self):
        trace = trace_from_workload(tiny_workload())
        assert len(trace) == 3
        assert trace.name == "tiny"

    def test_last_modified_tracks_schedule(self):
        trace = trace_from_workload(tiny_workload())
        assert trace[0].last_modified == -days(30)   # before the change
        assert trace[1].last_modified == days(2)     # after the change

    def test_dynamic_objects_log_no_lm(self):
        trace = trace_from_workload(tiny_workload())
        assert trace[2].last_modified is None

    def test_sizes_recorded(self):
        trace = trace_from_workload(tiny_workload())
        assert trace[0].size == 500

    def test_default_client_when_absent(self):
        trace = trace_from_workload(tiny_workload())
        assert trace[0].client == DEFAULT_CLIENT

    def test_clients_preserved(self):
        trace = trace_from_workload(tiny_workload(clients=["c1", "c2", "c3"]))
        assert [r.client for r in trace] == ["c1", "c2", "c3"]


class TestDiskRoundTrip:
    def test_write_read(self, tmp_path):
        trace = trace_from_workload(tiny_workload())
        path = tmp_path / "tiny.log"
        assert write_trace(trace, path) == 3
        loaded = read_trace(path)
        assert len(loaded) == 3
        assert loaded.requests() == trace.requests()
        assert [r.size for r in loaded] == [r.size for r in trace]

    def test_written_file_has_header_comment(self, tmp_path):
        path = tmp_path / "t.log"
        write_trace(trace_from_workload(tiny_workload()), path)
        assert path.read_text().startswith("# extended CLF trace: tiny")

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace(tmp_path / "nope.log")

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "fas-march.log"
        write_trace(trace_from_workload(tiny_workload()), path)
        assert read_trace(path).name == "fas-march"


class TestEndToEndStatistics:
    def test_campus_trace_statistics_survive_disk(self, tmp_path):
        """Synthesize FAS, write to disk, read back, recompute Table 1
        observables — the full paper pipeline."""
        workload = CampusWorkload(FAS, seed=5, request_scale=0.2).build()
        trace = trace_from_workload(workload)
        path = tmp_path / "fas.log"
        write_trace(trace, path)
        loaded = read_trace(path)

        stats = mutability_from_trace(loaded)
        assert stats.requests == len(workload.requests)
        assert stats.files <= FAS.files       # only requested files appear
        assert abs(stats.pct_remote - FAS.pct_remote) < 6.0
        # Observed changes never exceed scheduled ones.
        truth = sum(
            h.schedule.changes_in(0.0, workload.duration)
            for h in workload.histories
        )
        assert stats.total_changes <= truth
