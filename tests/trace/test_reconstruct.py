"""Rebuilding simulator inputs from logs (trace.reconstruct)."""

import pytest

from repro.core.clock import days
from repro.core.protocols import AlexProtocol, InvalidationProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.trace.reconstruct import (
    histories_from_trace,
    server_from_trace,
    workload_from_trace,
)
from repro.trace.records import Trace, TraceRecord
from repro.trace.synthesis import trace_from_workload
from repro.workload.campus import FAS, CampusWorkload


def record(t, path="/a.html", lm=None, size=100, client="h1"):
    return TraceRecord(timestamp=t, client=client, path=path, size=size,
                       last_modified=lm)


class TestHistories:
    def test_single_version_object(self):
        histories = histories_from_trace(
            Trace([record(1.0, lm=-50.0), record(2.0, lm=-50.0)])
        )
        assert len(histories) == 1
        assert histories[0].schedule.total_changes == 0
        assert histories[0].obj.created == -50.0

    def test_versions_from_lm_transitions(self):
        histories = histories_from_trace(
            Trace([record(1.0, lm=-50.0), record(5.0, lm=2.0),
                   record(9.0, lm=7.0)])
        )
        assert histories[0].schedule.times == (2.0, 7.0)

    def test_type_from_extension(self):
        histories = histories_from_trace(
            Trace([record(1.0, "/x/img.gif", lm=0.5),
                   record(2.0, "/no-extension", lm=0.5)])
        )
        types = {h.object_id: h.obj.file_type for h in histories}
        assert types["/x/img.gif"] == "gif"
        assert types["/no-extension"] == "other"

    def test_dynamic_detection(self):
        histories = histories_from_trace(
            Trace([record(1.0, "/cgi-bin/q", lm=None)])
        )
        assert not histories[0].obj.cacheable


class TestWorkloadFromTrace:
    def test_carries_requests_clients_duration(self):
        trace = Trace([record(1.0, client="x"), record(9.0, client="y")])
        workload = workload_from_trace(trace)
        assert workload.requests == trace.requests()
        assert workload.clients == ["x", "y"]
        assert workload.duration == 9.0

    def test_empty_trace(self):
        workload = workload_from_trace(Trace([]))
        assert workload.requests == []
        assert workload.duration == 0.0

    def test_round_trip_is_an_observable_lower_bound(self):
        """Synthesize -> log -> reconstruct -> simulate: changes the log
        never straddled (and intermediate versions collapsed between two
        requests) disappear, so the reconstructed run can only *under*-
        count consistency traffic relative to the original — never
        invent it — and stays in the same regime."""
        original = CampusWorkload(FAS, seed=33, request_scale=0.15).build()
        rebuilt = workload_from_trace(trace_from_workload(original))

        run_a = simulate(
            original.server(), AlexProtocol.from_percent(10),
            original.requests, SimulatorMode.OPTIMIZED,
            end_time=original.duration,
        )
        run_b = simulate(
            rebuilt.server(), AlexProtocol.from_percent(10),
            rebuilt.requests, SimulatorMode.OPTIMIZED,
            end_time=rebuilt.duration,
        )
        # Lower bound (1-second log rounding may flip one boundary case).
        assert run_b.counters.misses <= run_a.counters.misses + 1
        assert run_b.counters.stale_hits <= run_a.counters.stale_hits + 1
        # Same regime: request accounting identical, traffic close.
        assert run_b.counters.requests == run_a.counters.requests
        assert run_b.bandwidth.total_bytes <= run_a.bandwidth.total_bytes * 1.05

    def test_invalidation_on_reconstruction_never_stale(self):
        original = CampusWorkload(FAS, seed=34, request_scale=0.1).build()
        rebuilt = workload_from_trace(trace_from_workload(original))
        result = simulate(
            rebuilt.server(), InvalidationProtocol(), rebuilt.requests,
            SimulatorMode.OPTIMIZED, end_time=rebuilt.duration,
        )
        assert result.counters.stale_hits == 0

    def test_observability_gap_documented(self):
        """Changes nobody requested across are absent from the rebuilt
        schedule — the reconstruction can only undercount."""
        original = CampusWorkload(FAS, seed=35, request_scale=0.05).build()
        rebuilt = workload_from_trace(trace_from_workload(original))
        assert rebuilt.total_changes <= original.total_changes

    def test_server_from_trace_shortcut(self):
        server = server_from_trace(Trace([record(1.0, lm=-1.0)]))
        assert "/a.html" in server
