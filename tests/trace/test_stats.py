"""Table 1 mutability statistics."""

import pytest

from repro.core.clock import DAY, days
from repro.trace.records import Trace, TraceRecord
from repro.trace.stats import (
    MutabilityStats,
    daily_change_probability,
    default_is_remote,
    mutability_from_histories,
    mutability_from_trace,
)
from tests.conftest import make_history


class TestFromHistories:
    def test_counts_and_percentages(self):
        histories = [
            make_history("/stable"),
            make_history("/once", changes=(days(1),)),
            make_history("/burst",
                         changes=tuple(days(1 + 0.1 * i) for i in range(7))),
            make_history("/later", changes=(days(40),)),  # outside window
        ]
        stats = mutability_from_histories(histories, window=days(30))
        assert stats.files == 4
        assert stats.total_changes == 8
        assert stats.pct_mutable == pytest.approx(50.0)
        assert stats.pct_very_mutable == pytest.approx(25.0)

    def test_exactly_five_changes_not_very_mutable(self):
        histories = [
            make_history("/five",
                         changes=tuple(days(i + 1) for i in range(5))),
        ]
        stats = mutability_from_histories(histories, window=days(30))
        assert stats.pct_very_mutable == 0.0
        assert stats.pct_mutable == 100.0

    def test_six_changes_is_very_mutable(self):
        histories = [
            make_history("/six",
                         changes=tuple(days(i + 1) for i in range(6))),
        ]
        stats = mutability_from_histories(histories, window=days(30))
        assert stats.pct_very_mutable == 100.0

    def test_empty_population(self):
        stats = mutability_from_histories([], window=days(30))
        assert stats.files == 0
        assert stats.pct_mutable == 0.0

    def test_as_row_order(self):
        stats = MutabilityStats("X", 10, 100, 50.0, 5, 20.0, 10.0)
        assert stats.as_row() == ("X", 10, 100, 50.0, 5, 20.0, 10.0)


class TestDailyChangeProbability:
    def test_paper_hcs_example(self):
        # "573 files changing 260 times over 25 days ... 1.8%"
        prob = daily_change_probability(260, 573, 25)
        assert prob == pytest.approx(0.018, abs=0.001)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            daily_change_probability(1, 0, 25)
        with pytest.raises(ValueError):
            daily_change_probability(1, 10, 0)


class TestIsRemote:
    def test_campus_domain_local(self):
        assert not default_is_remote("ws01.das.harvard.edu")

    def test_everything_else_remote(self):
        assert default_is_remote("dialup7.aol.com")
        assert default_is_remote("harvard.edu.evil.net")


class TestFromTrace:
    def _record(self, t, path, lm, client="remote.isp.net"):
        return TraceRecord(timestamp=t, client=client, path=path, size=10,
                           last_modified=lm)

    def test_observed_changes_counted(self):
        trace = Trace([
            self._record(days(1), "/a", lm=-days(10)),
            self._record(days(2), "/a", lm=days(1.5)),
            self._record(days(3), "/b", lm=-days(10),
                         client="x.harvard.edu"),
        ])
        stats = mutability_from_trace(trace)
        assert stats.files == 2
        assert stats.requests == 3
        assert stats.total_changes == 1
        assert stats.pct_mutable == pytest.approx(50.0)
        assert stats.pct_remote == pytest.approx(100 * 2 / 3)

    def test_custom_is_remote(self):
        trace = Trace([self._record(1.0, "/a", None, client="inside.corp")])
        stats = mutability_from_trace(
            trace, is_remote=lambda c: not c.endswith(".corp")
        )
        assert stats.pct_remote == 0.0

    def test_observed_undercounts_ground_truth(self):
        """Changes with no straddling request are invisible in the log."""
        history = make_history("/a", changes=(days(5), days(6), days(7)))
        trace = Trace([
            self._record(days(1), "/a", lm=history.schedule.last_modified_at(days(1))),
            self._record(days(10), "/a", lm=history.schedule.last_modified_at(days(10))),
        ])
        observed = mutability_from_trace(trace)
        truth = mutability_from_histories([history], window=days(30))
        assert observed.total_changes == 1
        assert truth.total_changes == 3
