"""Fuzzing the extended-CLF parser: valid inputs round-trip, corrupted
inputs fail loudly with a line number, and nothing crashes unexpectedly."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.clf import CLFParseError, format_record, parse_record, read_clf
from repro.trace.records import TraceRecord

_PATH_CHARS = st.sampled_from(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._/~%"
)
_HOST_CHARS = st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-.")


@st.composite
def records(draw):
    path = "/" + "".join(draw(st.lists(_PATH_CHARS, min_size=1,
                                       max_size=40)))
    client = "".join(draw(st.lists(_HOST_CHARS, min_size=1, max_size=30)))
    return TraceRecord(
        timestamp=float(draw(st.integers(0, 400 * 86400))),
        client=client,
        path=path,
        status=draw(st.sampled_from([200, 304, 404])),
        size=draw(st.integers(0, 10**9)),
        last_modified=draw(
            st.one_of(
                st.none(),
                st.integers(-400 * 86400, 400 * 86400).map(float),
            )
        ),
    )


@settings(max_examples=80, deadline=None)
@given(record=records())
def test_arbitrary_paths_and_hosts_round_trip(record):
    assert parse_record(format_record(record)) == record


@settings(max_examples=60, deadline=None)
@given(record=records(), cut=st.integers(1, 20))
def test_truncated_lines_rejected_not_crashed(record, cut):
    line = format_record(record)
    truncated = line[:-cut]
    try:
        parsed = parse_record(truncated)
    except CLFParseError:
        return  # the expected outcome
    # A truncation can still leave a syntactically valid plain-CLF line
    # (e.g. cutting the optional trailing quote group).  Parsing back to
    # the identical record is only legitimate when the cut removed
    # redundant trailing content — a '"-"' marker for a record that had
    # no Last-Modified to begin with.  Any other silent equality would
    # mean the parser invented data.
    if parsed == record:
        assert record.last_modified is None
    else:
        assert isinstance(parsed, TraceRecord)


@settings(max_examples=60, deadline=None)
@given(
    record=records(),
    position=st.integers(0, 30),
    junk=st.sampled_from("\x00[]\"{}|"),
)
def test_injected_junk_never_misparses_silently(record, position, junk):
    line = format_record(record)
    position = min(position, len(line) - 1)
    corrupted = line[:position] + junk + line[position + 1:]
    try:
        parsed = parse_record(corrupted)
    except (CLFParseError, ValueError):
        return
    # If it still parses, some field must reflect the corruption (the
    # parse is not allowed to reproduce the original record from a
    # corrupted line unless the corruption hit a separator-equivalent).
    assert isinstance(parsed, TraceRecord)


def test_stream_error_includes_line_number():
    good = format_record(
        TraceRecord(timestamp=0.0, client="h", path="/a", size=1)
    )
    stream = io.StringIO(good + "\n" + good + "\nDEADBEEF\n")
    with pytest.raises(CLFParseError, match="line 3"):
        read_clf(stream)


def test_large_stream_parses(tmp_path):
    record = TraceRecord(timestamp=1.0, client="h", path="/a", size=1,
                         last_modified=0.0)
    lines = (format_record(record) + "\n") * 5000
    trace = read_clf(io.StringIO(lines))
    assert len(trace) == 5000
