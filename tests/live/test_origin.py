"""Behavior tests for :class:`repro.live.origin.LiveOrigin`.

Each test boots the origin on an ephemeral loopback port, performs real
HTTP/1.0 exchanges, and checks the responses carry exactly the
metadata the simulator's :class:`~repro.core.server.OriginServer`
would have produced for the same query.
"""

import asyncio
import json

import pytest

from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.server import OriginServer
from repro.http.messages import Request
from repro.live.origin import LiveOrigin
from repro.live.wire import CONTROL_PREFIX, DATE, PRAGMA, WARMUP_HEADER, exchange


def _server() -> OriginServer:
    return OriginServer([
        ObjectHistory(WebObject("/a", size=1000, created=-500.0),
                      ModificationSchedule(-500.0, (40.0,))),
        ObjectHistory(
            WebObject("/exp", size=300, created=-100.0, expires_after=60.0)),
        ObjectHistory(WebObject("/dyn", size=50, created=-10.0,
                                cacheable=False)),
    ])


def _run(coro_fn):
    """Boot an origin, run ``coro_fn(origin)``, tear down; return result."""
    async def body():
        origin = LiveOrigin(_server())
        await origin.start()
        try:
            return await coro_fn(origin)
        finally:
            await origin.close()

    return asyncio.run(body())


def _get(path: str, t: float = None, since: float = None,
         warmup: bool = False) -> Request:
    request = Request("GET", path)
    if t is not None:
        request.headers.set_date(DATE, t)
    if since is not None:
        request.headers.set_date("If-Modified-Since", since)
    if warmup:
        request.headers.set(WARMUP_HEADER, "1")
    return request


class TestObjectRetrieval:
    def test_full_get_carries_the_model_metadata(self):
        async def scenario(origin):
            return await exchange(origin.host, origin.port, _get("/a", 10.0))

        response, body, _ = _run(scenario)
        assert response.status == 200
        assert response.body_size == 1000
        assert len(body) == 1000
        assert response.headers.last_modified == -500.0
        assert response.headers.get("Content-Type") == "html"
        assert response.headers.expires is None
        assert PRAGMA not in response.headers

    def test_expiring_object_gets_expires_header(self):
        async def scenario(origin):
            return await exchange(origin.host, origin.port,
                                  _get("/exp", 10.0))

        response, _, _ = _run(scenario)
        assert response.headers.expires == 70.0  # t + expires_after

    def test_dynamic_object_marked_no_cache(self):
        async def scenario(origin):
            return await exchange(origin.host, origin.port,
                                  _get("/dyn", 10.0))

        response, _, _ = _run(scenario)
        assert response.headers.get(PRAGMA) == "no-cache"

    def test_unknown_object_404(self):
        async def scenario(origin):
            return await exchange(origin.host, origin.port,
                                  _get("/nope", 10.0))

        response, _, _ = _run(scenario)
        assert response.status == 404

    def test_missing_date_is_400(self):
        async def scenario(origin):
            return await exchange(origin.host, origin.port, _get("/a"))

        response, _, _ = _run(scenario)
        assert response.status == 400

    def test_non_get_is_400(self):
        async def scenario(origin):
            request = Request("POST", "/a")
            request.headers.set_date(DATE, 5.0)
            return await exchange(origin.host, origin.port, request)

        response, _, _ = _run(scenario)
        assert response.status == 400


class TestConditionalGet:
    def test_unmodified_returns_304_with_restamped_expires(self):
        async def scenario(origin):
            return await exchange(
                origin.host, origin.port,
                _get("/exp", t=30.0, since=-100.0))

        response, body, _ = _run(scenario)
        assert response.status == 304
        assert body == ""
        # NotModified re-stamps Expires relative to the validation time.
        assert response.headers.expires == 90.0

    def test_modified_returns_full_200(self):
        async def scenario(origin):
            # /a changed at t=40; a copy from before is out of date.
            return await exchange(
                origin.host, origin.port, _get("/a", t=50.0, since=-500.0))

        response, _, _ = _run(scenario)
        assert response.status == 200
        assert response.headers.last_modified == 40.0


class TestCounting:
    def test_counts_gets_and_ims_separately(self):
        async def scenario(origin):
            await exchange(origin.host, origin.port, _get("/a", 5.0))
            await exchange(origin.host, origin.port,
                           _get("/a", t=10.0, since=-500.0))
            _, stats, _ = await exchange(
                origin.host, origin.port,
                _get(CONTROL_PREFIX + "stats"))
            return json.loads(stats)

        stats = _run(scenario)
        assert stats == {"gets": 1, "ims_queries": 1}

    def test_warmup_fetches_are_not_counted(self):
        async def scenario(origin):
            await exchange(origin.host, origin.port,
                           _get("/a", 5.0, warmup=True))
            _, stats, _ = await exchange(
                origin.host, origin.port,
                _get(CONTROL_PREFIX + "stats"))
            return json.loads(stats)

        stats = _run(scenario)
        assert stats == {"gets": 0, "ims_queries": 0}


class TestControlEndpoints:
    def test_population_lists_only_cacheable_objects(self):
        async def scenario(origin):
            _, body, _ = await exchange(
                origin.host, origin.port,
                _get(CONTROL_PREFIX + "population"))
            return body

        assert _run(scenario).splitlines() == ["/a", "/exp"]

    def test_invalidation_window_is_exclusive_inclusive(self):
        async def scenario(origin):
            async def window(since, until):
                _, body, _ = await exchange(
                    origin.host, origin.port,
                    _get(CONTROL_PREFIX + "invalidations",
                         t=until, since=since))
                return [line.split("\t")[1] for line in body.splitlines()]

            return (
                await window(0.0, 39.0),   # before the change
                await window(0.0, 40.0),   # until inclusive
                await window(40.0, 80.0),  # since exclusive
            )

        before, at, after = _run(scenario)
        assert before == []
        assert at == ["/a"]
        assert after == []

    def test_unknown_control_endpoint_404(self):
        async def scenario(origin):
            return await exchange(origin.host, origin.port,
                                  _get(CONTROL_PREFIX + "nope"))

        response, _, _ = _run(scenario)
        assert response.status == 404


class TestKeepAliveAndIdempotency:
    def test_keepalive_serves_many_exchanges_on_one_socket(self):
        from repro.live.wire import LiveConnection

        async def scenario(origin):
            connection = LiveConnection(origin.host, origin.port)
            try:
                replies = []
                for t in (10.0, 20.0, 30.0):
                    response, _, _ = await connection.request(
                        _get("/a", t))
                    replies.append(response.status)
                return replies
            finally:
                await connection.close()

        assert _run(scenario) == [200, 200, 200]

    def test_duplicate_seq_is_served_but_counted_once(self):
        from repro.live.wire import SEQ_HEADER

        async def scenario(origin):
            request = _get("/a", 10.0)
            request.headers.set(SEQ_HEADER, "/a@0")
            first, _, _ = await exchange(origin.host, origin.port, request)
            retry = _get("/a", 10.0)
            retry.headers.set(SEQ_HEADER, "/a@0")
            second, _, _ = await exchange(origin.host, origin.port, retry)
            _, stats, _ = await exchange(
                origin.host, origin.port, _get(CONTROL_PREFIX + "stats"))
            return first.status, second.status, json.loads(stats)

        first, second, stats = _run(scenario)
        # The retry gets a full, correct reply — only the *count* dedups.
        assert (first, second) == (200, 200)
        assert stats == {"gets": 1, "ims_queries": 0}

    def test_distinct_seqs_count_separately(self):
        from repro.live.wire import SEQ_HEADER

        async def scenario(origin):
            for k in range(2):
                request = _get("/a", 10.0)
                request.headers.set(SEQ_HEADER, f"/a@{k}")
                await exchange(origin.host, origin.port, request)
            _, stats, _ = await exchange(
                origin.host, origin.port, _get(CONTROL_PREFIX + "stats"))
            return json.loads(stats)

        assert _run(scenario) == {"gets": 2, "ims_queries": 0}

    def test_stats_payload_stays_pinned(self):
        """The stats body is part of the byte-identity contract for
        zero-fault serial replays — exactly two keys, nothing extra."""
        async def scenario(origin):
            _, stats, _ = await exchange(
                origin.host, origin.port, _get(CONTROL_PREFIX + "stats"))
            return json.loads(stats)

        assert sorted(_run(scenario)) == ["gets", "ims_queries"]
