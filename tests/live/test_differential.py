"""The live-vs-sim differential: the tentpole acceptance suite.

Every supported consistency protocol, in both simulator modes, is
driven twice over the same workload — once through real asyncio
sockets (:func:`repro.live.driver.run_replay`) and once through
:func:`repro.core.simulator.simulate` — and the two runs must agree on
all thirteen counters and all fifteen bandwidth-ledger cells *exactly*.

The workload is deliberately adversarial: pre-trace creation times
(negative Last-Modified stamps — the datefmt pre-epoch regression this
PR fixes), an ``Expires``-bearing object, a dynamic (non-cacheable)
object, and modifications interleaved with requests so hits, 304s,
200-revalidations, invalidations, and stale hits all occur.
"""

import pytest

from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.live import diff_live_vs_sim, live_vs_sim
from repro.live.wire import LiveReplayError
from repro.verify.oracle import ConsistencyViolation


def _histories():
    return [
        ObjectHistory(WebObject("/a", size=1000, created=-5000.0),
                      ModificationSchedule(-5000.0, (40.0, 90.0))),
        ObjectHistory(WebObject("/b", size=2500, created=-100.0,
                                file_type="image"),
                      ModificationSchedule(-100.0, (55.0,))),
        ObjectHistory(
            WebObject("/exp", size=700, created=-300.0, expires_after=30.0),
            ModificationSchedule(-300.0, (65.0,))),
        ObjectHistory(WebObject("/dyn", size=50, created=-10.0,
                                cacheable=False)),
    ]


_REQUESTS = [
    (5.0, "/a"), (10.0, "/b"), (20.0, "/dyn"), (45.0, "/a"),
    (50.0, "/exp"), (60.0, "/b"), (70.0, "/exp"), (95.0, "/a"),
    (100.0, "/dyn"), (110.0, "/b"),
]

#: name -> zero-argument factory; fresh instance per leg (adaptive
#: protocols carry state).
_FACTORIES = {
    "alex": lambda: AlexProtocol.from_percent(10),
    "ttl": lambda: TTLProtocol(30.0),
    "expires": lambda: ExpiresTTLProtocol(25.0),
    "poll": lambda: PollEveryRequestProtocol(),
    "invalidation": lambda: InvalidationProtocol(),
    "invalidation-eager": lambda: InvalidationProtocol(eager=True),
    "leased": lambda: LeasedInvalidationProtocol(40.0),
    "cern": lambda: CERNPolicyProtocol(),
    "selftuning": lambda: SelfTuningProtocol(),
}


class TestAllProtocolsMatchExactly:
    @pytest.mark.parametrize("name", sorted(_FACTORIES))
    @pytest.mark.parametrize("mode", list(SimulatorMode))
    def test_live_equals_sim(self, name, mode):
        live, sim, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES[name], _REQUESTS, mode,
            end_time=120.0,
        )
        assert report.ok
        assert report.counters_checked == 13
        assert report.ledger_cells_checked == 15
        # The differential is only meaningful if the run exercised the
        # machinery at all.
        assert live.counters.requests == len(_REQUESTS)
        assert live.duration == 120.0

    def test_eager_variant_prefetches(self):
        live, _, _ = live_vs_sim(
            OriginServer(_histories()),
            _FACTORIES["invalidation-eager"], _REQUESTS,
            end_time=120.0,
        )
        assert live.counters.prefetches > 0

    def test_weak_protocols_serve_stale_hits(self):
        live, _, _ = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["alex"], _REQUESTS,
            end_time=120.0,
        )
        assert live.counters.stale_hits > 0
        assert live.counters.stale_age_sum > 0.0

    def test_charge_per_flip_policy_also_matches(self):
        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["invalidation"],
            _REQUESTS, end_time=120.0, charge_per_modification=False,
        )
        assert report.ok


class TestDiffMechanics:
    def test_divergence_is_reported_not_swallowed(self):
        live, sim, _ = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["ttl"], _REQUESTS,
            end_time=120.0,
        )
        sim.counters.hits += 1
        sim.bandwidth.charge("full_retrieval", 43, 10)
        lines = diff_live_vs_sim(live, sim)
        assert any("counter hits" in line and "live=" in line
                   for line in lines)
        assert any("ledger" in line for line in lines)

    def test_violation_carries_the_report(self):
        class MiscountingTTL(TTLProtocol):
            """Fresh forever on the live leg only — a seeded bug."""

        def factory():
            factory.calls += 1
            if factory.calls == 1:  # live leg
                return MiscountingTTL(1e9)
            return TTLProtocol(30.0)
        factory.calls = 0

        with pytest.raises(ConsistencyViolation) as excinfo:
            live_vs_sim(
                OriginServer(_histories()), factory, _REQUESTS,
                end_time=120.0,
            )
        assert not excinfo.value.report.ok
        assert excinfo.value.report.divergences


class TestWireExactGate:
    def test_fractional_request_time_is_refused(self):
        with pytest.raises(LiveReplayError, match="whole second"):
            live_vs_sim(
                OriginServer(_histories()), _FACTORIES["ttl"],
                [(1.5, "/a")],
            )

    def test_fractional_modification_time_is_refused(self):
        histories = [
            ObjectHistory(WebObject("/a", size=10, created=-5.0),
                          ModificationSchedule(-5.0, (2.5,))),
        ]
        with pytest.raises(LiveReplayError, match="modification time"):
            live_vs_sim(
                OriginServer(histories), _FACTORIES["ttl"], [(1.0, "/a")],
            )

    def test_unordered_requests_are_refused(self):
        with pytest.raises(LiveReplayError, match="time-ordered"):
            live_vs_sim(
                OriginServer(_histories()), _FACTORIES["ttl"],
                [(10.0, "/a"), (5.0, "/a")],
            )


class TestFaultedDifferential:
    """Injected invalidation-message faults (repro.faults) replayed
    live: the proxy applies the same compiled FaultPlan schedule the
    simulator does, and the runs must still match cell-for-cell —
    including the fault_* events and retry charges."""

    @pytest.mark.parametrize("name", [
        "invalidation", "invalidation-eager", "leased",
    ])
    def test_lossy_retry_plan_matches(self, name):
        from repro.faults.plan import FaultPlan

        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES[name], _REQUESTS,
            end_time=120.0,
            faults=FaultPlan(loss_rate=0.6, retries=2, backoff=3.0, seed=9),
        )
        assert report.ok
        assert report.events_checked > len(_REQUESTS)

    def test_cache_crash_plan_matches(self):
        from repro.faults.plan import FaultPlan

        live, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["invalidation"],
            _REQUESTS, end_time=120.0,
            faults=FaultPlan(cache_crashes=(60.0,), seed=2),
        )
        assert report.ok
        # The crash forces refetches the crash-free run never made.
        assert live.counters.full_retrievals > 4

    def test_fractional_fault_delay_is_refused(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(LiveReplayError, match="whole second"):
            live_vs_sim(
                OriginServer(_histories()), _FACTORIES["invalidation"],
                _REQUESTS, end_time=120.0,
                faults=FaultPlan(delay=0.5, seed=1),
            )
