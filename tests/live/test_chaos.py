"""Socket-level chaos: the differential oracle under injected faults.

The :class:`~repro.live.chaos.ChaosRelay` drops, resets, truncates,
dribbles, and delays real exchanges on both hops, and the retry layer
(driver-side ``X-Repro-Seq`` replay, proxy-side idempotent upstream
fetches) must absorb every injected fault without perturbing a single
counter, ledger cell, or per-object event — the chaotic live run still
equals the fault-free simulation *exactly*.

Also pins the deterministic machinery itself: the ``--chaos`` grammar,
the seeded draw, and the per-key progress guarantee.
"""

import pytest

from tests.live.test_differential import _FACTORIES, _REQUESTS, _histories
from repro.core.server import OriginServer
from repro.live import live_vs_sim, parse_chaos
from repro.live.chaos import WireFaultPlan

#: Three qualitatively distinct plans (the acceptance floor): pure
#: request loss, delay plus reply truncation, and post-commit resets
#: with dribbled delivery.
_PLANS = {
    "loss": "loss=0.3,seed=7",
    "delay-truncate": "delay=0.005,truncate=0.3,seed=11",
    "reset-dribble": "reset=0.35,dribble=0.4,seed=3",
}


class TestChaoticDifferential:
    @pytest.mark.parametrize("plan_name", sorted(_PLANS))
    @pytest.mark.parametrize(
        "protocol", ["alex", "invalidation-eager", "leased", "selftuning"]
    )
    def test_faulted_wire_matches_sim_exactly(self, plan_name, protocol):
        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES[protocol], _REQUESTS,
            end_time=120.0, connections=2, keepalive=True,
            chaos=parse_chaos(_PLANS[plan_name]),
        )
        assert report.ok
        assert report.counters_checked == 13
        assert report.ledger_cells_checked == 15
        assert report.events_checked >= len(_REQUESTS)

    def test_null_plan_is_plain_replay(self):
        plan = parse_chaos("seed=9")
        assert plan.is_null
        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["ttl"], _REQUESTS,
            end_time=120.0, chaos=plan,
        )
        assert report.ok


class TestParseChaos:
    def test_full_grammar(self):
        plan = parse_chaos(
            "loss=0.1,reset=0.2,truncate=0.3,dribble=0.4,delay=0.5,"
            "seed=6,cap=7"
        )
        assert plan == WireFaultPlan(
            loss_rate=0.1, reset_rate=0.2, truncate_rate=0.3,
            dribble_rate=0.4, delay=0.5, seed=6, max_consecutive=7,
        )

    def test_unknown_field_is_named(self):
        with pytest.raises(ValueError, match="unknown --chaos field 'wat'"):
            parse_chaos("wat=1")

    def test_bad_value_is_named(self):
        with pytest.raises(ValueError, match="bad value.*'loss'"):
            parse_chaos("loss=high")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError, match="loss_rate"):
            parse_chaos("loss=1.5")

    def test_empty_spec_is_null(self):
        assert parse_chaos("").is_null


class TestDeterminism:
    def test_draws_are_pure(self):
        plan = parse_chaos("loss=0.5,seed=42")
        first = [
            plan.draw("client", f"r{i}", attempt, "loss")
            for i in range(20) for attempt in range(3)
        ]
        second = [
            plan.draw("client", f"r{i}", attempt, "loss")
            for i in range(20) for attempt in range(3)
        ]
        assert first == second

    def test_labels_decorrelate_the_hops(self):
        plan = parse_chaos("loss=0.5,seed=42")
        client = [plan.draw("client", f"r{i}", 0, "loss") for i in range(50)]
        upstream = [
            plan.draw("upstream", f"r{i}", 0, "loss") for i in range(50)
        ]
        assert client != upstream

    def test_max_attempts_covers_the_fault_cap(self):
        plan = parse_chaos("loss=1.0,cap=4")
        assert plan.max_attempts == 6

    def test_fault_cap_is_consecutive_not_lifetime(self):
        """A clean pass-through resets the per-key fault budget: keys
        reused across many exchanges (the seq-less control start line)
        must stay fault-eligible for the relay's whole lifetime."""
        import asyncio

        from repro.live.chaos import ChaosRelay

        plan = WireFaultPlan(loss_rate=1.0, max_consecutive=2, seed=0)
        relay = ChaosRelay("127.0.0.1", 1, plan, "client")

        async def decide_six():
            return [await relay._decide("k") for _ in range(6)]

        fates = [decision.loss for decision in asyncio.run(decide_six())]
        # cap faults, one forced-clean pass, then the budget renews —
        # not fault-starved forever after the first two injections.
        assert fates == [True, True, False, True, True, False]

    def test_two_identical_runs_inject_identically(self):
        results = []
        for _ in range(2):
            _, _, report = live_vs_sim(
                OriginServer(_histories()), _FACTORIES["invalidation"],
                _REQUESTS, end_time=120.0, connections=2, keepalive=True,
                chaos=parse_chaos(_PLANS["loss"]),
            )
            results.append(report.events_checked)
        assert results[0] == results[1]
