"""Concurrent replay: per-object locking under a real connection pool.

The serial differential (``test_differential``) pins live-vs-sim
equality one request at a time.  Here the driver opens several
keep-alive connections at once, so requests for *different* objects
interleave arbitrarily on the proxy — and the oracle must still match
the simulation exactly: all thirteen counters, all fifteen ledger
cells, and the per-object event multisets (ordering across objects is
the one freedom concurrency buys; nothing else may move).
"""

import asyncio

import pytest

from tests.live.test_differential import _FACTORIES, _REQUESTS, _histories
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.live import LiveReplayError, live_vs_sim, run_replay
from repro.live.driver import _partition


class TestConcurrentDifferential:
    @pytest.mark.parametrize("name", sorted(_FACTORIES))
    def test_pooled_keepalive_matches_sim_exactly(self, name):
        live, sim, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES[name], _REQUESTS,
            end_time=120.0, connections=3, keepalive=True,
        )
        assert report.ok
        assert report.counters_checked == 13
        assert report.ledger_cells_checked == 15
        # Ordering tolerance must not degrade into not-checking: at
        # least one live event per request was matched against the
        # simulator's multiset.
        assert report.events_checked >= len(_REQUESTS)

    def test_single_connection_keepalive_matches(self):
        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["invalidation"],
            _REQUESTS, end_time=120.0, connections=1, keepalive=True,
        )
        assert report.ok
        assert report.events_checked > 0

    def test_pessimistic_mode_matches_concurrently(self):
        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["ttl"], _REQUESTS,
            SimulatorMode.BASE, end_time=120.0,
            connections=3, keepalive=True,
        )
        assert report.ok

    def test_cross_object_protocol_still_matches(self):
        """Self-tuning couples state across objects; the driver must
        fall back to global-order dispatch and still reconcile."""
        _, _, report = live_vs_sim(
            OriginServer(_histories()), _FACTORIES["selftuning"],
            _REQUESTS, end_time=120.0, connections=3, keepalive=True,
        )
        assert report.ok
        assert report.events_checked >= len(_REQUESTS)

    def test_faults_refuse_the_pool(self):
        from repro.faults.plan import FaultPlan

        with pytest.raises(LiveReplayError, match="serial"):
            live_vs_sim(
                OriginServer(_histories()), _FACTORIES["invalidation"],
                _REQUESTS, end_time=120.0, connections=2, keepalive=True,
                faults=FaultPlan(loss_rate=0.5, seed=1),
            )


class TestWorkerFailure:
    def test_one_workers_failure_cancels_the_siblings(self):
        """A worker raising must not strand the other drive tasks:
        left unawaited they hold connections, keep retrying, and (for
        cross-object gating) can wait forever on the condition."""
        from repro.live import LiveOrigin, LiveProxy
        from repro.live.driver import replay_pooled
        from repro.live.wire import LiveWireError

        async def run():
            origin = LiveOrigin(OriginServer(_histories()))
            await origin.start()
            proxy = LiveProxy(
                origin.host, origin.port, _FACTORIES["invalidation"](),
                concurrent=True,
            )
            await proxy.start()
            try:
                await proxy.warm(0.0)
                # Bucket 0 is a single unknown object (a fast 500);
                # bucket 1 is a long run of good requests that would
                # still be in flight when bucket 0's worker raises.
                stream = [(1.0, "/nope")] + [
                    (float(t), "/a") for t in range(1, 60)
                ]
                with pytest.raises(LiveWireError, match="returned 500"):
                    await replay_pooled(
                        origin, proxy.host, proxy.port, stream,
                        connections=2, keepalive=True,
                    )
                leaked = [
                    task for task in asyncio.all_tasks()
                    if task is not asyncio.current_task()
                    and not task.done()
                    and "drive" in task.get_coro().__qualname__
                ]
                assert leaked == []
            finally:
                await proxy.close()
                await origin.close()

        asyncio.run(run())


class TestTimeOrderViolations:
    def test_per_object_regression_is_rejected(self):
        """Per-object locking relaxes the global time check to a
        per-object one — but a clock running backwards on *one object*
        is still a driver bug and must be a hard error."""
        out_of_order = [(50.0, "/a"), (40.0, "/a")]
        with pytest.raises(LiveReplayError):
            asyncio.run(run_replay(
                OriginServer(_histories()),
                _FACTORIES["invalidation"](),
                out_of_order,
                end_time=120.0,
                connections=2,
                keepalive=True,
            ))


class TestPartition:
    def test_one_object_one_bucket(self):
        buckets = _partition(_REQUESTS, 3)
        owner = {}
        for i, bucket in enumerate(buckets):
            for _, _, object_id in bucket:
                assert owner.setdefault(object_id, i) == i

    def test_bucket_order_is_stream_order(self):
        buckets = _partition(_REQUESTS, 3)
        for bucket in buckets:
            indices = [index for index, _, _ in bucket]
            assert indices == sorted(indices)

    def test_nothing_dropped_nothing_invented(self):
        buckets = _partition(_REQUESTS, 4)
        flat = sorted(
            (index, t, oid) for bucket in buckets
            for index, t, oid in bucket
        )
        assert flat == [
            (i, t, oid) for i, (t, oid) in enumerate(_REQUESTS)
        ]

    def test_more_connections_than_objects(self):
        buckets = _partition([(1.0, "/a"), (2.0, "/a")], 8)
        assert sum(1 for bucket in buckets if bucket) == 1
