"""End-to-end tests for ``repro replay`` (and ``repro serve`` parsing).

The replay command is the CI live-smoke entry point: synthesize a
trace, replay it through real sockets, and (with ``--verify``) require
exact agreement with the simulator.  These tests run the real command
functions against a reduced synthesized trace.
"""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("live") / "hcs.log"
    assert main(["synthesize", "hcs", str(path), "--seed", "7",
                 "--scale", "0.01"]) == 0
    return path


class TestReplayCommand:
    def test_replay_verify_matches_simulator(self, trace_path, capsys):
        code = main(["replay", str(trace_path), "--protocol", "alex",
                     "--parameter", "10", "--verify"])
        captured = capsys.readouterr()
        assert code == 0
        assert "replayed live" in captured.out
        assert "alex(10%)" in captured.out
        assert ("live-vs-sim: 13 counters + 15 ledger cells identical"
                in captured.err)

    def test_replay_without_verify(self, trace_path, capsys):
        code = main(["replay", str(trace_path), "--protocol", "ttl",
                     "--parameter", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "live-vs-sim" not in captured.err

    def test_replay_table_matches_simulate_table(self, trace_path, capsys):
        assert main(["replay", str(trace_path), "--protocol", "invalidation",
                     "--verify"]) == 0
        replay_out = capsys.readouterr().out
        assert main(["simulate", str(trace_path), "--protocol",
                     "invalidation"]) == 0
        simulate_out = capsys.readouterr().out
        # Identical data rows: same protocol, bandwidth, miss/stale
        # rates, server ops, round trips — live and simulated.
        assert replay_out.splitlines()[-1] == simulate_out.splitlines()[-1]

    def test_unknown_protocol_is_usage_error(self, trace_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", str(trace_path), "--protocol", "bogus"])
        assert excinfo.value.code == 2


class TestServeParsing:
    def test_serve_rejects_unknown_protocol(self, trace_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", str(trace_path), "--protocol", "bogus"])
        assert excinfo.value.code == 2
