"""Behavior tests for :class:`repro.live.proxy.LiveProxy`.

These pin the proxy's consistency state machine — serving verdicts
(``X-Cache``), counter/ledger accounting, storage policy — against the
transitions :class:`repro.core.simulator.Simulation` makes.  The full
equivalence is enforced wholesale in ``test_differential``; here each
transition is observable in isolation.
"""

import asyncio
import json

from repro.core.costs import DEFAULT_COSTS
from repro.core.metrics import FULL_RETRIEVAL, VALIDATION_304
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.http.messages import Request
from repro.live.origin import LiveOrigin
from repro.live.proxy import LiveProxy
from repro.live.wire import CONTROL_PREFIX, DATE, X_CACHE, exchange


def _server() -> OriginServer:
    return OriginServer([
        ObjectHistory(WebObject("/a", size=1000, created=-500.0),
                      ModificationSchedule(-500.0, (40.0,))),
        ObjectHistory(WebObject("/dyn", size=50, created=-10.0,
                                cacheable=False)),
    ])


def _run(coro_fn, protocol=None, mode=SimulatorMode.OPTIMIZED, warm=True):
    """Boot origin+proxy, warm, run ``coro_fn(origin, proxy)``."""
    async def body():
        origin = LiveOrigin(_server())
        await origin.start()
        try:
            proxy = LiveProxy(
                origin.host, origin.port,
                protocol if protocol is not None else TTLProtocol(30.0),
                mode,
            )
            await proxy.start()
            try:
                if warm:
                    await proxy.warm(0.0)
                return await coro_fn(origin, proxy), proxy
            finally:
                await proxy.close()
        finally:
            await origin.close()

    return asyncio.run(body())


async def _client_get(proxy, path, t):
    request = Request("GET", path)
    request.headers.set_date(DATE, t)
    return await exchange(proxy.host, proxy.port, request)


class TestServingVerdicts:
    def test_fresh_entry_hits_without_origin_traffic(self):
        async def scenario(origin, proxy):
            response, body, _ = await _client_get(proxy, "/a", 10.0)
            return response, body, origin.gets

        (response, body, origin_gets), proxy = _run(scenario)
        assert response.headers.get(X_CACHE) == "HIT"
        assert len(body) == 1000
        assert response.headers.last_modified == -500.0
        assert origin_gets == 0
        assert proxy.counters.hits == 1
        assert proxy.counters.requests == 1
        assert proxy.bandwidth.total_bytes == 0

    def test_expired_unchanged_entry_revalidates_304(self):
        async def scenario(origin, proxy):
            response, _, _ = await _client_get(proxy, "/a", 35.0)
            return response, origin.ims_queries

        (response, ims), proxy = _run(scenario)
        assert response.headers.get(X_CACHE) == "REVALIDATED"
        assert ims == 1
        assert proxy.counters.validations == 1
        assert proxy.counters.validations_not_modified == 1
        assert proxy.counters.hits == 1
        assert proxy.bandwidth.exchanges[VALIDATION_304] == 1
        control, _ = DEFAULT_COSTS.validation_not_modified()
        assert proxy.bandwidth.control_bytes[VALIDATION_304] == control

    def test_expired_changed_entry_transfers_body(self):
        async def scenario(origin, proxy):
            # /a changes at t=40; by t=80 the warmed copy is both
            # expired (TTL 30) and out of date.
            response, _, _ = await _client_get(proxy, "/a", 80.0)
            return response

        response, proxy = _run(scenario)
        assert response.headers.get(X_CACHE) == "MISS"
        assert response.headers.last_modified == 40.0
        assert proxy.counters.misses == 1
        assert proxy.counters.validations == 1
        assert proxy.counters.validations_not_modified == 0

    def test_base_mode_refetches_unconditionally(self):
        async def scenario(origin, proxy):
            response, _, _ = await _client_get(proxy, "/a", 35.0)
            return response, origin.gets, origin.ims_queries

        (response, gets, ims), proxy = _run(
            scenario, mode=SimulatorMode.BASE)
        assert response.headers.get(X_CACHE) == "MISS"
        assert gets == 1
        assert ims == 0
        assert proxy.bandwidth.exchanges[FULL_RETRIEVAL] == 1

    def test_dynamic_object_fetched_every_time_never_stored(self):
        async def scenario(origin, proxy):
            await _client_get(proxy, "/dyn", 5.0)
            await _client_get(proxy, "/dyn", 6.0)
            return origin.gets

        gets, proxy = _run(scenario)
        assert gets == 2
        assert proxy.counters.misses == 2
        assert proxy.cache.peek("/dyn") is None


class TestTimeDiscipline:
    def test_out_of_order_request_is_rejected(self):
        async def scenario(origin, proxy):
            await _client_get(proxy, "/a", 20.0)
            response, _, _ = await _client_get(proxy, "/a", 10.0)
            return response

        response, proxy = _run(scenario)
        assert response.status == 400
        # The rejected request never entered the accounting.
        assert proxy.counters.requests == 1


class TestInvalidationSync:
    def test_modification_invalidates_before_serving(self):
        async def scenario(origin, proxy):
            # At t=50 the t=40 modification of /a must already have
            # been pulled and applied, so the warmed copy cannot hit.
            response, _, _ = await _client_get(proxy, "/a", 50.0)
            return response

        response, proxy = _run(scenario, protocol=InvalidationProtocol())
        assert response.headers.get(X_CACHE) == "MISS"
        assert proxy.counters.invalidations_received == 1
        assert proxy.counters.server_invalidations_sent == 1

    def test_finish_flushes_trailing_invalidations(self):
        async def scenario(origin, proxy):
            await _client_get(proxy, "/a", 10.0)  # before the change
            finish = Request("GET", CONTROL_PREFIX + "finish")
            finish.headers.set_date(DATE, 100.0)
            response, _, _ = await exchange(proxy.host, proxy.port, finish)
            return response

        response, proxy = _run(scenario, protocol=InvalidationProtocol())
        assert response.status == 200
        assert proxy.counters.invalidations_received == 1
        entry = proxy.cache.peek("/a")
        assert entry is not None and not entry.valid


class TestStatsEndpoint:
    def test_stats_reports_counters_ledger_and_wire_bytes(self):
        async def scenario(origin, proxy):
            await _client_get(proxy, "/a", 10.0)
            stats_request = Request("GET", CONTROL_PREFIX + "stats")
            _, body, _ = await exchange(proxy.host, proxy.port,
                                        stats_request)
            return json.loads(body)

        stats, proxy = _run(scenario)
        assert stats["counters"]["requests"] == 1
        assert stats["counters"]["hits"] == 1
        assert set(stats["bandwidth"]) == {
            "control_bytes", "body_bytes", "exchanges"}
        assert stats["wire_bytes"] > 0
        assert stats["protocol"] == "ttl(0.00833333h)"
        assert stats["mode"] == "optimized"
