"""Cross-process causal tracing: per-role files, merge, and the CLI.

The PR-10 acceptance pins: a chaotic traced replay writes one
``repro.trace/1`` JSONL file per role (driver / proxy / origin), the
three merge into a ``repro.trace/2`` timeline whose happens-before
edges (driver-send ≤ proxy-recv, commit ≤ reply) all validate, and
``repro trace summarize`` reports retry/chaos counts equal to the
run's :class:`MetricsRegistry` counters — the marks are emitted in the
very same branches as the counter bumps, so any drift is a bug.
"""

import asyncio
import json

import pytest

from tests.live.test_differential import _FACTORIES, _REQUESTS, _histories
from repro.cli import main
from repro.core.server import OriginServer
from repro.live import parse_chaos
from repro.live.driver import run_replay
from repro.obs import registry as obs_metrics
from repro.obs import timeline
from repro.obs import trace as obs_trace

_CHAOS = "loss=0.3,truncate=0.2,seed=7"


def _traced_chaos_replay(tmp_path, protocol="alex"):
    """One chaotic traced pooled replay; returns (trace base, registry)."""
    base = tmp_path / "TRACE.jsonl"
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.installed(registry):
        report = asyncio.run(run_replay(
            OriginServer(_histories()), _FACTORIES[protocol](), _REQUESTS,
            end_time=120.0, connections=2, keepalive=True,
            chaos=parse_chaos(_CHAOS), trace_path=base,
        ))
    return base, registry, report


class TestTracedChaosReplay:
    def test_three_role_files_merge_and_validate(self, tmp_path):
        base, _, _ = _traced_chaos_replay(tmp_path)
        paths = timeline.role_trace_paths(base)
        for role, path in paths.items():
            assert path.exists(), role
            header, _ = obs_trace.load_jsonl(path)
            assert header["proc"] == role
        merged = timeline.merge(base)
        assert merged["schema"] == "repro.trace/2"
        assert set(merged["roles"]) == {"driver", "proxy", "origin"}
        assert timeline.validate(merged) == []

    def test_summarize_counts_match_registry_exactly(self, tmp_path):
        base, registry, _ = _traced_chaos_replay(tmp_path)
        summary = timeline.summarize(timeline.merge(base))
        assert summary["retries"] == registry.counter("live.retries").value
        assert summary["chaos_injected"] == registry.counter(
            "live.chaos.injected"
        ).value
        assert summary["retries"] > 0  # the plan must actually bite
        assert summary["exchanges"] == len(_REQUESTS)

    def test_every_exchange_is_traced_end_to_end(self, tmp_path):
        base, _, _ = _traced_chaos_replay(tmp_path)
        merged = timeline.merge(base)
        expected = {f"r{i}" for i in range(len(_REQUESTS))}
        for kind, proc in (
            ("live.trace.send", "driver"),
            ("live.trace.done", "driver"),
            ("live.trace.recv", "proxy"),
        ):
            seen = {
                record["trace"]
                for record in merged["records"]
                if record["type"] == "mark"
                and record["kind"] == kind
                and record["proc"] == proc
            }
            assert expected <= seen, kind
        commits = {
            record["meta"]["trace"]
            for record in merged["records"]
            if record["type"] == "span"
            and record["name"] == "live.trace.commit"
        }
        assert commits == expected

    def test_hit_ages_cover_live_hits(self, tmp_path):
        """Every unvalidated cache HIT contributes an age-at-delivery.

        (Revalidated serves are excluded: their age is zero by
        construction, the origin just re-stamped them.)
        """
        base, _, _ = _traced_chaos_replay(tmp_path)
        merged = timeline.merge(base)
        hits = [
            record
            for record in merged["records"]
            if record.get("type") == "span"
            and record.get("name") == "live.trace.exchange"
            and record["meta"].get("verdict") == "HIT"
        ]
        summary = timeline.summarize(merged)
        assert summary["hit_ages"]["count"] == len(hits)
        assert len(hits) > 0

    def test_serial_traced_replay(self, tmp_path):
        """The historical serial driver traces too (no chaos needed)."""
        base = tmp_path / "TRACE.jsonl"
        asyncio.run(run_replay(
            OriginServer(_histories()), _FACTORIES["ttl"](), _REQUESTS,
            end_time=120.0, trace_path=base,
        ))
        merged = timeline.merge(base)
        assert timeline.validate(merged) == []
        summary = timeline.summarize(merged)
        assert summary["exchanges"] == len(_REQUESTS)
        assert summary["retries"] == 0

    def test_untraced_replay_writes_nothing(self, tmp_path):
        asyncio.run(run_replay(
            OriginServer(_histories()), _FACTORIES["ttl"](), _REQUESTS,
            end_time=120.0,
        ))
        assert list(tmp_path.iterdir()) == []


class TestTraceCli:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("tracecli")
        log = tmp / "hcs.log"
        assert main(["synthesize", "hcs", str(log), "--seed", "7",
                     "--scale", "0.01"]) == 0
        base = tmp / "TRACE.jsonl"
        assert main(["replay", str(log), "--protocol", "alex",
                     "--parameter", "10", "--connections", "2",
                     "--keepalive", "--chaos", _CHAOS,
                     "--trace", str(base)]) == 0
        return base

    def test_replay_writes_per_role_files(self, traced, capsys):
        for path in timeline.role_trace_paths(traced).values():
            assert path.exists()

    def test_merge_json_validates(self, traced, capsys):
        assert main(["trace", "merge", str(traced)]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["schema"] == "repro.trace/2"
        assert merged["violations"] == []
        assert len(merged["records"]) > 0

    def test_summarize_json_schema(self, traced, capsys):
        assert main(["trace", "summarize", str(traced)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == "repro.trace.summary/1"
        assert summary["retries"] == summary["marks"]["live.trace.retry"]
        assert summary["exchanges"] > 0

    def test_grep_filters_by_kind_and_trace_id(self, traced, capsys):
        assert main(["trace", "grep", str(traced),
                     "--kind", "live.trace.exchange",
                     "--trace-id", "r0"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "live.trace.exchange"
        assert record["meta"]["trace"] == "r0"

    def test_critical_path_json(self, traced, capsys):
        assert main(["trace", "critical-path", str(traced)]) == 0
        critical = json.loads(capsys.readouterr().out)
        assert critical["schema"] == "repro.trace.critical/1"
        assert critical["wall"] > 0.0
        assert critical["unattributed"] >= 0.0
        assert set(critical["phases"]) == set(timeline.PROXY_PHASES)
        assert critical["trace"].startswith("r")

    def test_merge_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", "merge", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_crash_mode_rejects_trace(self, traced, tmp_path, capsys):
        log = traced.parent / "hcs.log"
        code = main(["replay", str(log), "--journal",
                     str(tmp_path / "j.jsonl"), "--crash-after", "3",
                     "--trace", str(tmp_path / "t.jsonl")])
        assert code == 2
        assert "--crash-after" in capsys.readouterr().err
