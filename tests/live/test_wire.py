"""Framing tests for :mod:`repro.live.wire`.

The framing contract is byte-exact: what ``write_message`` sends is
what ``read_request``/``read_response`` count, and both equal the
message models' ``wire_size()``.  That identity is what lets the live
proxy's socket-byte tally be meaningful alongside the abstract ledger.
"""

import asyncio

import pytest

from repro.http.messages import Request, Response, make_ok
from repro.live.wire import (
    LiveConnectionClosed,
    LiveReplayError,
    LiveTruncationError,
    LiveWireError,
    ensure_integral,
    read_message,
    read_request,
    read_response,
)


def _reader_with(payload: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


class TestEnsureIntegral:
    def test_whole_seconds_pass_through(self):
        assert ensure_integral(42.0, "t") == 42.0
        assert ensure_integral(-7.0, "t") == -7.0
        assert ensure_integral(0.0, "t") == 0.0

    def test_fractional_raises(self):
        with pytest.raises(LiveReplayError, match="whole second"):
            ensure_integral(1.5, "request time")

    def test_message_names_the_offender(self):
        with pytest.raises(LiveReplayError, match="start_time"):
            ensure_integral(0.25, "start_time")


class TestReadRequest:
    def test_round_trips_serialize(self):
        request = Request("GET", "/a")
        request.headers.set_date("Date", 120.0)
        text = request.serialize()

        async def read():
            return await read_request(_reader_with(text.encode("latin-1")))

        parsed, nbytes = asyncio.run(read())
        assert parsed.method == "GET"
        assert parsed.path == "/a"
        assert parsed.headers.get_date("Date") == 120.0
        assert nbytes == len(text) == request.wire_size()

    def test_truncated_head_raises(self):
        async def read():
            return await read_request(_reader_with(b"GET /a HTTP/1.0\r\n"))

        with pytest.raises(LiveWireError, match="mid-head"):
            asyncio.run(read())

    def test_garbage_request_line_raises(self):
        async def read():
            return await read_request(_reader_with(b"NOT-HTTP\r\n\r\n"))

        with pytest.raises(LiveWireError):
            asyncio.run(read())


class TestReadResponse:
    def test_round_trips_serialize_with_body(self):
        response = make_ok(9, last_modified=50.0)
        text = response.serialize()

        async def read():
            return await read_response(_reader_with(text.encode("latin-1")))

        parsed, body, nbytes = asyncio.run(read())
        assert parsed.status == 200
        assert parsed.body_size == 9
        assert body == "x" * 9
        assert nbytes == len(text) == response.wire_size()

    def test_bodiless_304(self):
        response = Response(304)
        response.headers.set_date("Date", 60.0)
        text = response.serialize()

        async def read():
            return await read_response(_reader_with(text.encode("latin-1")))

        parsed, body, nbytes = asyncio.run(read())
        assert parsed.status == 304
        assert body == ""
        assert nbytes == response.wire_size()

    def test_body_read_by_content_length_not_eof(self):
        # Trailing bytes after Content-Length must not leak into the body.
        text = make_ok(4).serialize() + "EXTRA"

        async def read():
            return await read_response(_reader_with(text.encode("latin-1")))

        parsed, body, _ = asyncio.run(read())
        assert body == "xxxx"
        assert parsed.body_size == 4

    def test_truncated_body_raises_distinct_error(self):
        # A short body is a *framing* fault distinct from a close
        # mid-head: the head promised more bytes than arrived.  The
        # message names both the promise and the shortfall.
        text = make_ok(100).serialize()[:-40]

        async def read():
            return await read_response(_reader_with(text.encode("latin-1")))

        with pytest.raises(
            LiveTruncationError, match="promised 100 bytes"
        ):
            asyncio.run(read())

    def test_truncation_error_is_a_wire_error(self):
        # One-shot callers that catch LiveWireError keep working.
        assert issubclass(LiveTruncationError, LiveWireError)

    def test_clean_close_at_boundary_is_connection_closed(self):
        async def read():
            return await read_response(_reader_with(b""))

        with pytest.raises(LiveConnectionClosed, match="boundary"):
            asyncio.run(read())

    def test_bad_content_length_raises(self):
        raw = b"HTTP/1.0 200 OK\r\nContent-Length: nope\r\n\r\n"

        async def read():
            return await read_response(_reader_with(raw))

        with pytest.raises(LiveWireError, match="Content-Length"):
            asyncio.run(read())


class TestReadMessage:
    def test_request_shape(self):
        request = Request("GET", "/a")
        request.headers.set_date("Date", 120.0)
        text = request.serialize()

        async def read():
            return await read_message(_reader_with(text.encode("latin-1")))

        message, body, nbytes = asyncio.run(read())
        assert isinstance(message, Request)
        assert body == ""
        assert nbytes == len(text)

    def test_response_shape(self):
        response = make_ok(5, last_modified=10.0)
        text = response.serialize()

        async def read():
            return await read_message(_reader_with(text.encode("latin-1")))

        message, body, nbytes = asyncio.run(read())
        assert isinstance(message, Response)
        assert body == "xxxxx"
        assert nbytes == len(text) == response.wire_size()

    def test_short_body_raises_truncation(self):
        text = make_ok(50).serialize()[:-10]

        async def read():
            return await read_message(_reader_with(text.encode("latin-1")))

        with pytest.raises(LiveTruncationError, match="promised 50 bytes"):
            asyncio.run(read())
