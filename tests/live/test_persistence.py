"""Crash persistence: the journal, restore, and the SIGKILL leg.

The proxy's journal is commit-before-reply: every acknowledged request
is on disk before the client hears about it, so a SIGKILLed proxy can
be restarted and re-warmed into exactly the state its clients already
observed.  These tests pin the journal's torn-line tolerance, the
in-process restore round-trip, and the full out-of-process
crash-restart differential (:func:`repro.live.crash_vs_sim`).
"""

import asyncio
import json
import os

import pytest

from tests.live.test_differential import _FACTORIES, _REQUESTS, _histories
from repro.core.server import OriginServer
from repro.live import Journal, LiveOrigin, LiveProxy, crash_vs_sim
from repro.live.wire import LiveReplayError


class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        records = [{"kind": "config", "protocol": "ttl"},
                   {"kind": "txn", "seq": "r0", "hits": 1}]
        for record in records:
            journal.append(record)
        assert journal.load() == records

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load() == []

    def test_torn_trailing_line_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "config"})
        journal.append({"kind": "txn", "seq": "r0"})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "txn", "seq": "r1", "hi')  # SIGKILL here
        assert journal.load() == [
            {"kind": "config"}, {"kind": "txn", "seq": "r0"},
        ]

    def test_torn_line_with_newline_is_discarded(self, tmp_path):
        """A line can also tear *after* its newline was cut in — only
        records that parse are real."""
        path = tmp_path / "j.jsonl"
        Journal(path).append({"kind": "config"})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "txn", "truncated\n')
        assert Journal(path).load() == [{"kind": "config"}]


class TestRestoreRoundTrip:
    def _replay_some(self, journal_path, upto):
        """Warm a journaled proxy and serve the first ``upto`` requests."""

        async def run():
            origin = LiveOrigin(OriginServer(_histories()))
            await origin.start()
            proxy = LiveProxy(
                origin.host, origin.port, _FACTORIES["invalidation"](),
                journal=Journal(journal_path), concurrent=True,
            )
            await proxy.start()
            try:
                await proxy.warm(0.0)
                from repro.live.wire import DATE, SEQ_HEADER, exchange
                from repro.http.messages import Request

                for index, (t, object_id) in enumerate(_REQUESTS[:upto]):
                    request = Request("GET", object_id)
                    request.headers.set_date(DATE, t)
                    request.headers.set(SEQ_HEADER, f"r{index}")
                    await exchange(proxy.host, proxy.port, request)
                return proxy
            finally:
                await proxy.close()
                await origin.close()

        return asyncio.run(run())

    def test_restore_rebuilds_counters_cache_and_replies(self, tmp_path):
        path = tmp_path / "j.jsonl"
        before = self._replay_some(path, upto=6)

        async def restore():
            restored = LiveProxy(
                "127.0.0.1", 1, _FACTORIES["invalidation"](),
                journal=Journal(path), concurrent=True,
            )
            assert await restored.restore()
            return restored

        after = asyncio.run(restore())
        assert after.counters == before.counters
        assert after.bandwidth == before.bandwidth
        assert after.events == before.events
        assert sorted(after._done) == sorted(before._done)
        from repro.live.proxy import _entry_dict

        assert {
            oid: _entry_dict(after.cache.peek(oid))
            for oid in ("/a", "/b", "/exp")
        } == {
            oid: _entry_dict(before.cache.peek(oid))
            for oid in ("/a", "/b", "/exp")
        }

    def test_empty_journal_restores_nothing(self, tmp_path):
        async def restore():
            proxy = LiveProxy(
                "127.0.0.1", 1, _FACTORIES["invalidation"](),
                journal=Journal(tmp_path / "empty.jsonl"),
            )
            return await proxy.restore()

        assert asyncio.run(restore()) is False

    def test_config_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._replay_some(path, upto=2)

        async def restore_wrong():
            proxy = LiveProxy(
                "127.0.0.1", 1, _FACTORIES["ttl"](),
                journal=Journal(path), concurrent=True,
            )
            await proxy.restore()

        with pytest.raises(LiveReplayError, match="journal"):
            asyncio.run(restore_wrong())


class TestCrashRestartDifferential:
    @pytest.mark.parametrize("protocol,parameter", [
        ("invalidation", 0.0),
        ("selftuning", 4.0),
    ])
    def test_sigkill_restart_reconciles_exactly(
        self, tmp_path, protocol, parameter
    ):
        _, _, report = crash_vs_sim(
            OriginServer(_histories()), protocol, parameter, _REQUESTS,
            start_time=0.0, end_time=120.0,
            charge_per_modification=True,
            journal_path=tmp_path / "j.jsonl", crash_after=4,
        )
        assert report.ok
        assert report.counters_checked == 13
        assert report.ledger_cells_checked == 15
        assert report.events_checked >= len(_REQUESTS)

    def test_the_journal_survived_a_real_kill(self, tmp_path):
        """The journal left behind holds the config plus committed
        transactions — evidence the restart actually re-warmed rather
        than recomputed."""
        path = tmp_path / "j.jsonl"
        crash_vs_sim(
            OriginServer(_histories()), "invalidation", 0.0, _REQUESTS,
            start_time=0.0, end_time=120.0,
            charge_per_modification=True,
            journal_path=path, crash_after=4,
        )
        records = Journal(path).load()
        kinds = {record["kind"] for record in records}
        assert kinds == {"config", "warm", "txn"}
        seqs = [
            record["seq"] for record in records if record["kind"] == "txn"
            and "seq" in record
        ]
        assert len(seqs) == len(set(seqs)) >= len(_REQUESTS)
