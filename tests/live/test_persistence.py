"""Crash persistence: the journal, restore, and the SIGKILL leg.

The proxy's journal is commit-before-reply: every acknowledged request
is on disk before the client hears about it, so a SIGKILLed proxy can
be restarted and re-warmed into exactly the state its clients already
observed.  These tests pin the journal's torn-line tolerance, the
in-process restore round-trip, and the full out-of-process
crash-restart differential (:func:`repro.live.crash_vs_sim`).
"""

import asyncio
import json
import os

import pytest

from tests.live.test_differential import _FACTORIES, _REQUESTS, _histories
from repro.core.server import OriginServer
from repro.live import Journal, LiveOrigin, LiveProxy, crash_vs_sim
from repro.live.wire import LiveReplayError


class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        records = [{"kind": "config", "protocol": "ttl"},
                   {"kind": "txn", "seq": "r0", "hits": 1}]
        for record in records:
            journal.append(record)
        assert journal.load() == records

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load() == []

    def test_torn_trailing_line_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "config"})
        journal.append({"kind": "txn", "seq": "r0"})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "txn", "seq": "r1", "hi')  # SIGKILL here
        assert journal.load() == [
            {"kind": "config"}, {"kind": "txn", "seq": "r0"},
        ]

    def test_torn_line_with_newline_is_discarded(self, tmp_path):
        """A line can also tear *after* its newline was cut in — only
        records that parse are real."""
        path = tmp_path / "j.jsonl"
        Journal(path).append({"kind": "config"})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "txn", "truncated\n')
        assert Journal(path).load() == [{"kind": "config"}]

    def test_short_os_writes_do_not_tear_the_file(self, tmp_path, monkeypatch):
        """``os.write`` may write fewer bytes than asked; append must
        loop, or a mid-file torn line silently swallows every record
        after it on load."""
        import types

        import repro.live.journal as journal_mod

        real_write = os.write
        shim = types.SimpleNamespace(
            open=os.open,
            close=os.close,
            write=lambda fd, data: real_write(fd, data[:3]),
            O_WRONLY=os.O_WRONLY,
            O_CREAT=os.O_CREAT,
            O_APPEND=os.O_APPEND,
        )
        monkeypatch.setattr(journal_mod, "os", shim)
        journal = Journal(tmp_path / "j.jsonl")
        records = [{"kind": "config", "protocol": "ttl"},
                   {"kind": "txn", "seq": "r0", "hits": 1}]
        for record in records:
            journal.append(record)
        assert journal.load() == records


class TestRestoreRoundTrip:
    def _replay_some(self, journal_path, upto):
        """Warm a journaled proxy and serve the first ``upto`` requests."""

        async def run():
            origin = LiveOrigin(OriginServer(_histories()))
            await origin.start()
            proxy = LiveProxy(
                origin.host, origin.port, _FACTORIES["invalidation"](),
                journal=Journal(journal_path), concurrent=True,
            )
            await proxy.start()
            try:
                await proxy.warm(0.0)
                from repro.live.wire import DATE, SEQ_HEADER, exchange
                from repro.http.messages import Request

                for index, (t, object_id) in enumerate(_REQUESTS[:upto]):
                    request = Request("GET", object_id)
                    request.headers.set_date(DATE, t)
                    request.headers.set(SEQ_HEADER, f"r{index}")
                    await exchange(proxy.host, proxy.port, request)
                return proxy
            finally:
                await proxy.close()
                await origin.close()

        return asyncio.run(run())

    def test_restore_rebuilds_counters_cache_and_replies(self, tmp_path):
        path = tmp_path / "j.jsonl"
        before = self._replay_some(path, upto=6)

        async def restore():
            restored = LiveProxy(
                "127.0.0.1", 1, _FACTORIES["invalidation"](),
                journal=Journal(path), concurrent=True,
            )
            assert await restored.restore()
            return restored

        after = asyncio.run(restore())
        assert after.counters == before.counters
        assert after.bandwidth == before.bandwidth
        assert after.events == before.events
        assert sorted(after._done) == sorted(before._done)
        from repro.live.proxy import _entry_dict

        assert {
            oid: _entry_dict(after.cache.peek(oid))
            for oid in ("/a", "/b", "/exp")
        } == {
            oid: _entry_dict(before.cache.peek(oid))
            for oid in ("/a", "/b", "/exp")
        }

    def test_empty_journal_restores_nothing(self, tmp_path):
        async def restore():
            proxy = LiveProxy(
                "127.0.0.1", 1, _FACTORIES["invalidation"](),
                journal=Journal(tmp_path / "empty.jsonl"),
            )
            return await proxy.restore()

        assert asyncio.run(restore()) is False

    def test_config_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._replay_some(path, upto=2)

        async def restore_wrong():
            proxy = LiveProxy(
                "127.0.0.1", 1, _FACTORIES["ttl"](),
                journal=Journal(path), concurrent=True,
            )
            await proxy.restore()

        with pytest.raises(LiveReplayError, match="journal"):
            asyncio.run(restore_wrong())


class TestUpstreamIdempotency:
    """The crash window the journal cannot cover: a SIGKILL after the
    origin counted a fetch but before the transaction committed.  The
    restarted proxy *re-executes* that request, so its origin fetches
    must carry the same deterministic sequence ids — with a journal
    installed, not only when this process itself retries."""

    def _exchange(self, host, port, object_id, t, seq):
        from repro.http.messages import Request
        from repro.live.wire import DATE, SEQ_HEADER, exchange

        request = Request("GET", object_id)
        request.headers.set_date(DATE, t)
        request.headers.set(SEQ_HEADER, seq)
        return exchange(host, port, request)

    def test_reexecution_after_uncommitted_crash_does_not_double_count(
        self, tmp_path
    ):
        path = tmp_path / "j.jsonl"

        async def run():
            origin = LiveOrigin(OriginServer(_histories()))
            await origin.start()
            first = LiveProxy(
                origin.host, origin.port, _FACTORIES["invalidation"](),
                journal=Journal(path), concurrent=True,
            )
            await first.start()
            try:
                await first.warm(0.0)
                response, _, _ = await self._exchange(
                    first.host, first.port, "/dyn", 5.0, "r0"
                )
                assert response.status == 200
                # Journaled proxies stamp upstream ids even with the
                # default single-attempt budget — the origin saw one.
                assert "/dyn@0" in origin._seen
                assert origin.gets == 1
            finally:
                await first.close()

            # Simulate the SIGKILL landing before the commit reached
            # disk: drop the request's transaction record, keeping the
            # origin (which already counted the fetch) alive.
            records = Journal(path).load()
            assert records[-1]["kind"] == "txn"
            os.unlink(path)
            rewritten = Journal(path)
            for record in records[:-1]:
                rewritten.append(record)

            second = LiveProxy(
                origin.host, origin.port, _FACTORIES["invalidation"](),
                journal=Journal(path), concurrent=True,
            )
            try:
                assert await second.restore()
                await second.start()
                # The retried request re-executes (its reply was never
                # committed) under the same upstream id; the origin
                # dedups and its counter must not move.
                response, _, _ = await self._exchange(
                    second.host, second.port, "/dyn", 5.0, "r0"
                )
                assert response.status == 200
                assert origin.gets == 1
            finally:
                await second.close()
                await origin.close()

        asyncio.run(run())

    def test_txn_records_journal_only_their_own_upstream_ids(self, tmp_path):
        """A transaction's journal record must carry only the upstream
        counters it advanced itself — snapshotting the shared dict
        would capture siblings' uncommitted increments, and a restore
        from such a record over-advances the ids."""
        path = tmp_path / "j.jsonl"

        async def run():
            origin = LiveOrigin(OriginServer(_histories()))
            await origin.start()
            proxy = LiveProxy(
                origin.host, origin.port, _FACTORIES["invalidation"](),
                journal=Journal(path), concurrent=True,
            )
            await proxy.start()
            try:
                await proxy.warm(0.0)
                from repro.http.messages import Request
                from repro.live.wire import DATE, SEQ_HEADER, exchange

                # Three fetch-causing requests across two objects: the
                # dynamic object twice, plus a revalidation of /a after
                # its t=40 modification.
                stream = [
                    (20.0, "/dyn"), (45.0, "/a"), (100.0, "/dyn"),
                ]
                for index, (t, object_id) in enumerate(stream):
                    request = Request("GET", object_id)
                    request.headers.set_date(DATE, t)
                    request.headers.set(SEQ_HEADER, f"r{index}")
                    await exchange(proxy.host, proxy.port, request)
            finally:
                await proxy.close()
                await origin.close()

        asyncio.run(run())
        upstreams = [
            record["upstream"] for record in Journal(path).load()
            if record["kind"] == "txn" and "upstream" in record
        ]
        assert len(upstreams) == 3
        # Each of these transactions fetched exactly one object; a
        # shared-dict snapshot would accumulate earlier objects too.
        assert [sorted(u) for u in upstreams] == [
            ["/dyn"], ["/a"], ["/dyn"],
        ]
        assert upstreams[0]["/dyn"] == 1
        assert upstreams[2]["/dyn"] == 2


class TestCrashRestartDifferential:
    @pytest.mark.parametrize("protocol,parameter", [
        ("invalidation", 0.0),
        ("selftuning", 4.0),
    ])
    def test_sigkill_restart_reconciles_exactly(
        self, tmp_path, protocol, parameter
    ):
        _, _, report = crash_vs_sim(
            OriginServer(_histories()), protocol, parameter, _REQUESTS,
            start_time=0.0, end_time=120.0,
            charge_per_modification=True,
            journal_path=tmp_path / "j.jsonl", crash_after=4,
        )
        assert report.ok
        assert report.counters_checked == 13
        assert report.ledger_cells_checked == 15
        assert report.events_checked >= len(_REQUESTS)

    def test_the_journal_survived_a_real_kill(self, tmp_path):
        """The journal left behind holds the config plus committed
        transactions — evidence the restart actually re-warmed rather
        than recomputed."""
        path = tmp_path / "j.jsonl"
        crash_vs_sim(
            OriginServer(_histories()), "invalidation", 0.0, _REQUESTS,
            start_time=0.0, end_time=120.0,
            charge_per_modification=True,
            journal_path=path, crash_after=4,
        )
        records = Journal(path).load()
        kinds = {record["kind"] for record in records}
        assert kinds == {"config", "warm", "txn"}
        seqs = [
            record["seq"] for record in records if record["kind"] == "txn"
            and "seq" in record
        ]
        assert len(seqs) == len(set(seqs)) >= len(_REQUESTS)
