"""Property tests: wire framing survives arbitrary TCP segmentation.

TCP gives no message boundaries — a peer's reply may arrive one byte
at a time (the chaos relay's *dribble* mode does exactly this) or cut
into chunks at any offsets.  These tests serialize real ``Request`` /
``Response`` messages, feed them through :func:`repro.live.wire
.read_message` under hypothesis-chosen segmentations, and require the
parse to be byte-exact: the consumed count equals the payload length
and the message round-trips to the identical serialization.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.messages import Request, Response, make_ok
from repro.live.wire import read_message


def _requests() -> st.SearchStrategy[str]:
    """Serialized GET requests with the headers the live mode uses."""

    @st.composite
    def build(draw) -> str:
        path = draw(st.sampled_from(["/a", "/b/img", "/__control__/stats"]))
        request = Request("GET", path)
        request.headers.set_date("Date", float(draw(
            st.integers(min_value=-5000, max_value=10**7)
        )))
        if draw(st.booleans()):
            request.headers.set_date("If-Modified-Since", float(draw(
                st.integers(min_value=-5000, max_value=10**7)
            )))
        if draw(st.booleans()):
            request.headers.set("Connection", "keep-alive")
        if draw(st.booleans()):
            request.headers.set("X-Repro-Seq", f"r{draw(st.integers(0, 999))}")
        return request.serialize()

    return build()


def _responses() -> st.SearchStrategy[str]:
    """Serialized 200 responses with hypothesis-sized bodies."""

    @st.composite
    def build(draw) -> str:
        size = draw(st.integers(min_value=0, max_value=300))
        last_modified = draw(st.one_of(
            st.none(),
            st.integers(min_value=-5000, max_value=10**7).map(float),
        ))
        response = make_ok(size, last_modified=last_modified)
        return response.serialize()

    return build()


def _messages() -> st.SearchStrategy[str]:
    return st.one_of(_requests(), _responses())


async def _read_segmented(
    payload: bytes, cuts: list[int]
) -> tuple[object, str, int]:
    """Parse ``payload`` delivered in chunks split at ``cuts``.

    The feeder yields to the event loop between chunks so the parser
    genuinely blocks on partial data instead of finding everything
    pre-buffered.
    """
    bounds = sorted({c % (len(payload) + 1) for c in cuts})
    chunks = [
        payload[lo:hi]
        for lo, hi in zip([0, *bounds], [*bounds, len(payload)])
        if payload[lo:hi]
    ]
    reader = asyncio.StreamReader()

    async def feed() -> None:
        for chunk in chunks:
            reader.feed_data(chunk)
            await asyncio.sleep(0)
        reader.feed_eof()

    feeder = asyncio.ensure_future(feed())
    try:
        return await read_message(reader)
    finally:
        await feeder


def _roundtrip(message: object, body: str) -> str:
    if isinstance(message, Response):
        return message.serialize(body)
    assert isinstance(message, Request)
    assert body == ""
    return message.serialize()


class TestSegmentedParsing:
    @settings(max_examples=60, deadline=None)
    @given(text=_messages())
    def test_byte_at_a_time_is_byte_exact(self, text):
        payload = text.encode("latin-1")
        message, body, nbytes = asyncio.run(
            _read_segmented(payload, list(range(len(payload))))
        )
        assert nbytes == len(payload)
        assert _roundtrip(message, body) == text

    @settings(max_examples=120, deadline=None)
    @given(
        text=_messages(),
        cuts=st.lists(st.integers(min_value=0, max_value=10**6),
                      max_size=12),
    )
    def test_random_split_points_are_byte_exact(self, text, cuts):
        payload = text.encode("latin-1")
        message, body, nbytes = asyncio.run(
            _read_segmented(payload, cuts)
        )
        assert nbytes == len(payload)
        assert _roundtrip(message, body) == text

    @settings(max_examples=60, deadline=None)
    @given(
        texts=st.lists(_messages(), min_size=2, max_size=4),
        cuts=st.lists(st.integers(min_value=0, max_value=10**6),
                      max_size=12),
    )
    def test_back_to_back_messages_keep_their_boundaries(self, texts, cuts):
        """Keep-alive framing: consecutive messages on one stream parse
        independently whatever the segmentation across them."""
        payload = "".join(texts).encode("latin-1")
        bounds = sorted({c % (len(payload) + 1) for c in cuts})
        chunks = [
            payload[lo:hi]
            for lo, hi in zip([0, *bounds], [*bounds, len(payload)])
            if payload[lo:hi]
        ]

        async def read_all() -> list[tuple[object, str, int]]:
            reader = asyncio.StreamReader()

            async def feed() -> None:
                for chunk in chunks:
                    reader.feed_data(chunk)
                    await asyncio.sleep(0)
                reader.feed_eof()

            feeder = asyncio.ensure_future(feed())
            try:
                return [await read_message(reader) for _ in texts]
            finally:
                await feeder

        parsed = asyncio.run(read_all())
        assert [nbytes for _, _, nbytes in parsed] == [
            len(t) for t in texts
        ]
        assert [
            _roundtrip(message, body) for message, body, _ in parsed
        ] == texts
