"""The figure-rendering helpers and the shared experiment machinery."""

import pytest

from repro.analysis.sweep import SweepResult, sweep_alex, sweep_ttl
from repro.core.simulator import SimulatorMode
from repro.experiments import common
from repro.experiments.panels import (
    bandwidth_panel,
    rate_panel,
    server_load_panel,
    sweep_table,
    two_panel_report,
)
from repro.workload.worrell import WorrellWorkload


@pytest.fixture(scope="module")
def sweeps():
    workload = WorrellWorkload(files=60, requests=1500, seed=2).build()
    alex = sweep_alex([workload], SimulatorMode.OPTIMIZED,
                      thresholds_percent=(0, 50, 100))
    ttl = sweep_ttl([workload], SimulatorMode.OPTIMIZED,
                    ttl_hours=(0, 250, 500))
    return alex, ttl


class TestPanels:
    def test_bandwidth_panel_structure(self, sweeps):
        alex, _ = sweeps
        text = bandwidth_panel(alex, "Alex")
        assert "(a) Alex Cache Consistency Protocol" in text
        assert "Update Threshold (percent)" in text
        assert "invalidation" in text
        assert "[log y]" in text

    def test_rate_panel_structure(self, sweeps):
        _, ttl = sweeps
        text = rate_panel(ttl, "TTL")
        assert "(b) Time to Live Fields" in text
        assert "TTL stale hits" in text
        assert "percent of requests" in text

    def test_server_load_panel_structure(self, sweeps):
        alex, _ = sweeps
        text = server_load_panel(alex, "Alex")
        assert "server operations" in text

    def test_sweep_table_has_baseline_row(self, sweeps):
        alex, _ = sweeps
        table = sweep_table(alex, "threshold %")
        assert "inval" in table
        assert "server ops" in table
        # One row per sweep point plus header, rule, and baseline.
        assert len(table.splitlines()) == 3 + 2 + 1

    def test_two_panel_report_combines_everything(self, sweeps):
        alex, ttl = sweeps
        text = two_panel_report(alex, ttl, bandwidth_panel)
        assert "(a) Alex" in text and "(b) Time to Live" in text
        assert text.count("inval") >= 4   # two legends + two table rows


class TestCommon:
    def test_sweep_grids_full_scale(self):
        alex_grid, ttl_grid = common.sweep_grids(1.0)
        assert alex_grid[0] == 0 and alex_grid[-1] == 100
        assert ttl_grid[0] == 0 and ttl_grid[-1] == 500
        assert len(alex_grid) == 21

    def test_sweep_grids_thinned_but_anchored(self):
        alex_grid, ttl_grid = common.sweep_grids(0.1)
        assert alex_grid[0] == 0 and alex_grid[-1] == 100
        assert ttl_grid[-1] == 500
        assert len(alex_grid) < 21

    def test_sweep_grids_stay_sorted(self):
        for scale in (0.05, 0.1, 0.25, 0.5, 1.0):
            for grid in common.sweep_grids(scale):
                assert list(grid) == sorted(grid)

    def test_sparse_reinserts_final_anchor_in_order(self):
        # The stride point (40) exceeds the final value (30): the
        # re-appended anchor must not land out of order at the tail.
        assert common._sparse((0, 20, 40, 30), 2) == (0, 30, 40)
        assert common._sparse((0, 25, 50, 75, 90), 2) == (0, 50, 90)
        assert common._sparse((0, 25, 50), 1) == (0, 25, 50)

    def test_workloads_memoized(self):
        common.clear_caches()
        a = common.worrell_workload(0.05, 1)
        b = common.worrell_workload(0.05, 1)
        assert a is b
        common.clear_caches()
        c = common.worrell_workload(0.05, 1)
        assert c is not a

    def test_campus_workloads_all_three(self):
        workloads = common.campus_workloads(0.05, 0)
        assert [w.name for w in workloads] == ["DAS", "FAS", "HCS"]

    def test_worrell_scale_shrinks_population(self):
        common.clear_caches()
        small = common.worrell_workload(0.05, 0)
        assert small.file_count == round(common.WORRELL_FILES * 0.05)
        assert len(small.requests) == round(common.WORRELL_REQUESTS * 0.05)

    def test_sweeps_cached_across_figures(self):
        common.clear_caches()
        first = common.worrell_sweeps("base", 0.02, 0)
        second = common.worrell_sweeps("base", 0.02, 0)
        assert first is second
        common.clear_caches()
