"""CSV dumping of experiment data (the --csv flag)."""

import pytest

from repro.analysis.export import dump_experiment_data, read_csv_rows


class TestDumpExperimentData:
    def test_series_dict_becomes_columns(self, tmp_path):
        data = {"alex": {"threshold": [0, 50], "mb": [5.0, 2.0]}}
        written = dump_experiment_data(data, tmp_path, "figX")
        assert [p.name for p in written] == ["figX_alex.csv"]
        headers, rows = read_csv_rows(written[0])
        assert headers == ["threshold", "mb"]
        assert rows == [["0", "5.0"], ["50", "2.0"]]

    def test_row_table_becomes_positional_columns(self, tmp_path):
        data = {"paper": [("DAS", 1403), ("FAS", 290)]}
        written = dump_experiment_data(data, tmp_path, "table1")
        headers, rows = read_csv_rows(written[0])
        assert headers == ["c0", "c1"]
        assert rows[0] == ["DAS", "1403"]

    def test_scalars_collected_into_summary(self, tmp_path):
        data = {"invalidation_mb": 1.5, "crossover": None}
        written = dump_experiment_data(data, tmp_path, "fig8")
        assert written[0].name == "fig8_summary.csv"
        headers, rows = read_csv_rows(written[0])
        assert ["invalidation_mb", "1.5"] in rows

    def test_nested_dict_flattened(self, tmp_path):
        data = {"scenarios": {"a": {"x": 1}, "b": {"y": 2}}}
        written = dump_experiment_data(data, tmp_path, "fig1")
        _, rows = read_csv_rows(written[0])
        keys = {row[0] for row in rows}
        assert keys == {"scenarios.a", "scenarios.b"}

    def test_ragged_series_rejected(self, tmp_path):
        data = {"bad": {"x": [1, 2], "y": [1]}}
        with pytest.raises(ValueError, match="ragged"):
            dump_experiment_data(data, tmp_path, "x")

    def test_directory_created(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        dump_experiment_data({"v": 1}, target, "e")
        assert target.is_dir()

    def test_cli_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure1", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "csv:" in out
        assert (tmp_path / "figure1_summary.csv").exists()

    def test_every_experiment_dumps_cleanly(self, tmp_path):
        """No experiment's data dict trips the dumper."""
        from repro.experiments import common
        from repro.experiments.registry import all_ids, run_experiment

        common.clear_caches()
        for experiment_id in all_ids():
            report = run_experiment(experiment_id, scale=0.1, seed=0)
            written = dump_experiment_data(
                report.data, tmp_path, experiment_id
            )
            assert written, experiment_id
