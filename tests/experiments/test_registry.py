"""The experiment registry and CLI plumbing."""

import pytest

from repro.experiments.registry import EXPERIMENTS, all_ids, run_experiment


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        assert set(all_ids()) == {
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7", "figure8", "table1", "table2",
            "ext-latency", "ext-dynamic", "ext-scalability", "ext-worrell",
            "ext-faults",
        }

    def test_paper_experiments_precede_extensions(self):
        ids = all_ids()
        assert ids.index("table2") < ids.index("ext-latency")

    def test_titles_present(self):
        for title, runner in EXPERIMENTS.values():
            assert title
            assert callable(runner)

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(KeyError, match="figure2"):
            run_experiment("figure99")

    def test_run_experiment_returns_report(self):
        report = run_experiment("figure1")
        assert report.experiment_id == "figure1"
        assert report.rendered


class TestCLI:
    def test_main_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "ALL CHECKS PASSED" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_scale_and_seed_flags(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2", "--scale", "0.5", "--seed", "3"]) == 0

    def test_workers_flag_single_experiment(self, capsys):
        from repro.experiments import common
        from repro.experiments.__main__ import main

        common.clear_caches()
        try:
            assert main(["figure2", "--scale", "0.02", "--workers", "2"]) == 0
        finally:
            common.clear_caches()
        out = capsys.readouterr().out
        assert "workers 2" in out
        assert "ALL CHECKS PASSED" in out

    def test_help_documents_workers_env_var(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--help"])
        assert "REPRO_WORKERS" in capsys.readouterr().out
