"""Every experiment's shape checks hold at a reduced scale.

These are the reproduction's acceptance tests: each paper table/figure is
regenerated (at 25-50% workload scale to keep the suite fast) and its
qualitative claims are asserted.  The full-scale run is exercised by
``python -m repro.experiments all`` and the benchmarks.
"""

import pytest

from repro.experiments import common
from repro.experiments.registry import run_experiment

SCALE = 0.25
SEED = 0


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    common.clear_caches()
    yield
    common.clear_caches()


@pytest.mark.parametrize(
    "experiment_id",
    ["figure1", "figure2", "figure3", "figure4", "figure5",
     "figure6", "figure7", "figure8", "table1", "table2",
     "ext-latency", "ext-dynamic", "ext-scalability", "ext-worrell",
     "ext-faults"],
)
def test_experiment_checks_pass(experiment_id):
    report = run_experiment(experiment_id, scale=SCALE, seed=SEED)
    failed = report.failed_checks()
    assert not failed, "\n".join(c.render() for c in failed)


def test_reports_render_without_error():
    report = run_experiment("figure6", scale=SCALE, seed=SEED)
    text = report.render()
    assert "figure6" in text
    assert "Alex" in text
    assert "shape checks:" in text


def test_experiment_data_is_structured():
    report = run_experiment("figure8", scale=SCALE, seed=SEED)
    assert "alex" in report.data
    assert len(report.data["alex"]["threshold_percent"]) == len(
        report.data["alex"]["server_operations"]
    )


def test_deterministic_across_runs():
    a = run_experiment("figure2", scale=SCALE, seed=SEED)
    common.clear_caches()
    b = run_experiment("figure2", scale=SCALE, seed=SEED)
    assert a.data == b.data


def test_seed_changes_data_but_not_verdict():
    a = run_experiment("table1", scale=SCALE, seed=0)
    common.clear_caches()
    b = run_experiment("table1", scale=SCALE, seed=99)
    assert a.all_passed and b.all_passed
    assert a.data["ground_truth"] != b.data["ground_truth"]
