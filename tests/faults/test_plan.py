"""FaultPlan compilation: the schedule is the contract both replays share."""

import pytest

from repro.faults import (
    ATTEMPT_LOST,
    ATTEMPT_SENT,
    CRASH,
    DELIVER,
    DROP,
    DowntimeWindow,
    FaultPlan,
)

FEED = ((10.0, "/a"), (20.0, "/b"))


class TestValidation:
    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FaultPlan(loss_rate=-0.1)
        with pytest.raises(ValueError, match="loss_rate"):
            FaultPlan(loss_rate=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            FaultPlan(delay=-1.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            FaultPlan(retries=-1)

    def test_bad_backoff_rejected_when_retrying(self):
        with pytest.raises(ValueError, match="backoff"):
            FaultPlan(retries=2, backoff=0.0)

    def test_downtime_window_needs_positive_length(self):
        with pytest.raises(ValueError, match="length"):
            DowntimeWindow(start=0.0, length=0.0)

    def test_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan(retries=3).is_null  # retries alone inject nothing
        assert not FaultPlan(loss_rate=0.1).is_null
        assert not FaultPlan(delay=1.0).is_null
        assert not FaultPlan(cache_crashes=(5.0,)).is_null


class TestCompile:
    def test_null_plan_is_sent_plus_deliver_pairs(self):
        actions = FaultPlan().compile(FEED)
        assert [a.kind for a in actions] == [
            ATTEMPT_SENT, DELIVER, ATTEMPT_SENT, DELIVER,
        ]
        assert [a.time for a in actions] == [10.0, 10.0, 20.0, 20.0]
        assert [a.object_id for a in actions] == ["/a", "/a", "/b", "/b"]

    def test_certain_loss_without_retries_drops(self):
        actions = FaultPlan(loss_rate=1.0).compile(FEED)
        assert [a.kind for a in actions] == [
            ATTEMPT_LOST, DROP, ATTEMPT_LOST, DROP,
        ]

    def test_retry_backoff_schedule(self):
        # Attempt k leaves at mod_time + backoff * (2**k - 1).
        plan = FaultPlan(loss_rate=1.0, retries=2, backoff=100.0)
        actions = plan.compile(((10.0, "/a"),))
        assert [(a.kind, a.time, a.attempt) for a in actions] == [
            (ATTEMPT_LOST, 10.0, 0),
            (ATTEMPT_LOST, 110.0, 1),
            (ATTEMPT_LOST, 310.0, 2),
            (DROP, 310.0, 2),
        ]

    def test_delivery_is_delayed(self):
        actions = FaultPlan(delay=5.0).compile(((10.0, "/a"),))
        assert [(a.kind, a.time) for a in actions] == [
            (ATTEMPT_SENT, 10.0), (DELIVER, 15.0),
        ]

    def test_downtime_abandons_the_notice(self):
        plan = FaultPlan(downtime=(DowntimeWindow(start=5.0, length=10.0),))
        actions = plan.compile(FEED)
        # /a's send at t=10 falls inside [5, 15): dropped, no retry.
        # /b's send at t=20 is after the window: delivered.
        assert [(a.kind, a.object_id) for a in actions] == [
            (DROP, "/a"), (ATTEMPT_SENT, "/b"), (DELIVER, "/b"),
        ]

    def test_downtime_window_is_half_open(self):
        window = DowntimeWindow(start=5.0, length=10.0)
        assert window.covers(5.0)
        assert window.covers(14.999)
        assert not window.covers(15.0)
        assert not window.covers(4.999)

    def test_retry_can_escape_downtime(self):
        # First attempt lands in the outage... and is abandoned outright:
        # the server loses its pending-notification state.
        plan = FaultPlan(
            downtime=(DowntimeWindow(start=5.0, length=10.0),),
            retries=3, backoff=100.0,
        )
        actions = plan.compile(((10.0, "/a"),))
        assert [a.kind for a in actions] == [DROP]

    def test_modifications_before_start_skipped(self):
        actions = FaultPlan().compile(FEED, start_time=10.0)
        assert [a.object_id for a in actions] == ["/b", "/b"]

    def test_crashes_compiled_even_with_empty_feed(self):
        actions = FaultPlan(cache_crashes=(30.0, 15.0)).compile(())
        assert [(a.kind, a.time) for a in actions] == [
            (CRASH, 15.0), (CRASH, 30.0),
        ]
        assert all(a.object_id == "" for a in actions)

    def test_crash_sorts_after_same_time_delivery(self):
        actions = FaultPlan(cache_crashes=(10.0,)).compile(((10.0, "/a"),))
        assert [a.kind for a in actions] == [ATTEMPT_SENT, DELIVER, CRASH]

    def test_crash_at_or_before_start_skipped(self):
        actions = FaultPlan(cache_crashes=(5.0,)).compile((), start_time=5.0)
        assert actions == ()

    def test_compile_is_deterministic(self):
        plan = FaultPlan(loss_rate=0.5, retries=2, seed=9)
        feed = tuple((float(i), f"/o{i % 3}") for i in range(1, 50))
        assert plan.compile(feed) == plan.compile(feed)

    def test_seed_changes_the_draws(self):
        feed = tuple((float(i), "/a") for i in range(1, 200))
        a = FaultPlan(loss_rate=0.5, seed=1).compile(feed)
        b = FaultPlan(loss_rate=0.5, seed=2).compile(feed)
        assert a != b

    def test_schedule_is_time_sorted(self):
        plan = FaultPlan(
            loss_rate=0.3, retries=3, backoff=500.0, delay=50.0,
            cache_crashes=(25.0, 90.0), seed=4,
        )
        feed = tuple((float(10 * i), f"/o{i}") for i in range(1, 12))
        times = [a.time for a in plan.compile(feed)]
        assert times == sorted(times)
