"""Property tests for the fault layer (hypothesis).

Two universally-quantified claims:

* a **zero-rate plan is inert**: any plan whose knobs inject nothing
  replays byte-identically to the un-instrumented simulator, for any
  workload and any invalidation-family protocol;
* the compiled **schedule is a pure function** of (plan, feed) — same
  seed, same schedule, regardless of where or how often it compiles —
  which is what makes fault runs reproducible across the serial and
  process-pool sweep paths.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import sweep_alex
from repro.core.clock import DAY, hours
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import InvalidationProtocol, LeasedInvalidationProtocol
from repro.core.results import result_to_dict
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, Simulation
from repro.faults import FaultPlan
from repro.verify import set_enabled
from repro.workload.worrell import WorrellWorkload

DURATION = 10 * DAY


@st.composite
def small_workloads(draw):
    """A few objects with random change schedules plus ordered requests."""
    n_files = draw(st.integers(min_value=1, max_value=4))
    histories = []
    for i in range(n_files):
        n_changes = draw(st.integers(min_value=0, max_value=5))
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=1.0, max_value=DURATION),
                    min_size=n_changes, max_size=n_changes, unique=True,
                )
            )
        )
        histories.append(
            ObjectHistory(
                WebObject(
                    f"/f{i}",
                    size=draw(st.integers(min_value=100, max_value=20_000)),
                    file_type="html",
                    created=-5 * DAY,
                ),
                ModificationSchedule(-5 * DAY, times),
            )
        )
    n_requests = draw(st.integers(min_value=0, max_value=40))
    raw = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=DURATION),
                st.integers(min_value=0, max_value=n_files - 1),
            ),
            min_size=n_requests, max_size=n_requests,
        )
    )
    requests = sorted((t, histories[i].obj.object_id) for t, i in raw)
    return histories, requests


def protocols():
    return st.sampled_from(
        [
            lambda: InvalidationProtocol(),
            lambda: InvalidationProtocol(eager=True),
            lambda: LeasedInvalidationProtocol(hours(24)),
            lambda: LeasedInvalidationProtocol(hours(6), eager=True),
        ]
    )


def run(histories, requests, protocol, faults):
    events = []
    sim = Simulation(
        OriginServer(histories), protocol, SimulatorMode.OPTIMIZED,
        observer=lambda kind, t, oid: events.append((kind, t, oid)),
        faults=faults,
    )
    result = sim.run(requests, end_time=DURATION)
    return result_to_dict(result), events


class TestZeroRatePlanIsInert:
    @settings(max_examples=40, deadline=None)
    @given(
        workload=small_workloads(),
        make_protocol=protocols(),
        retries=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_byte_identical_to_uninstrumented(
        self, workload, make_protocol, retries, seed
    ):
        histories, requests = workload
        plan = FaultPlan(loss_rate=0.0, retries=retries, seed=seed)
        assert plan.is_null
        base = run(histories, requests, make_protocol(), faults=None)
        nulled = run(histories, requests, make_protocol(), faults=plan)
        assert nulled == base


class TestScheduleIsPure:
    @settings(max_examples=40, deadline=None)
    @given(
        loss=st.floats(min_value=0.0, max_value=1.0),
        retries=st.integers(min_value=0, max_value=3),
        delay=st.floats(min_value=0.0, max_value=3600.0),
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        feed_times=st.lists(
            st.floats(min_value=1.0, max_value=DURATION),
            max_size=30, unique=True,
        ),
    )
    def test_same_seed_same_schedule(
        self, loss, retries, delay, seed, feed_times
    ):
        feed = tuple(
            (t, f"/o{i % 5}") for i, t in enumerate(sorted(feed_times))
        )
        plan = FaultPlan(
            loss_rate=loss, retries=retries, delay=delay, seed=seed,
        )
        first = plan.compile(feed)
        again = FaultPlan(
            loss_rate=loss, retries=retries, delay=delay, seed=seed,
        ).compile(feed)
        assert first == again
        assert [a.time for a in first] == sorted(a.time for a in first)


class TestSerialParallelEquivalence:
    def test_faulty_sweep_identical_across_workers_under_verify(self):
        """Same seed ⇒ same schedule ⇒ identical sweeps, serial or
        pooled, with the oracle double-checking every point."""
        workload = WorrellWorkload(files=15, requests=500, seed=3).build()
        plan = FaultPlan(loss_rate=0.4, retries=1, backoff=600.0, seed=7)
        set_enabled(True)
        try:
            serial = sweep_alex(
                [workload], SimulatorMode.OPTIMIZED,
                thresholds_percent=(0, 50, 100), workers=1, faults=plan,
            )
            parallel = sweep_alex(
                [workload], SimulatorMode.OPTIMIZED,
                thresholds_percent=(0, 50, 100), workers=3, faults=plan,
            )
        finally:
            set_enabled(False)
        assert serial == parallel
        for a, b in zip(serial.points, parallel.points):
            assert a.metrics == b.metrics  # exact float equality
        assert serial.invalidation == parallel.invalidation
