"""Fault injection on the hierarchy's origin→root link."""

from repro.core.hierarchy import CacheNode, HierarchySimulation
from repro.core.metrics import INVALIDATION
from repro.core.protocols import InvalidationProtocol
from repro.core.server import OriginServer
from repro.faults import DowntimeWindow, FaultPlan
from tests.conftest import make_history


def build(histories, faults=None, charge_per_modification=False):
    server = OriginServer(histories)
    root = CacheNode("root", InvalidationProtocol())
    leaf = CacheNode("leaf", InvalidationProtocol(), parent=root)
    sim = HierarchySimulation(
        server, root, [leaf],
        deliver_invalidations=True,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    sim.preload(at=0.0)
    return sim


class TestHierarchyFaults:
    def test_no_plan_keeps_tree_consistent(self):
        sim = build([make_history("/f", changes=(10.0,))])
        assert sim.request("leaf", "/f", 5.0) is False
        assert sim.request("leaf", "/f", 50.0) is False  # callback arrived

    def test_certain_loss_makes_the_whole_tree_stale(self):
        sim = build(
            [make_history("/f", changes=(10.0,))],
            faults=FaultPlan(loss_rate=1.0),
        )
        assert sim.request("leaf", "/f", 5.0) is False
        # The notice died on the origin→root link: root and leaf both
        # serve the old copy.
        assert sim.request("leaf", "/f", 50.0) is True

    def test_lost_notice_still_charged_on_uplink(self):
        sim = build(
            [make_history("/f", changes=(10.0,))],
            faults=FaultPlan(loss_rate=1.0),
        )
        sim.request("leaf", "/f", 5.0)
        before = sim.root.uplink.control_bytes[INVALIDATION]
        sim.request("leaf", "/f", 50.0)
        # The origin sent (and paid for) the root notification even
        # though the network lost it.
        assert sim.root.uplink.control_bytes[INVALIDATION] > before

    def test_downtime_notice_never_sent_nor_charged(self):
        sim = build(
            [make_history("/f", changes=(10.0,))],
            faults=FaultPlan(downtime=(DowntimeWindow(start=8.0, length=5.0),)),
        )
        sim.request("leaf", "/f", 5.0)
        sim.request("leaf", "/f", 50.0)
        assert sim.root.uplink.control_bytes[INVALIDATION] == 0

    def test_generation_guard_propagates_down_the_tree(self):
        # receive_invalidation forwards modified_at recursively, so a
        # superseded notice is a no-op at every level.
        sim = build([make_history("/f", changes=(10.0,))])
        sim.request("leaf", "/f", 5.0)
        root = sim.root
        entry = root.cache.peek("/f")
        assert entry is not None and entry.valid
        # Re-deliver an already-superseded generation by hand: the
        # guard must keep the copy valid at every level.
        root.receive_invalidation("/f", modified_at=entry.last_modified)
        assert entry.valid
        leaf_entry = sim.leaves["leaf"].cache.peek("/f")
        assert leaf_entry is not None and leaf_entry.valid
