"""Fault injection through the production simulator.

The contract has two halves: a missing (or null) plan changes *nothing*
— byte-identical counters, ledger, and event stream — and a lossy plan
produces exactly the staleness the paper warns about, recoverable by
retries and bounded by the lease.
"""

import pytest

from repro.core.cache import Cache
from repro.core.clock import hours
from repro.core.protocols import (
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    TTLProtocol,
)
from repro.core.results import result_to_dict
from repro.core.server import OriginServer
from repro.core.simulator import EVENT_KINDS, SimulatorMode, Simulation, simulate
from repro.faults import DowntimeWindow, FaultPlan
from repro.workload.worrell import WorrellWorkload
from tests.conftest import make_history


def run_with_events(server, protocol, requests, *, faults=None, **kwargs):
    events = []
    sim = Simulation(
        server, protocol, SimulatorMode.OPTIMIZED,
        observer=lambda kind, t, oid: events.append((kind, t, oid)),
        faults=faults, **kwargs,
    )
    result = sim.run(requests, end_time=kwargs.pop("end_time", None))
    return result, events


@pytest.fixture(scope="module")
def worrell():
    return WorrellWorkload(files=30, requests=2500, seed=5).build()


class TestNullPlanEquivalence:
    """faults=FaultPlan() must be byte-identical to faults=None."""

    @pytest.mark.parametrize("eager", [False, True])
    @pytest.mark.parametrize("per_mod", [False, True])
    def test_invalidation_byte_identical(self, worrell, eager, per_mod):
        baseline, base_events = run_with_events(
            worrell.server(), InvalidationProtocol(eager=eager),
            worrell.requests, charge_per_modification=per_mod,
        )
        nulled, null_events = run_with_events(
            worrell.server(), InvalidationProtocol(eager=eager),
            worrell.requests, faults=FaultPlan(),
            charge_per_modification=per_mod,
        )
        assert result_to_dict(nulled) == result_to_dict(baseline)
        assert null_events == base_events

    def test_leased_byte_identical(self, worrell):
        baseline, base_events = run_with_events(
            worrell.server(), LeasedInvalidationProtocol(hours(24)),
            worrell.requests,
        )
        nulled, null_events = run_with_events(
            worrell.server(), LeasedInvalidationProtocol(hours(24)),
            worrell.requests, faults=FaultPlan(),
        )
        assert result_to_dict(nulled) == result_to_dict(baseline)
        assert null_events == base_events

    def test_plan_ignored_by_polling_protocols_except_crashes(self, worrell):
        # TTL wants no invalidations: a loss-only plan compiles an empty
        # schedule and the run is identical to the fault-free one.
        baseline = simulate(
            worrell.server(), TTLProtocol(hours(10)), worrell.requests,
        )
        faulted = simulate(
            worrell.server(), TTLProtocol(hours(10)), worrell.requests,
            faults=FaultPlan(loss_rate=0.9, retries=2),
        )
        assert result_to_dict(faulted) == result_to_dict(baseline)


class TestLossAndRecovery:
    def test_certain_loss_serves_stale_forever(self):
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, events = run_with_events(
            server, InvalidationProtocol(),
            [(5.0, "/f"), (50.0, "/f"), (5000.0, "/f")],
            faults=FaultPlan(loss_rate=1.0),
        )
        # The invalidation never arrives: both post-change hits are stale.
        assert result.counters.stale_hits == 2
        assert ("fault_invalidation_lost", 10.0, "/f") in events
        assert ("fault_invalidation_dropped", 10.0, "/f") in events

    def test_lost_attempt_still_charged(self):
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, _ = run_with_events(
            server, InvalidationProtocol(), [(5.0, "/f"), (50.0, "/f")],
            faults=FaultPlan(loss_rate=1.0),
        )
        # The message was sent (and paid for); the network ate it.
        assert result.counters.server_invalidations_sent == 1
        assert result.counters.invalidations_received == 0

    def test_retry_recovers_and_emits_recovered_event(self):
        # Attempt 0 lost, attempt 1 delivered (seed chosen accordingly).
        plan = None
        for seed in range(50):
            candidate = FaultPlan(
                loss_rate=0.5, retries=1, backoff=20.0, seed=seed,
            )
            kinds = [a.kind for a in candidate.compile(((10.0, "/f"),))]
            if kinds == ["attempt_lost", "attempt_sent", "deliver"]:
                plan = candidate
                break
        assert plan is not None, "no seed produced lost-then-delivered"
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, events = run_with_events(
            server, InvalidationProtocol(),
            [(5.0, "/f"), (15.0, "/f"), (50.0, "/f")],
            faults=plan,
        )
        # Stale only in the window before the retry lands at t=30.
        assert result.counters.stale_hits == 1
        assert ("fault_invalidation_recovered", 30.0, "/f") in events
        assert ("invalidation", 30.0, "/f") in events

    def test_retries_reduce_staleness_at_scale(self, worrell):
        lossy = simulate(
            worrell.server(), InvalidationProtocol(), worrell.requests,
            faults=FaultPlan(loss_rate=0.6, seed=3),
            end_time=worrell.duration,
        )
        retried = simulate(
            worrell.server(), InvalidationProtocol(), worrell.requests,
            faults=FaultPlan(loss_rate=0.6, retries=4, backoff=300.0, seed=3),
            end_time=worrell.duration,
        )
        assert lossy.counters.stale_hits > 0
        assert retried.counters.stale_hits < lossy.counters.stale_hits
        assert (
            retried.counters.server_invalidations_sent
            > lossy.counters.server_invalidations_sent
        )

    def test_delayed_delivery_creates_a_stale_window(self):
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, events = run_with_events(
            server, InvalidationProtocol(),
            [(5.0, "/f"), (30.0, "/f"), (80.0, "/f")],
            faults=FaultPlan(delay=50.0),
        )
        # Stale at t=30 (notice in flight), invalid at t=80 (validation).
        assert result.counters.stale_hits == 1
        assert ("invalidation", 60.0, "/f") in events

    def test_downtime_window_abandons_notices(self):
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, events = run_with_events(
            server, InvalidationProtocol(), [(5.0, "/f"), (50.0, "/f")],
            faults=FaultPlan(downtime=(DowntimeWindow(start=8.0, length=5.0),)),
        )
        assert result.counters.stale_hits == 1
        assert result.counters.server_invalidations_sent == 0
        assert ("fault_invalidation_dropped", 10.0, "/f") in events


class TestLeaseBound:
    def test_lease_expiry_revalidates_a_stale_copy(self):
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, events = run_with_events(
            server, LeasedInvalidationProtocol(lease=100.0),
            [(50.0, "/f"), (99.0, "/f"), (101.0, "/f"), (150.0, "/f")],
            faults=FaultPlan(loss_rate=1.0),
        )
        kinds = [kind for kind, _, _ in events if kind != "fault_invalidation_lost"
                 and kind != "fault_invalidation_dropped"]
        # Two stale serves inside the lease, then the lease forces a
        # revalidation (200: content changed) and the copy is clean.
        assert kinds == ["stale_hit", "stale_hit", "validation_200", "hit"]
        assert result.counters.stale_hits == 2

    def test_every_stale_serve_younger_than_lease(self, worrell):
        """The structural bound, asserted per event.

        An entry is freshened (validated_at reset) by preload, misses,
        validations, and prefetches; with loss_rate=1 no invalidation
        ever arrives, so every stale hit must occur within ``lease``
        seconds of the object's latest freshening.
        """
        lease = hours(24)
        events = []
        sim = Simulation(
            worrell.server(), LeasedInvalidationProtocol(lease),
            SimulatorMode.OPTIMIZED,
            observer=lambda kind, t, oid: events.append((kind, t, oid)),
            faults=FaultPlan(loss_rate=1.0),
        )
        result = sim.run(worrell.requests, end_time=worrell.duration)
        assert result.counters.stale_hits > 0  # the bound is exercised
        freshened = {h.object_id: 0.0 for h in worrell.histories}
        for kind, t, oid in events:
            if kind in ("miss", "validation_304", "validation_200",
                        "prefetch", "dynamic_fetch"):
                freshened[oid] = t
            elif kind == "stale_hit":
                assert t - freshened[oid] < lease, (
                    f"stale serve of {oid} at {t} is "
                    f"{t - freshened[oid]:.0f}s after its last validation"
                    f" — exceeds the {lease:.0f}s lease"
                )


class TestCacheCrash:
    def test_crash_wipes_state_and_emits_event(self):
        server = OriginServer([make_history("/f")])
        result, events = run_with_events(
            server, InvalidationProtocol(), [(5.0, "/f"), (15.0, "/f")],
            faults=FaultPlan(cache_crashes=(10.0,)),
        )
        assert ("fault_cache_crash", 10.0, "") in events
        # Preload made t=5 a hit; the crash makes t=15 a cold miss.
        assert result.counters.hits == 1
        assert result.counters.misses == 1

    def test_crash_then_refetch_ignores_superseded_callback(self):
        """The generation guard, end to end (delayed callback variant).

        A copy refetched *after* the modification must not be
        re-invalidated when the old, delayed notice finally lands.
        """
        server = OriginServer([make_history("/f", changes=(10.0,))])
        result, events = run_with_events(
            server, InvalidationProtocol(),
            [(5.0, "/f"), (20.0, "/f"), (80.0, "/f")],
            faults=FaultPlan(delay=50.0, cache_crashes=(15.0,)),
            charge_per_modification=False,
        )
        # t=20 misses (crash wiped the cache) and fetches the *current*
        # content; the notice for the t=10 change lands at t=60 but is
        # superseded — t=80 must be a plain fresh hit.
        assert [(k, t) for k, t, _ in events] == [
            ("hit", 5.0),
            ("fault_cache_crash", 15.0),
            ("miss", 20.0),
            ("hit", 80.0),
        ]
        assert result.counters.stale_hits == 0
        assert result.counters.invalidations_received == 0


class TestEvictRefetchGuard:
    def test_evicted_then_refetched_copy_survives_old_callback(self):
        """Satellite regression: eviction + refetch + stale callback.

        With a bounded cache, an entry can be evicted and re-fetched
        between a modification and the (delayed) arrival of its
        invalidation.  The refetched copy embodies the new content; the
        old callback must be a no-op, not a validity kill.
        """
        server = OriginServer([
            make_history("/a", size=1000, changes=(10.0,)),
            make_history("/b", size=1000),
        ])
        cache = Cache(capacity_bytes=1500)
        events = []
        sim = Simulation(
            server, InvalidationProtocol(), SimulatorMode.OPTIMIZED,
            cache=cache, preload=False,
            observer=lambda kind, t, oid: events.append((kind, t, oid)),
            charge_per_modification=False,
            faults=FaultPlan(delay=50.0),
        )
        result = sim.run(
            [(1.0, "/a"), (20.0, "/a"), (30.0, "/b"), (40.0, "/a"),
             (70.0, "/a")],
        )
        # t=30 evicts /a (capacity); t=40 refetches current content;
        # the t=10 notice arrives at t=60 and must be superseded.
        assert ("stale_hit", 20.0, "/a") in events
        assert events[-1] == ("hit", 70.0, "/a")
        assert result.counters.stale_hits == 1
        assert result.counters.invalidations_received == 0
        entry = cache.peek("/a")
        assert entry is not None and entry.valid


class TestEventAlphabet:
    def test_fault_kinds_registered(self):
        for kind in ("fault_invalidation_lost", "fault_invalidation_dropped",
                     "fault_invalidation_recovered", "fault_cache_crash"):
            assert kind in EVENT_KINDS

    def test_faulty_run_emits_only_known_kinds(self, worrell):
        events = []
        sim = Simulation(
            worrell.server(), InvalidationProtocol(), SimulatorMode.OPTIMIZED,
            observer=lambda kind, t, oid: events.append(kind),
            faults=FaultPlan(
                loss_rate=0.4, retries=2, backoff=600.0, delay=30.0,
                cache_crashes=(worrell.duration / 2,), seed=8,
            ),
        )
        sim.run(worrell.requests, end_time=worrell.duration)
        assert set(events) <= set(EVENT_KINDS)
        assert "fault_invalidation_lost" in events
        assert "fault_cache_crash" in events
