"""The fault layer's counter-based RNG: determinism, range, separation."""

from repro.faults.rng import mix, splitmix64, uniform01


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_64_bit_range(self):
        for state in (0, 1, 2**63, 2**64 - 1):
            value = splitmix64(state)
            assert 0 <= value < 2**64

    def test_mix_streams_separate(self):
        assert mix(1, 0, 0) != mix(1, 0, 1)
        assert mix(1, 0, 0) != mix(1, 1, 0)
        assert mix(1, 0, 0) != mix(2, 0, 0)


class TestUniform01:
    def test_half_open_unit_interval(self):
        for i in range(500):
            draw = uniform01(7, i)
            assert 0.0 <= draw < 1.0

    def test_deterministic_per_key(self):
        assert uniform01(3, 10, 2) == uniform01(3, 10, 2)

    def test_distinct_per_attempt(self):
        draws = {uniform01(3, 10, attempt) for attempt in range(16)}
        assert len(draws) == 16

    def test_roughly_uniform(self):
        # Mean of 2000 draws should land near 0.5 — a coarse sanity
        # check that the 53-bit mantissa extraction isn't biased.
        n = 2000
        mean = sum(uniform01(0, i) for i in range(n)) / n
        assert abs(mean - 0.5) < 0.03
