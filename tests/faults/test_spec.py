"""The ``--faults`` grammar: parsing, defaults, resolution, errors."""

import pytest

from repro.faults import parse_faults
from repro.faults.spec import DEFAULT_DOWNTIME_FRACTION


class TestParse:
    def test_empty_string_is_the_null_spec(self):
        plan = parse_faults("").build(duration=100.0)
        assert plan.is_null

    def test_loss_and_downtime(self):
        spec = parse_faults("loss=0.05,downtime=2h")
        assert spec.loss_rate == 0.05
        assert spec.downtime == ((7200.0, None),)

    def test_unanchored_downtime_resolves_to_duration_fraction(self):
        plan = parse_faults("downtime=2h").build(duration=100_000.0)
        assert plan.downtime[0].start == 100_000.0 * DEFAULT_DOWNTIME_FRACTION
        assert plan.downtime[0].length == 7200.0

    def test_anchored_and_repeated_downtime(self):
        plan = parse_faults("downtime=2h@10h+30m@40h").build(duration=0.0)
        assert [(w.start, w.length) for w in plan.downtime] == [
            (36_000.0, 7200.0), (144_000.0, 1800.0),
        ]

    def test_crash_instants_sorted(self):
        spec = parse_faults("crash=40h+20h")
        assert spec.cache_crashes == (72_000.0, 144_000.0)

    def test_retry_policy_and_seed(self):
        spec = parse_faults("retries=3,backoff=5m,seed=11")
        assert spec.retries == 3
        assert spec.backoff == 300.0
        assert spec.seed == 11

    def test_duration_units(self):
        spec = parse_faults("delay=90")
        assert spec.delay == 90.0  # seconds by default
        assert parse_faults("delay=1.5m").delay == 90.0
        assert parse_faults("delay=1.5d").delay == 129_600.0

    def test_whitespace_and_order_tolerated(self):
        spec = parse_faults(" seed=2 , loss=0.1 ")
        assert spec.seed == 2
        assert spec.loss_rate == 0.1


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("loss=banana", "loss rate"),
            ("loss=1.5", r"loss must be in \[0, 1\]"),
            ("delay=fast", "delay"),
            ("downtime=soon", "downtime"),
            ("downtime=2h@nope", "downtime start"),
            ("crash=whenever", "crash"),
            ("retries=-1", "retries"),
            ("retries=two", "retries"),
            ("backoff=zzz", "backoff"),
            ("seed=x", "seed"),
            ("turbulence=0.5", "unknown --faults field"),
            ("loss", "name=value"),
        ],
    )
    def test_malformed_field_names_the_culprit(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_faults(text)
