"""Shared fixtures: small deterministic populations and request streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clock import DAY, days
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.server import OriginServer


def make_history(
    object_id: str = "/f",
    size: int = 1000,
    created: float = -30 * DAY,
    changes: tuple[float, ...] = (),
    file_type: str = "html",
    cacheable: bool = True,
    expires_after=None,
) -> ObjectHistory:
    """One object with an explicit modification schedule."""
    obj = WebObject(
        object_id=object_id,
        size=size,
        file_type=file_type,
        created=created,
        cacheable=cacheable,
        expires_after=expires_after,
    )
    return ObjectHistory(obj, ModificationSchedule(created, changes))


@pytest.fixture
def static_server() -> OriginServer:
    """Three objects that never change during the simulation window."""
    return OriginServer(
        [
            make_history("/a", size=1000),
            make_history("/b", size=2000),
            make_history("/c", size=4000, file_type="gif"),
        ]
    )


@pytest.fixture
def changing_server() -> OriginServer:
    """Objects with known in-window modification times.

    /hot changes on days 1, 2, 3; /warm changes once on day 10;
    /cold never changes.
    """
    return OriginServer(
        [
            make_history("/hot", size=1000,
                         changes=(days(1), days(2), days(3))),
            make_history("/warm", size=2000, changes=(days(10),)),
            make_history("/cold", size=4000),
        ]
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic randomized tests."""
    return np.random.default_rng(12345)
