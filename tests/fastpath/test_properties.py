"""Property-based fast-vs-reference identity: random workloads.

The hypothesis leg of the equivalence contract: any random population
(file types, Expires headers, dynamic objects) under any supported
protocol, mode, §4.1 charging policy, and preload setting must replay
event-for-event and counter-for-counter identically on both engines.
Reuses the oracle suite's workload generator so the fast path faces the
same adversarial populations the spec model does.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import hours
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import Simulation, SimulatorMode
from repro.fastpath import diff_results, fast_simulate
from tests.verify.test_oracle_properties import DURATION, rich_workloads


def supported_protocols():
    """Factories for every configuration the fast path compiles."""
    return st.sampled_from(
        [
            lambda: TTLProtocol(0.0),
            lambda: TTLProtocol(hours(24)),
            lambda: ExpiresTTLProtocol(hours(24)),
            lambda: AlexProtocol.from_percent(0),
            lambda: AlexProtocol.from_percent(10),
            lambda: PollEveryRequestProtocol(),
            lambda: InvalidationProtocol(),
            lambda: LeasedInvalidationProtocol(hours(12)),
            lambda: CERNPolicyProtocol(0.1, hours(1)),
            lambda: CERNPolicyProtocol(0.5, hours(1), max_ttl=hours(6)),
        ]
    )


@settings(max_examples=80, deadline=None)
@given(
    workload=rich_workloads(),
    make_protocol=supported_protocols(),
    mode=st.sampled_from(list(SimulatorMode)),
    per_modification=st.booleans(),
    preload=st.booleans(),
)
def test_fast_path_is_event_for_event_identical(
    workload, make_protocol, mode, per_modification, preload
):
    histories, requests = workload
    server = OriginServer(histories)
    ref_events: list = []
    reference = Simulation(
        server,
        make_protocol(),
        mode,
        preload=preload,
        charge_per_modification=per_modification,
        observer=lambda kind, t, oid: ref_events.append((kind, t, oid)),
    ).run(requests, end_time=DURATION)
    fast_events: list = []
    fast = fast_simulate(
        server,
        make_protocol(),
        requests,
        mode,
        preload=preload,
        charge_per_modification=per_modification,
        end_time=DURATION,
        observer=lambda kind, t, oid: fast_events.append((kind, t, oid)),
    )
    assert diff_results(fast, reference) == []
    assert fast_events == ref_events
