"""The ``--engine`` flag: identical CLI output under either engine."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.trace.synthesis import trace_from_workload, write_trace
from repro.workload.worrell import WorrellWorkload


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    workload = WorrellWorkload(files=10, requests=400, seed=5).build()
    path = tmp_path_factory.mktemp("traces") / "worrell.log"
    write_trace(trace_from_workload(workload), path)
    return path


def _run(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


class TestEngineFlag:
    @pytest.mark.parametrize("protocol", ["alex", "ttl", "invalidation"])
    def test_simulate_output_engine_invariant(
        self, trace_path, capsys, protocol
    ):
        base = ["simulate", str(trace_path), "--protocol", protocol]
        fast = _run([*base, "--engine", "fast"], capsys)
        reference = _run([*base, "--engine", "reference"], capsys)
        assert fast == reference
        assert protocol in fast

    def test_simulate_verify_passes_under_fast_engine(
        self, trace_path, capsys
    ):
        out = _run(
            ["simulate", str(trace_path), "--protocol", "alex",
             "--engine", "fast", "--verify"],
            capsys,
        )
        assert "alex" in out

    def test_sweep_output_engine_invariant(self, trace_path, capsys):
        base = ["sweep", str(trace_path), "--protocol", "ttl",
                "--step", "250"]
        fast = _run([*base, "--engine", "fast"], capsys)
        reference = _run([*base, "--engine", "reference"], capsys)
        assert fast == reference

    def test_profile_accepts_engine_flag(self, capsys):
        out = _run(
            ["profile", "--protocol", "alex", "--scale", "0.01",
             "--step", "50", "--engine", "fast"],
            capsys,
        )
        assert "engine fast" in out
        assert "fastpath.simulate" in out

    def test_profile_defaults_to_reference(self, capsys):
        out = _run(
            ["profile", "--protocol", "alex", "--scale", "0.01",
             "--step", "50"],
            capsys,
        )
        assert "engine reference" in out
