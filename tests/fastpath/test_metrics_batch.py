"""Batched fastpath metrics: flushed totals byte-equal to reference.

PR 6 made the fast engine step aside whenever a metrics registry or
trace sink was active.  The kernel now tallies the same publications in
flat locals and flushes them once per run through the registry's exact
Shewchuk merge path, so with observability on the fast engine must (a)
actually run — zero ``engine.fastpath_fallbacks`` — and (b) leave the
registry byte-identical to one the reference loop filled observation by
observation (``contract.diff_metrics``; the docs/FASTPATH.md
metrics-equivalence rule).
"""

from __future__ import annotations

import json

import pytest

from repro.core.simulator import Simulation, SimulatorMode
from repro.fastpath import diff_metrics, engine_simulate, fast_simulate
from repro.fastpath.contract import ENGINE_METRIC_PREFIXES
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace

from .test_identity import PROTOCOLS


def _reference_dump(workload, make_protocol, mode, *, charge, preload):
    registry = obs_registry.MetricsRegistry()
    with obs_registry.installed(registry):
        Simulation(
            workload.server(),
            make_protocol(),
            mode,
            preload=preload,
            charge_per_modification=charge,
        ).run(workload.requests, end_time=workload.duration)
    return registry.as_dict()


def _fast_dump(workload, make_protocol, mode, *, charge, preload):
    registry = obs_registry.MetricsRegistry()
    with obs_registry.installed(registry):
        fast_simulate(
            workload.server(),
            make_protocol(),
            workload.requests,
            mode,
            preload=preload,
            charge_per_modification=charge,
            end_time=workload.duration,
        )
    return registry.as_dict()


class TestFlushedTotalsByteEqual:
    @pytest.mark.parametrize(
        "name,make_protocol", PROTOCOLS, ids=[n for n, _ in PROTOCOLS]
    )
    @pytest.mark.parametrize("mode", list(SimulatorMode),
                             ids=[m.value for m in SimulatorMode])
    @pytest.mark.parametrize("charge", [True, False],
                             ids=["per-mod", "per-inval"])
    def test_registry_dump_identical(
        self, workload, name, make_protocol, mode, charge
    ):
        fast = _fast_dump(
            workload, make_protocol, mode, charge=charge, preload=True
        )
        reference = _reference_dump(
            workload, make_protocol, mode, charge=charge, preload=True
        )
        assert diff_metrics(fast, reference) == []
        # Literal byte equality of the serialized dumps, engine
        # bookkeeping aside — what diff_metrics promises, restated raw.
        strip = ENGINE_METRIC_PREFIXES
        for dump in (fast, reference):
            dump["counters"] = {
                k: v for k, v in dump["counters"].items()
                if not k.startswith(strip)
            }
        assert json.dumps(fast, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    @pytest.mark.parametrize(
        "name,make_protocol", PROTOCOLS, ids=[n for n, _ in PROTOCOLS]
    )
    def test_registry_dump_identical_cold_cache(
        self, workload, name, make_protocol
    ):
        fast = _fast_dump(
            workload, make_protocol, SimulatorMode.OPTIMIZED,
            charge=True, preload=False,
        )
        reference = _reference_dump(
            workload, make_protocol, SimulatorMode.OPTIMIZED,
            charge=True, preload=False,
        )
        assert diff_metrics(fast, reference) == []


class TestDispatchStaysFast:
    @pytest.mark.parametrize(
        "name,make_protocol", PROTOCOLS, ids=[n for n, _ in PROTOCOLS]
    )
    def test_no_fallback_with_registry_active(
        self, workload, name, make_protocol
    ):
        from repro.fastpath import set_engine

        set_engine("fast")
        registry = obs_registry.MetricsRegistry()
        with obs_registry.installed(registry):
            engine_simulate(
                workload.server(), make_protocol(), workload.requests,
                end_time=workload.duration,
            )
        assert registry.counter("engine.fastpath_fallbacks").value == 0.0
        assert registry.counter("engine.fastpath_runs").value == 1.0

    def test_no_fallback_with_sink_active(self, workload):
        from repro.core.clock import hours
        from repro.core.protocols import TTLProtocol
        from repro.fastpath import set_engine

        set_engine("fast")
        registry = obs_registry.MetricsRegistry()
        sink = obs_trace.TraceSink()
        with obs_registry.installed(registry), obs_trace.installed(sink):
            engine_simulate(
                workload.server(), TTLProtocol(hours(24)),
                workload.requests, end_time=workload.duration,
            )
        assert registry.counter("engine.fastpath_fallbacks").value == 0.0
        assert sink.events()  # the kernel's stream reached the sink


class TestSinkTee:
    def test_sink_event_stream_matches_reference(self, workload):
        from repro.core.clock import hours
        from repro.core.protocols import TTLProtocol

        ref_sink = obs_trace.TraceSink()
        with obs_trace.installed(ref_sink):
            Simulation(
                workload.server(), TTLProtocol(hours(24)),
            ).run(workload.requests, end_time=workload.duration)
        fast_sink = obs_trace.TraceSink()
        with obs_trace.installed(fast_sink):
            fast_simulate(
                workload.server(), TTLProtocol(hours(24)),
                workload.requests, end_time=workload.duration,
            )
        assert fast_sink.events() == ref_sink.events()

    def test_forwards_to_user_observer(self, workload):
        from repro.core.clock import hours
        from repro.core.protocols import TTLProtocol

        sink = obs_trace.TraceSink()
        seen: list = []
        with obs_trace.installed(sink):
            fast_simulate(
                workload.server(), TTLProtocol(hours(24)),
                workload.requests, end_time=workload.duration,
                observer=lambda kind, t, oid: seen.append((kind, t, oid)),
            )
        assert [(r["kind"], r["t"], r["id"]) for r in sink.events()] == seen


class TestOracleMetricsClause:
    def test_verify_simulation_checks_metrics(self, changing_server):
        from repro.core.clock import days, hours
        from repro.core.protocols import TTLProtocol
        from repro.verify import verify_simulation

        requests = [(days(0.5), "/hot"), (days(1.5), "/hot"),
                    (days(2.5), "/warm")]
        _, report = verify_simulation(
            changing_server, TTLProtocol(hours(6)), requests,
            end_time=days(3.0),
        )
        assert report.ok

    def test_diff_metrics_reports_divergence(self):
        a = {"counters": {"cache.stores": 3.0}, "gauges": {},
             "histograms": {}}
        b = {"counters": {"cache.stores": 4.0}, "gauges": {},
             "histograms": {}}
        lines = diff_metrics(a, b)
        assert lines and "cache.stores" in lines[0]

    def test_diff_metrics_ignores_engine_bookkeeping(self):
        a = {"counters": {"engine.fastpath_runs": 1.0,
                          "fastpath.metrics_flush": 1.0},
             "gauges": {}, "histograms": {}}
        b = {"counters": {}, "gauges": {}, "histograms": {}}
        assert diff_metrics(a, b) == []
