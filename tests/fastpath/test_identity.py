"""Byte-identity of the fast path against the reference simulator.

The contract (docs/FASTPATH.md): for every supported configuration the
fast engine must reproduce the reference's output *exactly* — all 13
counters, all 15 bandwidth-ledger cells, the observer event stream
event-for-event, the duration, and even error types and messages.  No
tolerance anywhere: these tests compare with ``==``, floats included.
"""

from __future__ import annotations

import pytest

from repro.core.clock import hours
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    TTLProtocol,
)
from repro.core.server import UnknownObjectError
from repro.core.simulator import Simulation, SimulatorMode, simulate
from repro.fastpath import diff_events, diff_results, fast_simulate

PROTOCOLS = [
    ("ttl-0", lambda: TTLProtocol(0.0)),
    ("ttl-24h", lambda: TTLProtocol(hours(24))),
    ("expires-ttl-24h", lambda: ExpiresTTLProtocol(hours(24))),
    ("alex-0", lambda: AlexProtocol.from_percent(0)),
    ("alex-10", lambda: AlexProtocol.from_percent(10)),
    ("poll", lambda: PollEveryRequestProtocol()),
    ("invalidation", lambda: InvalidationProtocol()),
    ("leased-12h", lambda: LeasedInvalidationProtocol(hours(12))),
    ("cern", lambda: CERNPolicyProtocol(0.1, hours(1))),
    ("cern-capped",
     lambda: CERNPolicyProtocol(0.5, hours(1), max_ttl=hours(6))),
]


def run_both(workload, make_protocol, mode, *, charge, preload):
    """One run on each engine, with event recording; returns the diff."""
    server = workload.server()
    requests = workload.requests
    ref_events: list = []
    reference = Simulation(
        server,
        make_protocol(),
        mode,
        preload=preload,
        charge_per_modification=charge,
        observer=lambda kind, t, oid: ref_events.append((kind, t, oid)),
    ).run(requests, end_time=workload.duration)
    fast_events: list = []
    fast = fast_simulate(
        server,
        make_protocol(),
        requests,
        mode,
        preload=preload,
        charge_per_modification=charge,
        end_time=workload.duration,
        observer=lambda kind, t, oid: fast_events.append((kind, t, oid)),
    )
    return (
        diff_results(fast, reference)
        + diff_events(fast_events, ref_events)
    )


class TestCrossProduct:
    @pytest.mark.parametrize(
        "name,make_protocol", PROTOCOLS, ids=[n for n, _ in PROTOCOLS]
    )
    @pytest.mark.parametrize("mode", list(SimulatorMode),
                             ids=[m.value for m in SimulatorMode])
    @pytest.mark.parametrize("charge", [True, False],
                             ids=["per-mod", "per-inval"])
    def test_identical_with_preload(
        self, workload, name, make_protocol, mode, charge
    ):
        assert run_both(
            workload, make_protocol, mode, charge=charge, preload=True
        ) == []

    @pytest.mark.parametrize(
        "name,make_protocol", PROTOCOLS, ids=[n for n, _ in PROTOCOLS]
    )
    def test_identical_cold_cache(self, workload, name, make_protocol):
        assert run_both(
            workload, make_protocol, SimulatorMode.OPTIMIZED,
            charge=True, preload=False,
        ) == []

    def test_identical_nonzero_start_time(self, changing_server):
        from repro.core.clock import days

        requests = [
            (days(1.25), "/hot"), (days(2.5), "/hot"), (days(2.5), "/warm"),
            (days(4.0), "/cold"), (days(11.0), "/warm"),
        ]
        ref_events: list = []
        reference = Simulation(
            changing_server, TTLProtocol(hours(12)), SimulatorMode.OPTIMIZED,
            start_time=days(1.0),
            observer=lambda *e: ref_events.append(e),
        ).run(requests, end_time=days(12.0))
        fast_events: list = []
        fast = fast_simulate(
            changing_server, TTLProtocol(hours(12)), requests,
            start_time=days(1.0), end_time=days(12.0),
            observer=lambda *e: fast_events.append(e),
        )
        assert diff_results(fast, reference) == []
        assert fast_events == ref_events


class TestErrorParity:
    """Same error type, same message, for every rejected input.

    One deliberate asymmetry (documented in docs/FASTPATH.md): the fast
    path validates the whole request stream before simulating, so the
    reference may emit events before raising where the fast path emits
    none.  The exception itself must still match exactly.
    """

    def _exc(self, fn):
        with pytest.raises((ValueError, KeyError)) as info:
            fn()
        return info.value

    def test_out_of_order_requests(self, static_server):
        requests = [(5.0, "/a"), (2.0, "/b")]
        ref = self._exc(lambda: simulate(
            static_server, TTLProtocol(hours(1)), requests))
        fast = self._exc(lambda: fast_simulate(
            static_server, TTLProtocol(hours(1)), requests))
        assert type(fast) is type(ref)
        assert str(fast) == str(ref)

    def test_unknown_object(self, static_server):
        requests = [(1.0, "/a"), (2.0, "/nope")]
        ref = self._exc(lambda: simulate(
            static_server, TTLProtocol(hours(1)), requests))
        fast = self._exc(lambda: fast_simulate(
            static_server, TTLProtocol(hours(1)), requests))
        assert isinstance(ref, UnknownObjectError)
        assert type(fast) is type(ref)
        assert str(fast) == str(ref)

    def test_end_time_before_last_request(self, static_server):
        requests = [(1.0, "/a"), (9.0, "/b")]
        ref = self._exc(lambda: simulate(
            static_server, TTLProtocol(hours(1)), requests, end_time=5.0))
        fast = self._exc(lambda: fast_simulate(
            static_server, TTLProtocol(hours(1)), requests, end_time=5.0))
        assert type(fast) is type(ref)
        assert str(fast) == str(ref)


class TestOracleIntegration:
    """The verify layer's third leg: fastpath cross-check inside the
    oracle, and the engine dispatch inside checked_simulate."""

    def test_verify_simulation_includes_fastpath_leg(self, changing_server):
        from repro.core.clock import days
        from repro.verify import verify_simulation

        requests = [(days(0.5), "/hot"), (days(1.5), "/hot"),
                    (days(2.5), "/warm")]
        _, report = verify_simulation(
            changing_server, AlexProtocol.from_percent(10), requests,
            end_time=days(3.0),
        )
        assert report.ok

    def test_checked_simulate_forced_verify_matches_plain(
        self, changing_server
    ):
        from repro.core.clock import days
        from repro.verify import checked_simulate

        requests = [(days(0.5), "/hot"), (days(1.5), "/hot")]
        checked = checked_simulate(
            changing_server, TTLProtocol(hours(6)), requests,
            end_time=days(2.0), force=True,
        )
        plain = simulate(
            changing_server, TTLProtocol(hours(6)), requests,
            end_time=days(2.0),
        )
        assert diff_results(checked, plain) == []
