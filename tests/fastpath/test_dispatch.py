"""Engine selection, the fallback predicate, and dispatch equality."""

from __future__ import annotations

import os

import pytest

from repro.core.cache import Cache
from repro.core.clock import days, hours
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.simulator import SimulatorMode, simulate
from repro.fastpath import (
    ENGINE_ENV_VAR,
    FAST,
    REFERENCE,
    UnsupportedFastPathError,
    compile_server,
    diff_results,
    engine_simulate,
    fast_simulate,
    resolve_engine,
    set_engine,
    unsupported_reason,
)
from repro.faults import parse_faults
from repro.obs import registry as obs_registry


class TestResolveEngine:
    def test_default_is_fast(self, monkeypatch):
        set_engine(None)
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine() == FAST

    def test_env_beats_default(self, monkeypatch):
        set_engine(None)
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine() == REFERENCE

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        set_engine("fast")
        assert resolve_engine() == FAST

    def test_explicit_beats_override(self):
        set_engine("fast")
        assert resolve_engine("reference") == REFERENCE

    def test_set_engine_mirrors_env_and_returns_previous(self):
        set_engine(None)
        assert set_engine("reference") is None
        assert os.environ[ENGINE_ENV_VAR] == "reference"
        assert set_engine("fast") == "reference"
        set_engine(None)
        assert ENGINE_ENV_VAR not in os.environ

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            set_engine("turbo")
        set_engine(None)
        monkeypatch.setenv(ENGINE_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine()


class TestUnsupportedReason:
    def test_supported_protocols_have_no_reason(self):
        assert unsupported_reason(TTLProtocol(hours(1))) is None
        assert unsupported_reason(AlexProtocol.from_percent(10)) is None
        assert unsupported_reason(InvalidationProtocol()) is None

    def test_cache_faults_adaptive_and_eager_fall_back(self):
        assert "cache" in unsupported_reason(
            TTLProtocol(hours(1)), cache=Cache())
        plan = parse_faults("loss=0.5,seed=1").build(days(10))
        assert "fault plan" in unsupported_reason(
            TTLProtocol(hours(1)), faults=plan)
        assert "no compiled kernel" in unsupported_reason(
            SelfTuningProtocol())
        assert "eager" in unsupported_reason(InvalidationProtocol(eager=True))

    def test_subclasses_do_not_compile(self):
        class SloppyTTL(TTLProtocol):
            def is_fresh(self, entry, now):  # pragma: no cover
                return True

        assert "no compiled kernel" in unsupported_reason(
            SloppyTTL(hours(1)))

    def test_fast_simulate_refuses_unsupported(self, static_server):
        with pytest.raises(UnsupportedFastPathError, match="no compiled"):
            fast_simulate(static_server, SelfTuningProtocol(), [])


class TestEngineSimulate:
    def test_fast_matches_reference_output(self, changing_server):
        requests = [(days(0.5), "/hot"), (days(1.5), "/hot"),
                    (days(2.5), "/warm"), (days(4.0), "/cold")]
        set_engine("fast")
        fast = engine_simulate(
            changing_server, AlexProtocol.from_percent(10), requests,
            end_time=days(5.0),
        )
        reference = simulate(
            changing_server, AlexProtocol.from_percent(10), requests,
            end_time=days(5.0),
        )
        assert diff_results(fast, reference) == []

    def test_reference_engine_is_honoured(self, changing_server):
        requests = [(days(0.5), "/hot")]
        result = engine_simulate(
            changing_server, TTLProtocol(hours(1)), requests,
            end_time=days(1.0), engine="reference",
        )
        reference = simulate(
            changing_server, TTLProtocol(hours(1)), requests,
            end_time=days(1.0),
        )
        assert diff_results(result, reference) == []

    def test_fallback_runs_match_reference(self, changing_server):
        set_engine("fast")
        requests = [(days(0.5), "/hot"), (days(1.5), "/hot")]
        plan = parse_faults("loss=0.5,seed=7").build(days(3.0))
        for kwargs in (
            {"faults": parse_faults("loss=0.5,seed=7").build(days(3.0))},
            {"cache": Cache()},
        ):
            dispatched = engine_simulate(
                changing_server, InvalidationProtocol(), requests,
                mode=SimulatorMode.OPTIMIZED, end_time=days(3.0), **kwargs,
            )
            expected = simulate(
                changing_server, InvalidationProtocol(), requests,
                mode=SimulatorMode.OPTIMIZED, end_time=days(3.0),
                **({"faults": plan} if "faults" in kwargs
                   else {"cache": Cache()}),
            )
            assert diff_results(dispatched, expected) == []
        adaptive = engine_simulate(
            changing_server, SelfTuningProtocol(), requests,
            end_time=days(3.0),
        )
        expected = simulate(
            changing_server, SelfTuningProtocol(), requests,
            end_time=days(3.0),
        )
        assert diff_results(adaptive, expected) == []

    def test_active_registry_stays_on_fast_engine(self, changing_server):
        # An installed metrics registry no longer forces the reference
        # engine: the kernel batches the same publications and flushes
        # them once per run (byte-equal totals, see test_metrics_batch).
        set_engine("fast")
        registry = obs_registry.MetricsRegistry()
        previous = obs_registry.install(registry)
        try:
            engine_simulate(
                changing_server, TTLProtocol(hours(1)),
                [(days(0.5), "/hot")], end_time=days(1.0),
            )
        finally:
            obs_registry.install(previous)
        assert registry.counter("engine.fastpath_fallbacks").value == 0.0
        assert registry.counter("engine.fastpath_runs").value == 1.0
        assert registry.counter("fastpath.metrics_flush").value == 1.0
        assert registry.counter("cache.stores").value > 0.0


class TestCompileCache:
    def test_compiled_server_is_memoized_per_instance(self, static_server):
        assert compile_server(static_server) is compile_server(static_server)
