"""Shared fastpath fixtures: pristine engine state, sample workloads.

Engine selection is process-global (an override plus the
``REPRO_ENGINE`` environment variable, so pool workers inherit it);
tests that call :func:`repro.fastpath.set_engine` must not leak the
choice into each other — or into the rest of the suite, which may
itself be running under a pinned engine (the CI reference-engine leg
exports ``REPRO_ENGINE=reference``).
"""

from __future__ import annotations

import os

import pytest

from repro.fastpath import ENGINE_ENV_VAR
from repro.fastpath import dispatch as fastpath_dispatch
from repro.workload.worrell import WorrellWorkload


@pytest.fixture(autouse=True)
def pristine_engine_state():
    previous_override = fastpath_dispatch._engine_override
    previous_env = os.environ.get(ENGINE_ENV_VAR)
    yield
    fastpath_dispatch._engine_override = previous_override
    if previous_env is None:
        os.environ.pop(ENGINE_ENV_VAR, None)
    else:
        os.environ[ENGINE_ENV_VAR] = previous_env


@pytest.fixture(scope="module")
def workload():
    """A small deterministic workload shared by the identity tests."""
    return WorrellWorkload(files=40, requests=3000, seed=11).build()
