"""The Microsoft proxy workload."""

import pytest

from repro.core.clock import DAY
from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.microsoft import MicrosoftProxyWorkload


@pytest.fixture(scope="module")
def workload():
    return MicrosoftProxyWorkload(
        sites=10, files_per_site=60, requests=15_000, seed=3
    ).build()


class TestStructure:
    def test_population_size(self, workload):
        static = [h for h in workload.histories if h.obj.cacheable]
        assert len(static) == 600

    def test_objects_spread_across_sites(self, workload):
        hosts = {h.object_id.split("/")[1] for h in workload.histories}
        assert len(hosts) == 10

    def test_dynamic_share_near_ten_percent(self, workload):
        dynamic = sum(1 for _, oid in workload.requests if "cgi-bin" in oid)
        assert dynamic / len(workload.requests) == pytest.approx(0.10,
                                                                 abs=0.02)

    def test_image_share_near_65_percent(self, workload):
        static = [
            oid for _, oid in workload.requests if "cgi-bin" not in oid
        ]
        images = sum(
            1 for oid in static if oid.endswith((".gif", ".jpg"))
        )
        # 65% of *all* accesses are images and statics are ~90% of
        # requests, so ~71% of static requests are images.
        assert images / len(static) == pytest.approx(0.71, abs=0.05)

    def test_one_day_window_nearly_static(self, workload):
        assert workload.duration == 1 * DAY
        assert workload.total_changes < 0.02 * workload.file_count

    def test_clients_are_corporate(self, workload):
        assert all(c.endswith(".corp.microsoft.com")
                   for c in workload.clients)

    def test_deterministic(self):
        build = lambda: MicrosoftProxyWorkload(  # noqa: E731
            sites=3, files_per_site=10, requests=500, seed=9
        ).build()
        assert build().requests == build().requests


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sites=0),
            dict(files_per_site=0),
            dict(requests=-1),
            dict(duration=0),
            dict(dynamic_fraction=1.0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MicrosoftProxyWorkload(**kwargs)


class TestBehaviour:
    def test_weak_consistency_thrives_on_static_day(self, workload):
        """A one-day window over month-lived objects: Alex should serve
        almost everything from cache with near-zero staleness."""
        result = simulate(
            workload.server(), AlexProtocol.from_percent(20),
            workload.requests, SimulatorMode.OPTIMIZED,
            end_time=workload.duration,
        )
        dynamic = sum(1 for _, oid in workload.requests if "cgi-bin" in oid)
        static_requests = result.counters.requests - dynamic
        static_misses = result.counters.misses - dynamic
        assert static_misses / static_requests < 0.01
        # The handful of same-day changes leaves a ~1% stale tail —
        # far inside the paper's 5% acceptability bar.
        assert result.stale_hit_rate < 0.02
