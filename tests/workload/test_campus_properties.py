"""Property tests: the campus generator honours Table 1 at every seed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.stats import mutability_from_histories
from repro.workload.campus import CAMPUS_SERVERS, CampusWorkload


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    spec=st.sampled_from(CAMPUS_SERVERS),
)
def test_table1_constraints_hold_for_every_seed(seed, spec):
    workload = CampusWorkload(spec, seed=seed, request_scale=0.02).build()
    stats = mutability_from_histories(workload.histories, workload.duration)
    assert stats.files == spec.files
    assert abs(stats.pct_mutable - spec.pct_mutable) <= 0.5
    assert abs(stats.pct_very_mutable - spec.pct_very_mutable) <= 0.5
    # Feasible change target hit within 10%.
    assert abs(stats.total_changes - spec.target_changes) <= max(
        2, 0.1 * spec.target_changes
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_all_changes_inside_the_window(seed):
    workload = CampusWorkload(
        CAMPUS_SERVERS[2], seed=seed, request_scale=0.02
    ).build()
    for history in workload.histories:
        for t in history.schedule.times:
            assert 0.0 < t <= workload.duration


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_requests_always_resolvable(seed):
    """Every generated request names an object the server holds."""
    workload = CampusWorkload(
        CAMPUS_SERVERS[1], seed=seed, request_scale=0.02,
        dynamic_fraction=0.1,
    ).build()
    server = workload.server()
    assert all(oid in server for _, oid in workload.requests)
