"""The dynamic-content workload knob (Section 5 extension)."""

import pytest

from repro.core.protocols import AlexProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import FAS, HCS, CampusWorkload


def build(fraction, spec=HCS, seed=5, scale=0.1):
    return CampusWorkload(
        spec, seed=seed, request_scale=scale, dynamic_fraction=fraction
    ).build()


class TestDynamicFraction:
    def test_default_has_no_dynamic_objects(self):
        workload = build(0.0)
        assert all(h.obj.cacheable for h in workload.histories)

    def test_fraction_of_requests_redirected(self):
        workload = build(0.2)
        dynamic = sum(1 for _, oid in workload.requests if "cgi-bin" in oid)
        share = dynamic / len(workload.requests)
        assert share == pytest.approx(0.2, abs=0.03)

    def test_dynamic_objects_are_cgi_and_uncacheable(self):
        workload = build(0.1)
        dynamic = [h for h in workload.histories if not h.obj.cacheable]
        assert dynamic
        assert all(h.obj.file_type == "cgi" for h in dynamic)
        assert all("cgi-bin" in h.object_id for h in dynamic)

    def test_static_population_untouched(self):
        with_dynamic = build(0.3, seed=9)
        static = [h for h in with_dynamic.histories if h.obj.cacheable]
        assert len(static) == HCS.files

    def test_pool_sized_to_ten_percent_of_files(self):
        workload = build(0.1, spec=FAS)
        dynamic = [h for h in workload.histories if not h.obj.cacheable]
        assert len(dynamic) == max(1, round(FAS.files * 0.1))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CampusWorkload(HCS, dynamic_fraction=1.0)
        with pytest.raises(ValueError):
            CampusWorkload(HCS, dynamic_fraction=-0.1)

    def test_dynamic_requests_always_fetch(self):
        workload = build(0.25)
        result = simulate(
            workload.server(), AlexProtocol.from_percent(10),
            workload.requests, SimulatorMode.OPTIMIZED,
            end_time=workload.duration,
        )
        dynamic = sum(1 for _, oid in workload.requests if "cgi-bin" in oid)
        # Every dynamic request is a full retrieval (plus any static ones).
        assert result.counters.full_retrievals >= dynamic

    def test_bandwidth_grows_with_fraction(self):
        results = []
        for fraction in (0.0, 0.15, 0.3):
            workload = build(fraction)
            results.append(
                simulate(
                    workload.server(), AlexProtocol.from_percent(10),
                    workload.requests, SimulatorMode.OPTIMIZED,
                    end_time=workload.duration,
                ).bandwidth.total_bytes
            )
        assert results[0] < results[1] < results[2]
