"""The Workload container."""

import pytest

from repro.core.clock import days
from repro.workload.base import Workload, sorted_request_times
from tests.conftest import make_history


def make_workload(**kwargs) -> Workload:
    defaults = dict(
        histories=[make_history("/a", changes=(days(1),)),
                   make_history("/b")],
        requests=[(1.0, "/a"), (2.0, "/b"), (3.0, "/a")],
        duration=days(30),
    )
    defaults.update(kwargs)
    return Workload(**defaults)


class TestWorkload:
    def test_server_built_once(self):
        workload = make_workload()
        assert workload.server() is workload.server()

    def test_total_changes_in_window(self):
        assert make_workload().total_changes == 1

    def test_file_count(self):
        assert make_workload().file_count == 2

    def test_request_counts(self):
        assert make_workload().request_counts() == {"/a": 2, "/b": 1}

    def test_unsorted_requests_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            make_workload(requests=[(2.0, "/a"), (1.0, "/b")])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_workload(duration=-1.0)

    def test_misaligned_clients_rejected(self):
        with pytest.raises(ValueError, match="align"):
            make_workload(clients=["h1"])

    def test_aligned_clients_accepted(self):
        workload = make_workload(clients=["h1", "h2", "h3"])
        assert workload.clients == ["h1", "h2", "h3"]


class TestSortedRequestTimes:
    def test_sorted_and_bounded(self, rng):
        times = sorted_request_times(rng, 500, days(10))
        assert list(times) == sorted(times)
        assert 0 <= times[0] and times[-1] <= days(10)

    def test_count(self, rng):
        assert len(sorted_request_times(rng, 123, days(1))) == 123

    def test_empty(self, rng):
        assert len(sorted_request_times(rng, 0, days(1))) == 0
