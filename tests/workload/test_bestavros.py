"""Popularity↔mutability selection."""

import numpy as np
import pytest

from repro.workload.bestavros import (
    choose_mutable_files,
    choose_mutable_files_banded,
    expected_stale_exposure,
)
from repro.workload.zipf import zipf_weights


class TestChooseMutable:
    def test_count_and_uniqueness(self, rng):
        chosen = choose_mutable_files(rng, 100, 20)
        assert len(chosen) == 20
        assert len(set(chosen.tolist())) == 20

    def test_sorted_output(self, rng):
        chosen = choose_mutable_files(rng, 100, 20)
        assert list(chosen) == sorted(chosen)

    def test_bias_prefers_unpopular(self):
        rng = np.random.default_rng(0)
        biased = [
            choose_mutable_files(rng, 200, 20, bias=3.0).mean()
            for _ in range(30)
        ]
        rng = np.random.default_rng(0)
        uniform = [
            choose_mutable_files(rng, 200, 20, bias=0.0).mean()
            for _ in range(30)
        ]
        assert np.mean(biased) > np.mean(uniform)

    def test_zero_mutable(self, rng):
        assert len(choose_mutable_files(rng, 10, 0)) == 0

    def test_all_mutable(self, rng):
        chosen = choose_mutable_files(rng, 10, 10)
        assert list(chosen) == list(range(10))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_files=0, n_mutable=0),
            dict(n_files=10, n_mutable=11),
            dict(n_files=10, n_mutable=-1),
            dict(n_files=10, n_mutable=5, bias=-1),
        ],
    )
    def test_invalid_inputs(self, rng, kwargs):
        with pytest.raises(ValueError):
            choose_mutable_files(rng, **kwargs)


class TestBandedSelection:
    def test_respects_band(self, rng):
        chosen = choose_mutable_files_banded(
            rng, 100, 10, top_exclude=0.1, bottom_exclude=0.3
        )
        assert chosen.min() >= 10
        assert chosen.max() < 70

    def test_top_ranks_never_mutable(self, rng):
        for _ in range(20):
            chosen = choose_mutable_files_banded(rng, 200, 30,
                                                 top_exclude=0.05)
            assert chosen.min() >= 10

    def test_band_widens_when_too_narrow(self, rng):
        # Band [10, 20) of 100 holds 10 files; asking for 50 must widen.
        chosen = choose_mutable_files_banded(
            rng, 100, 50, top_exclude=0.10, bottom_exclude=0.80
        )
        assert len(chosen) == 50

    def test_zero_mutable(self, rng):
        assert len(choose_mutable_files_banded(rng, 10, 0)) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(top_exclude=-0.1),
            dict(bottom_exclude=1.0),
            dict(top_exclude=0.6, bottom_exclude=0.5),
        ],
    )
    def test_invalid_fractions(self, rng, kwargs):
        with pytest.raises(ValueError):
            choose_mutable_files_banded(rng, 100, 5, **kwargs)

    def test_count_overflow_rejected(self, rng):
        with pytest.raises(ValueError):
            choose_mutable_files_banded(rng, 10, 11)


class TestStaleExposure:
    def test_anticorrelation_lowers_exposure(self):
        weights = zipf_weights(100, 1.0)
        aligned = np.zeros(100)
        aligned[:10] = 0.1          # popular files change
        inverted = np.zeros(100)
        inverted[-10:] = 0.1        # unpopular files change
        assert expected_stale_exposure(weights, inverted) < (
            expected_stale_exposure(weights, aligned)
        )

    def test_exact_value(self):
        exposure = expected_stale_exposure(
            np.array([0.5, 0.5]), np.array([0.2, 0.0])
        )
        assert exposure == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expected_stale_exposure(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expected_stale_exposure(np.array([]), np.array([]))
