"""Diurnal request-arrival modulation."""

import numpy as np
import pytest

from repro.core.clock import DAY, HOUR
from repro.workload.base import diurnal_request_times
from repro.workload.microsoft import MicrosoftProxyWorkload


class TestDiurnalTimes:
    def test_count_sorted_bounded(self, rng):
        times = diurnal_request_times(rng, 5000, 1 * DAY)
        assert len(times) == 5000
        assert list(times) == sorted(times)
        assert 0 <= times[0] and times[-1] <= DAY

    def test_peak_hours_busier_than_trough(self, rng):
        times = diurnal_request_times(
            rng, 50_000, 1 * DAY, peak_hour=14.0, amplitude=0.8
        )
        peak_window = np.sum((times >= 12 * HOUR) & (times < 16 * HOUR))
        trough_window = np.sum((times >= 0 * HOUR) & (times < 4 * HOUR))
        assert peak_window > 2 * trough_window

    def test_zero_amplitude_ok(self, rng):
        # Degenerates to uniform sampling (all proposals accepted).
        times = diurnal_request_times(rng, 1000, DAY, amplitude=0.0)
        assert len(times) == 1000

    def test_multi_day_cycles(self, rng):
        times = diurnal_request_times(rng, 30_000, 3 * DAY, amplitude=0.8)
        # Each day's peak window beats its own trough.
        for day in range(3):
            base = day * DAY
            peak = np.sum((times >= base + 12 * HOUR)
                          & (times < base + 16 * HOUR))
            trough = np.sum((times >= base) & (times < base + 4 * HOUR))
            assert peak > trough

    def test_zero_count(self, rng):
        assert len(diurnal_request_times(rng, 0, DAY)) == 0

    @pytest.mark.parametrize(
        "kwargs", [dict(amplitude=1.0), dict(amplitude=-0.1),
                   dict(duration=0.0)]
    )
    def test_invalid_inputs(self, rng, kwargs):
        params = dict(count=10, duration=DAY)
        params.update(kwargs)
        with pytest.raises(ValueError):
            diurnal_request_times(rng, **params)

    def test_deterministic(self):
        a = diurnal_request_times(np.random.default_rng(5), 500, DAY)
        b = diurnal_request_times(np.random.default_rng(5), 500, DAY)
        assert (a == b).all()


class TestMicrosoftDiurnal:
    def test_workload_accepts_diurnal(self):
        workload = MicrosoftProxyWorkload(
            sites=3, files_per_site=20, requests=8000,
            diurnal_amplitude=0.8, seed=4,
        ).build()
        times = np.array([t for t, _ in workload.requests])
        peak = np.sum((times >= 12 * HOUR) & (times < 16 * HOUR))
        trough = np.sum(times < 4 * HOUR)
        assert peak > 1.5 * trough

    def test_default_remains_uniform(self):
        workload = MicrosoftProxyWorkload(
            sites=3, files_per_site=20, requests=8000, seed=4
        ).build()
        times = np.array([t for t, _ in workload.requests])
        peak = np.sum((times >= 12 * HOUR) & (times < 16 * HOUR))
        trough = np.sum(times < 4 * HOUR)
        assert peak == pytest.approx(trough, rel=0.2)
