"""The Table 2 file-type registry and samplers."""

import numpy as np
import pytest

from repro.core.clock import DAY
from repro.workload.filetypes import (
    TABLE2_TYPES,
    FileTypeModel,
    FileTypeSpec,
    lognormal_with_mean,
)


class TestTable2Registry:
    def test_five_types(self):
        assert [s.name for s in TABLE2_TYPES] == [
            "gif", "html", "jpg", "cgi", "other",
        ]

    def test_access_shares_sum_to_one(self):
        assert sum(s.access_share for s in TABLE2_TYPES) == pytest.approx(1.0)

    def test_paper_sizes(self):
        by_name = {s.name: s for s in TABLE2_TYPES}
        assert by_name["gif"].mean_size == 7791
        assert by_name["html"].mean_size == 4786
        assert by_name["jpg"].mean_size == 21608
        assert by_name["cgi"].mean_size == 5980

    def test_paper_lifespans(self):
        by_name = {s.name: s for s in TABLE2_TYPES}
        assert by_name["gif"].median_lifespan_days == 146
        assert by_name["jpg"].median_lifespan_days == 72
        assert by_name["cgi"].median_lifespan_days is None

    def test_only_cgi_dynamic(self):
        assert [s.name for s in TABLE2_TYPES if not s.cacheable] == ["cgi"]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FileTypeSpec("x", access_share=1.5, mean_size=100,
                         avg_age_days=None, median_lifespan_days=None)
        with pytest.raises(ValueError):
            FileTypeSpec("x", access_share=0.5, mean_size=0,
                         avg_age_days=None, median_lifespan_days=None)


class TestLognormalWithMean:
    def test_mean_preserved(self, rng):
        draws = [lognormal_with_mean(rng, 100.0, 0.6) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.05)

    def test_sigma_zero_is_constant(self, rng):
        assert lognormal_with_mean(rng, 42.0, 0.0) == 42.0

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            lognormal_with_mean(rng, 0.0, 0.5)
        with pytest.raises(ValueError):
            lognormal_with_mean(rng, 10.0, -0.1)


class TestFileTypeModel:
    def test_sample_types_follow_shares(self, rng):
        model = FileTypeModel()
        drawn = model.sample_types(rng, 50_000)
        gif_share = drawn.count("gif") / len(drawn)
        assert gif_share == pytest.approx(0.55, abs=0.02)

    def test_exclude_dynamic_renormalizes(self, rng):
        model = FileTypeModel(include_dynamic=False)
        drawn = model.sample_types(rng, 20_000)
        assert "cgi" not in drawn
        gif_share = drawn.count("gif") / len(drawn)
        assert gif_share == pytest.approx(0.55 / 0.91, abs=0.02)

    def test_sample_size_mean(self, rng):
        model = FileTypeModel()
        sizes = [model.sample_size(rng, "gif") for _ in range(20_000)]
        assert np.mean(sizes) == pytest.approx(7791, rel=0.06)

    def test_sample_size_floor(self, rng):
        model = FileTypeModel(size_sigma=3.0)
        sizes = [model.sample_size(rng, "html") for _ in range(2000)]
        assert min(sizes) >= 64

    def test_size_sigma_zero_exact(self, rng):
        model = FileTypeModel(size_sigma=0)
        assert model.sample_size(rng, "jpg") == 21608

    def test_initial_age_positive_and_plausible(self, rng):
        model = FileTypeModel()
        ages = [model.sample_initial_age(rng, "gif") for _ in range(5000)]
        assert min(ages) >= 1 * DAY
        assert np.mean(ages) == pytest.approx(85 * DAY, rel=0.1)

    def test_initial_age_default_for_uncovered_types(self, rng):
        model = FileTypeModel()
        ages = [model.sample_initial_age(rng, "other") for _ in range(5000)]
        assert np.mean(ages) == pytest.approx(60 * DAY, rel=0.1)

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            FileTypeModel().spec("webp")

    def test_mean_body_size_weighted(self):
        model = FileTypeModel()
        expected = sum(s.access_share * s.mean_size for s in TABLE2_TYPES)
        assert model.mean_body_size() == pytest.approx(expected)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FileTypeModel(size_sigma=-1)
        with pytest.raises(ValueError):
            FileTypeModel(specs=[
                FileTypeSpec("cgi", 1.0, 100, None, None, cacheable=False)
            ], include_dynamic=False)
