"""The Worrell flat-lifetime workload (base-simulator input)."""

import numpy as np
import pytest

from repro.core.clock import DAY, days
from repro.workload.worrell import WorrellWorkload


def small() -> WorrellWorkload:
    return WorrellWorkload(files=100, requests=2000, duration=days(56),
                           seed=42)


class TestCalibration:
    def test_paper_run_change_count(self):
        """Default parameters reproduce the paper's reported run:
        2085 files changing ~19,898 times over 56 days."""
        expected = WorrellWorkload().expected_changes()
        assert expected == pytest.approx(19_898, rel=0.02)

    def test_generated_changes_near_expectation(self):
        workload = WorrellWorkload(files=400, requests=0, seed=1).build()
        expected = WorrellWorkload(files=400, requests=0).expected_changes()
        assert workload.total_changes == pytest.approx(expected, rel=0.1)

    def test_daily_change_probability_near_17_percent(self):
        workload = WorrellWorkload(files=400, requests=0, seed=2).build()
        prob = workload.total_changes / (400 * 56)
        assert prob == pytest.approx(0.17, abs=0.03)


class TestStructure:
    def test_counts(self):
        workload = small().build()
        assert workload.file_count == 100
        assert len(workload.requests) == 2000

    def test_requests_sorted_and_in_window(self):
        workload = small().build()
        times = [t for t, _ in workload.requests]
        assert times == sorted(times)
        assert 0 <= times[0] and times[-1] <= workload.duration

    def test_uniform_access_distribution(self):
        workload = WorrellWorkload(files=10, requests=20_000, seed=3).build()
        counts = workload.request_counts()
        # Uniform: every file near 2000 requests.
        assert min(counts.values()) > 1700
        assert max(counts.values()) < 2300

    def test_periodic_modification_gaps(self):
        workload = small().build()
        for history in workload.histories:
            times = history.schedule.times
            if len(times) >= 3:
                gaps = np.diff(times)
                assert np.allclose(gaps, gaps[0])
                assert days(1) <= gaps[0] <= days(18)

    def test_files_carry_pretrace_age(self):
        workload = small().build()
        assert all(h.obj.created < 0 for h in workload.histories)

    def test_sizes_positive_with_expected_mean(self):
        workload = WorrellWorkload(files=2000, requests=0, seed=5).build()
        sizes = [h.obj.size for h in workload.histories]
        assert min(sizes) >= 64
        assert np.mean(sizes) == pytest.approx(10_000, rel=0.1)

    def test_constant_size_mode(self):
        workload = WorrellWorkload(files=10, requests=0, size_sigma=0,
                                   seed=6).build()
        assert {h.obj.size for h in workload.histories} == {10_000}


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a, b = small().build(), small().build()
        assert a.requests == b.requests
        assert [h.schedule.times for h in a.histories] == [
            h.schedule.times for h in b.histories
        ]

    def test_different_seed_differs(self):
        a = small().build()
        b = WorrellWorkload(files=100, requests=2000, duration=days(56),
                            seed=43).build()
        assert a.requests != b.requests


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(files=0),
            dict(requests=-1),
            dict(duration=0),
            dict(min_lifetime=0),
            dict(min_lifetime=days(5), max_lifetime=days(2)),
            dict(mean_size=0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorrellWorkload(**kwargs)
