"""Bimodal change-time generation."""

import numpy as np
import pytest

from repro.core.clock import DAY
from repro.workload.bimodal import (
    burst_change_times,
    mixed_change_times,
    stable_change_times,
)

WINDOW = 30 * DAY


class TestStable:
    def test_count_and_range(self, rng):
        times = stable_change_times(rng, 5, WINDOW)
        assert len(times) == 5
        assert all(0 <= t <= WINDOW for t in times)

    def test_sorted(self, rng):
        times = stable_change_times(rng, 20, WINDOW)
        assert times == sorted(times)

    def test_zero_count(self, rng):
        assert stable_change_times(rng, 0, WINDOW) == []

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            stable_change_times(rng, -1, WINDOW)
        with pytest.raises(ValueError):
            stable_change_times(rng, 1, 0.0)


class TestBurst:
    def test_all_within_one_span(self, rng):
        times = burst_change_times(rng, 10, WINDOW, burst_span=3 * DAY)
        assert max(times) - min(times) <= 3 * DAY

    def test_strictly_increasing(self, rng):
        times = burst_change_times(rng, 50, WINDOW, burst_span=1 * DAY)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_fits_inside_window(self, rng):
        for _ in range(20):
            times = burst_change_times(rng, 5, WINDOW, burst_span=10 * DAY)
            assert 0 <= min(times) and max(times) <= WINDOW

    def test_span_clamped_to_window(self, rng):
        times = burst_change_times(rng, 5, 2 * DAY, burst_span=100 * DAY)
        assert max(times) <= 2 * DAY

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            burst_change_times(rng, -1, WINDOW)
        with pytest.raises(ValueError):
            burst_change_times(rng, 1, WINDOW, burst_span=0)


class TestMixed:
    def test_count_preserved(self, rng):
        assert len(mixed_change_times(rng, 9, WINDOW)) == 9

    def test_strictly_increasing_after_merge(self, rng):
        for _ in range(20):
            times = mixed_change_times(rng, 12, WINDOW)
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_burst_fraction_one_is_pure_burst(self, rng):
        times = mixed_change_times(rng, 8, WINDOW, burst_fraction=1.0,
                                   burst_span=2 * DAY)
        assert max(times) - min(times) <= 2 * DAY

    def test_burst_fraction_zero_is_pure_stable(self, rng):
        times = mixed_change_times(rng, 8, WINDOW, burst_fraction=0.0)
        assert len(times) == 8

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            mixed_change_times(rng, 5, WINDOW, burst_fraction=1.5)

    def test_valid_modification_schedule_input(self, rng):
        """Outputs must be accepted by ModificationSchedule (strictly
        after creation, strictly increasing)."""
        from repro.core.objects import ModificationSchedule

        times = mixed_change_times(rng, 15, WINDOW)
        sched = ModificationSchedule(-1.0, times)
        assert sched.total_changes == 15
