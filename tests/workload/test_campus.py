"""The synthetic campus workloads behind Table 1 and Figures 6-8."""

import pytest

from repro.core.clock import DAY
from repro.trace.stats import mutability_from_histories
from repro.workload.campus import (
    CAMPUS_SERVERS,
    DAS,
    FAS,
    HCS,
    VERY_MUTABLE_CHANGES,
    CampusServerSpec,
    CampusWorkload,
    build_campus_workloads,
)


class TestSpecs:
    def test_paper_rows(self):
        assert DAS.files == 1403 and DAS.requests == 30_093
        assert FAS.files == 290 and FAS.total_changes == 11
        assert HCS.files == 573 and HCS.duration == 25 * DAY

    def test_derived_counts(self):
        assert DAS.n_mutable == 96
        assert DAS.n_very_mutable == 37
        assert FAS.n_very_mutable == 0
        assert HCS.n_mutable == 134

    def test_hcs_infeasibility_documented(self):
        """The published HCS row is internally inconsistent: the minimum
        feasible change total exceeds the reported 260."""
        assert HCS.min_feasible_changes > HCS.total_changes
        assert HCS.target_changes == HCS.min_feasible_changes

    def test_das_fas_feasible(self):
        assert DAS.target_changes == DAS.total_changes
        assert FAS.target_changes == FAS.total_changes

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(files=0),
            dict(duration=0),
            dict(pct_remote=101),
            dict(pct_mutable=5, pct_very_mutable=6),
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        base = dict(
            name="X", files=10, requests=10, duration=30 * DAY,
            pct_remote=50, total_changes=5, pct_mutable=10,
            pct_very_mutable=0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            CampusServerSpec(**base)


class TestGeneratedStatistics:
    @pytest.fixture(scope="class")
    def workloads(self):
        return build_campus_workloads(seed=3)

    @pytest.mark.parametrize("spec", CAMPUS_SERVERS, ids=lambda s: s.name)
    def test_table1_row_matches(self, workloads, spec):
        workload = workloads[spec.name]
        stats = mutability_from_histories(workload.histories,
                                          workload.duration)
        assert stats.files == spec.files
        assert abs(stats.pct_mutable - spec.pct_mutable) <= 0.5
        assert abs(stats.pct_very_mutable - spec.pct_very_mutable) <= 0.5
        assert stats.total_changes == pytest.approx(
            spec.target_changes, rel=0.1
        )

    @pytest.mark.parametrize("spec", CAMPUS_SERVERS, ids=lambda s: s.name)
    def test_request_volume(self, workloads, spec):
        assert len(workloads[spec.name].requests) == spec.requests

    @pytest.mark.parametrize("spec", CAMPUS_SERVERS, ids=lambda s: s.name)
    def test_remote_fraction(self, workloads, spec):
        workload = workloads[spec.name]
        remote = sum(1 for c in workload.clients if "remote" in c)
        pct = 100 * remote / len(workload.clients)
        assert abs(pct - spec.pct_remote) <= 2.0

    def test_very_mutable_threshold_respected(self, workloads):
        for workload in workloads.values():
            for h in workload.histories:
                changes = h.schedule.changes_in(0.0, workload.duration)
                # Plain mutable files stay strictly below the cutoff.
                assert changes == 0 or changes == h.schedule.total_changes

    def test_popular_files_stable(self, workloads):
        """Bestavros: the most requested files do not change."""
        workload = workloads["HCS"]
        counts = workload.request_counts()
        by_requests = sorted(counts, key=counts.get, reverse=True)
        top20 = by_requests[:20]
        histories = {h.object_id: h for h in workload.histories}
        changed_top = sum(
            1 for oid in top20
            if histories[oid].schedule.changes_in(0.0, workload.duration)
        )
        assert changed_top <= 2

    def test_zipf_request_skew(self, workloads):
        counts = workloads["FAS"].request_counts()
        ordered = sorted(counts.values(), reverse=True)
        top_decile = sum(ordered[: len(ordered) // 10])
        assert top_decile > 0.3 * sum(ordered)


class TestBuilderKnobs:
    def test_request_scale(self):
        workload = CampusWorkload(HCS, seed=1, request_scale=0.1).build()
        assert len(workload.requests) == pytest.approx(3255, abs=1)

    def test_deterministic(self):
        a = CampusWorkload(FAS, seed=9).build()
        b = CampusWorkload(FAS, seed=9).build()
        assert a.requests == b.requests

    def test_distinct_seeds_per_server(self):
        workloads = build_campus_workloads(seed=0)
        assert len({tuple(w.requests[:5]) for w in workloads.values()}) == 3

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            CampusWorkload(FAS, request_scale=0)

    def test_mutable_file_count_exact(self):
        workload = CampusWorkload(DAS, seed=4).build()
        mutable = sum(
            1 for h in workload.histories
            if h.schedule.changes_in(0.0, workload.duration) > 0
        )
        assert mutable == DAS.n_mutable
        very = sum(
            1 for h in workload.histories
            if h.schedule.changes_in(0.0, workload.duration)
            > VERY_MUTABLE_CHANGES - 1
        )
        assert very == DAS.n_very_mutable
