"""The Boston University population substrate."""

import pytest

from repro.core.clock import DAY
from repro.workload.boston import BU_WINDOW, BostonPopulation


class TestBuild:
    @pytest.fixture(scope="class")
    def population(self):
        builder = BostonPopulation(files=600, seed=11)
        return builder, builder.build()

    def test_counts(self, population):
        builder, histories = population
        assert len(histories) == 600

    def test_no_dynamic_content(self, population):
        _, histories = population
        assert all(h.obj.file_type != "cgi" for h in histories)

    def test_window_is_186_days(self):
        assert BU_WINDOW == 186 * DAY

    def test_changes_within_window(self, population):
        _, histories = population
        for h in histories:
            assert all(0 < t < BU_WINDOW for t in h.schedule.times)

    def test_hot_set_carries_most_changes(self, population):
        builder, histories = population
        counts = sorted(
            (h.schedule.total_changes for h in histories), reverse=True
        )
        hot = counts[: max(1, int(600 * builder.hot_fraction * 2))]
        assert sum(hot) > 0.5 * sum(counts)

    def test_total_change_volume_scales_with_paper(self):
        builder = BostonPopulation(files=2500, seed=7)
        histories = builder.build()
        total = builder.total_changes(histories)
        # Paper: ~14,000 changes for ~2,500 files over 186 days.  The
        # two-mode mixture lands in the same regime.
        assert 4_000 <= total <= 30_000

    def test_cold_files_change_rarely(self, population):
        _, histories = population
        cold_like = [
            h for h in histories
            if h.obj.file_type == "gif" and h.schedule.total_changes <= 3
        ]
        assert len(cold_like) > 0.7 * sum(
            1 for h in histories if h.obj.file_type == "gif"
        )

    def test_pretrace_ages(self, population):
        _, histories = population
        assert all(h.obj.created <= -DAY for h in histories)

    def test_deterministic(self):
        a = BostonPopulation(files=100, seed=3).build()
        b = BostonPopulation(files=100, seed=3).build()
        assert [h.schedule.times for h in a] == [h.schedule.times for h in b]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(files=0),
            dict(window=0),
            dict(hot_fraction=1.5),
            dict(hot_interval=0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BostonPopulation(**kwargs)
