"""Zipf popularity sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import ZipfSampler, zipf_weights


class TestWeights:
    def test_normalized(self):
        assert zipf_weights(100, 0.9).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_s_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_classic_ratio(self):
        # With s=1, rank 1 gets twice rank 2's probability.
        weights = zipf_weights(100, 1.0)
        assert weights[0] / weights[1] == pytest.approx(2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)


class TestSampler:
    def test_ranks_in_range(self, rng):
        sampler = ZipfSampler(20, 0.9)
        ranks = sampler.sample(rng, 1000)
        assert ranks.min() >= 0 and ranks.max() < 20

    def test_empirical_skew(self, rng):
        sampler = ZipfSampler(100, 0.9)
        ranks = sampler.sample(rng, 50_000)
        top = np.mean(ranks < 10)
        bottom = np.mean(ranks >= 90)
        assert top > 5 * bottom

    def test_empirical_matches_theoretical(self, rng):
        sampler = ZipfSampler(10, 0.8)
        ranks = sampler.sample(rng, 100_000)
        empirical = np.mean(ranks == 0)
        assert empirical == pytest.approx(sampler.probability(0), abs=0.01)

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(17, 1.1)
        total = sum(sampler.probability(r) for r in range(17))
        assert total == pytest.approx(1.0)

    def test_probability_bounds_checked(self):
        sampler = ZipfSampler(5, 1.0)
        with pytest.raises(IndexError):
            sampler.probability(5)
        with pytest.raises(IndexError):
            sampler.probability(-1)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(5, 1.0).sample(rng, -1)

    def test_deterministic_given_seed(self):
        sampler = ZipfSampler(30, 0.9)
        a = sampler.sample(np.random.default_rng(7), 100)
        b = sampler.sample(np.random.default_rng(7), 100)
        assert (a == b).all()


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 500), s=st.floats(0.0, 2.0))
def test_weights_always_valid_distribution(n, s):
    weights = zipf_weights(n, s)
    assert len(weights) == n
    assert (weights > 0).all()
    assert weights.sum() == pytest.approx(1.0)
