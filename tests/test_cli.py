"""The repro command-line tool."""

import pytest

from repro.cli import build_protocol, main, server_from_trace
from repro.core.clock import hours
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.trace.records import Trace, TraceRecord


class TestBuildProtocol:
    def test_alex_percent(self):
        proto = build_protocol("alex", 25)
        assert isinstance(proto, AlexProtocol)
        assert proto.percent == pytest.approx(25)

    def test_ttl_hours(self):
        proto = build_protocol("ttl", 125)
        assert isinstance(proto, TTLProtocol)
        assert proto.ttl == hours(125)

    def test_parameterless_protocols(self):
        assert isinstance(build_protocol("invalidation", 0),
                          InvalidationProtocol)
        assert isinstance(build_protocol("poll", 0),
                          PollEveryRequestProtocol)

    def test_cern_fraction(self):
        proto = build_protocol("cern", 10)
        assert isinstance(proto, CERNPolicyProtocol)
        assert proto.lm_fraction == pytest.approx(0.1)

    def test_leased_hours(self):
        proto = build_protocol("leased", 24)
        assert isinstance(proto, LeasedInvalidationProtocol)
        assert proto.lease == hours(24)

    def test_selftuning(self):
        proto = build_protocol("SelfTuning", 20)
        assert isinstance(proto, SelfTuningProtocol)
        assert proto.initial_threshold == pytest.approx(0.2)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_protocol("nfs", 1)


class TestServerFromTrace:
    def _record(self, t, path, lm, size=100):
        return TraceRecord(timestamp=t, client="h", path=path, size=size,
                           last_modified=lm)

    def test_reconstructs_modifications(self):
        trace = Trace([
            self._record(1.0, "/a", lm=-50.0),
            self._record(2.0, "/a", lm=1.5),
            self._record(3.0, "/a", lm=2.5),
        ])
        server = server_from_trace(trace)
        assert server.schedule("/a").created == -50.0
        assert server.schedule("/a").times == (1.5, 2.5)

    def test_duplicate_lm_collapses(self):
        trace = Trace([
            self._record(1.0, "/a", lm=-50.0),
            self._record(2.0, "/a", lm=-50.0),
        ])
        server = server_from_trace(trace)
        assert server.schedule("/a").total_changes == 0

    def test_dynamic_paths_marked_uncacheable(self):
        trace = Trace([self._record(1.0, "/cgi-bin/x", lm=None)])
        server = server_from_trace(trace)
        assert not server.object("/cgi-bin/x").cacheable

    def test_file_type_from_extension(self):
        trace = Trace([
            self._record(1.0, "/img/a.gif", lm=0.5),
            self._record(2.0, "/b.weird", lm=0.5),
        ])
        server = server_from_trace(trace)
        assert server.object("/img/a.gif").file_type == "gif"
        assert server.object("/b.weird").file_type == "other"

    def test_size_takes_maximum(self):
        trace = Trace([
            self._record(1.0, "/a", lm=0.5, size=100),
            self._record(2.0, "/a", lm=0.5, size=300),
        ])
        assert server_from_trace(trace).object("/a").size == 300


class TestEndToEnd:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "fas.log"
        assert main(["synthesize", "fas", str(path), "--scale", "0.05",
                     "--seed", "2"]) == 0
        return path

    def test_synthesize_creates_parseable_file(self, tmp_path, capsys):
        path = tmp_path / "out.log"
        assert main(["synthesize", "fas", str(path), "--scale", "0.05"]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out and "290 objects" in out

    def test_synthesize_unknown_workload(self, tmp_path, capsys):
        assert main(["synthesize", "nope", str(tmp_path / "x.log")]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_stats(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "% Mutable" in out
        assert "change probability" in out

    def test_simulate(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--protocol", "alex",
                     "--parameter", "10"]) == 0
        out = capsys.readouterr().out
        assert "alex(10%)" in out
        assert "round trips" in out

    def test_simulate_base_mode(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--protocol", "ttl",
                     "--parameter", "48", "--mode", "base"]) == 0
        assert "base" in capsys.readouterr().out

    def test_sweep(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--protocol", "ttl",
                     "--step", "250"]) == 0
        out = capsys.readouterr().out
        assert "inval" in out
        assert "TTL hours" in out

    def test_sweep_rejects_other_protocols(self, trace_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", str(trace_file), "--protocol", "poll"])

    def test_simulate_with_faults_and_leased_protocol(
        self, trace_file, capsys
    ):
        assert main(["simulate", str(trace_file), "--protocol", "leased",
                     "--parameter", "24",
                     "--faults", "loss=0.4,seed=3", "--verify"]) == 0
        assert "leased-invalidation(24h)" in capsys.readouterr().out

    def test_faults_make_invalidation_stale(self, trace_file, capsys):
        assert main(["simulate", str(trace_file),
                     "--protocol", "invalidation"]) == 0
        clean = capsys.readouterr().out
        assert main(["simulate", str(trace_file),
                     "--protocol", "invalidation",
                     "--faults", "loss=1.0"]) == 0
        lossy = capsys.readouterr().out
        assert "0.00%" in clean   # perfect consistency without faults
        assert clean != lossy

    def test_sweep_with_faults(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--protocol", "alex",
                     "--step", "50",
                     "--faults", "loss=0.3,downtime=2h,seed=1"]) == 0
        assert "inval" in capsys.readouterr().out

    def test_simulation_from_reconstructed_server_is_sane(self, trace_file):
        """Invalidation over a reconstructed server still never stale."""
        from repro.cli import _simulate_trace
        from repro.core.simulator import SimulatorMode
        from repro.trace.synthesis import read_trace

        trace = read_trace(trace_file)
        result = _simulate_trace(
            trace, InvalidationProtocol(), SimulatorMode.OPTIMIZED
        )
        assert result.counters.stale_hits == 0
        assert result.counters.requests == len(trace)


class TestArgumentErrors:
    """Bad arguments must fail fast (status 2), never mid-simulation."""

    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "fas.log"
        assert main(["synthesize", "fas", str(path), "--scale", "0.05",
                     "--seed", "2"]) == 0
        return path

    def test_non_integer_workers_rejected(self, trace_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", str(trace_file), "--protocol", "ttl",
                  "--workers", "two"])
        assert excinfo.value.code == 2

    def test_nonpositive_workers_clamp_to_serial(self, trace_file, capsys):
        # Documented clamp: workers <= 0 resolves to 1 (serial), not a
        # crash, and output is identical to an explicit serial run.
        assert main(["sweep", str(trace_file), "--protocol", "ttl",
                     "--step", "250", "--workers", "-3"]) == 0
        clamped = capsys.readouterr().out
        assert main(["sweep", str(trace_file), "--protocol", "ttl",
                     "--step", "250", "--workers", "1"]) == 0
        assert clamped == capsys.readouterr().out

    def test_bad_workers_env_var_rejected(self, monkeypatch):
        from repro.runtime import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_unknown_protocol_rejected_by_parser(self, trace_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", str(trace_file), "--protocol", "nfs"])
        assert excinfo.value.code == 2

    def test_unknown_protocol_returns_two_from_handler(
        self, trace_file, capsys
    ):
        # The handler's own guard (reached when build_protocol is driven
        # programmatically, past argparse's choices= gate).
        import argparse

        from repro.cli import cmd_simulate

        args = argparse.Namespace(
            trace=trace_file, protocol="nfs", parameter=1.0,
            mode="optimized", verify=False,
        )
        assert cmd_simulate(args) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_malformed_faults_spec_returns_two(self, trace_file, capsys):
        assert main(["simulate", str(trace_file),
                     "--faults", "loss=banana"]) == 2
        assert "loss rate" in capsys.readouterr().err
        assert main(["sweep", str(trace_file), "--protocol", "ttl",
                     "--faults", "turbulence=0.5"]) == 2
        assert "unknown --faults field" in capsys.readouterr().err

    def test_unknown_experiment_id_rejected(self):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["warp9"])
        assert excinfo.value.code == 2

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestVerifyScaleCombos:
    """--verify composes with --scale / --workers on every entry point."""

    @pytest.fixture(autouse=True)
    def _oracle_off_after(self):
        from repro.verify import set_enabled

        yield
        set_enabled(False)

    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "fas.log"
        assert main(["synthesize", "fas", str(path), "--scale", "0.05",
                     "--seed", "2"]) == 0
        return path

    def test_simulate_verify(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--protocol", "ttl",
                     "--parameter", "48", "--verify"]) == 0
        assert "ttl" in capsys.readouterr().out

    def test_sweep_verify_parallel_matches_serial(self, trace_file, capsys):
        assert main(["sweep", str(trace_file), "--protocol", "ttl",
                     "--step", "250", "--verify", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(["sweep", str(trace_file), "--protocol", "ttl",
                     "--step", "250", "--workers", "1"]) == 0
        assert parallel == capsys.readouterr().out

    def test_experiment_verify_scale(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        assert experiments_main(
            ["figure2", "--scale", "0.05", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "oracle:" in out
        assert "zero divergence" in out
