"""The paper's 43-byte message cost model."""

import pytest

from repro.core.costs import DEFAULT_COSTS, PAPER_MESSAGE_BYTES, MessageCosts


class TestDefaults:
    def test_paper_message_size(self):
        assert PAPER_MESSAGE_BYTES == 43
        assert DEFAULT_COSTS.control_message == 43


class TestExchangeCosts:
    def test_full_retrieval_two_messages_plus_body(self):
        control, body = DEFAULT_COSTS.full_retrieval(5000)
        assert control == 86
        assert body == 5000

    def test_validation_not_modified_two_messages(self):
        control, body = DEFAULT_COSTS.validation_not_modified()
        assert control == 86
        assert body == 0

    def test_validation_modified_folds_body_into_reply(self):
        control, body = DEFAULT_COSTS.validation_modified(7000)
        assert control == 86
        assert body == 7000

    def test_invalidation_single_one_way_message(self):
        control, body = DEFAULT_COSTS.invalidation_notice()
        assert control == 43
        assert body == 0

    def test_custom_message_size_propagates(self):
        costs = MessageCosts(control_message=100)
        assert costs.full_retrieval(1)[0] == 200
        assert costs.invalidation_notice()[0] == 100

    def test_zero_cost_messages_allowed(self):
        costs = MessageCosts(control_message=0)
        assert costs.validation_not_modified() == (0, 0)


class TestValidation:
    def test_negative_message_size_rejected(self):
        with pytest.raises(ValueError):
            MessageCosts(control_message=-1)

    @pytest.mark.parametrize("method", ["full_retrieval", "validation_modified"])
    def test_negative_body_rejected(self, method):
        with pytest.raises(ValueError):
            getattr(DEFAULT_COSTS, method)(-5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COSTS.control_message = 10
