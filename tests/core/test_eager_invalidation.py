"""The eager (push-on-change) invalidation variant and latency accounting."""

import pytest

from repro.core.clock import days, hours
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate
from tests.conftest import make_history


class TestEagerInvalidation:
    def test_name_distinguishes_variants(self):
        assert InvalidationProtocol().name == "invalidation"
        assert InvalidationProtocol(eager=True).name == "invalidation(eager)"

    def test_push_on_every_change(self, changing_server):
        result = simulate(
            changing_server, InvalidationProtocol(eager=True),
            [], SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        # 4 changes: 4 notices AND 4 body pushes, zero client requests.
        assert result.counters.server_invalidations_sent == 4
        assert result.counters.prefetches == 4
        assert result.counters.server_gets == 4
        assert result.counters.full_retrievals == 0
        assert result.bandwidth.exchanges["prefetch"] == 4

    def test_prefetch_bytes_charged(self, changing_server):
        result = simulate(
            changing_server, InvalidationProtocol(eager=True),
            [], SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        # /hot (1000 B) pushed 3x, /warm (2000 B) once, + 86 B handshake
        # each, + 43 B notice each.
        expected = 3 * (1000 + 86) + (2000 + 86) + 4 * 43
        assert result.bandwidth.total_bytes == expected

    def test_accesses_after_push_are_free_hits(self, changing_server):
        result = simulate(
            changing_server, InvalidationProtocol(eager=True),
            [(days(1.5), "/hot"), (days(5), "/hot")],
            SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        assert result.counters.hits == 2
        assert result.counters.misses == 0
        assert result.counters.stale_hits == 0
        assert result.counters.mean_round_trips == 0.0

    def test_eager_costs_more_bandwidth_than_lazy(self, changing_server):
        requests = [(days(10), "/hot")]
        eager = simulate(
            changing_server, InvalidationProtocol(eager=True),
            requests, SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        lazy = simulate(
            changing_server, InvalidationProtocol(),
            requests, SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        # Lazy transfers one body (latest version on access); eager
        # pushed all four.
        assert eager.bandwidth.total_bytes > lazy.bandwidth.total_bytes
        assert lazy.counters.mean_round_trips == 1.0
        assert eager.counters.mean_round_trips == 0.0

    def test_invariants_hold_with_prefetches(self, changing_server):
        result = simulate(
            changing_server, InvalidationProtocol(eager=True),
            [(days(0.5 * i), "/warm") for i in range(1, 40)],
            SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        result.counters.check_invariants()


class TestRoundTripAccounting:
    def test_fresh_hits_cost_nothing(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(500)),
            [(days(1), "/cold"), (days(2), "/cold")],
            SimulatorMode.OPTIMIZED,
        )
        assert result.counters.round_trips == 0

    def test_validation_costs_one(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(days(2), "/cold")], SimulatorMode.OPTIMIZED,
        )
        assert result.counters.round_trips == 1

    def test_poll_every_request_is_one_per_request(self, changing_server):
        requests = [(days(0.5 * i), "/cold") for i in range(1, 11)]
        result = simulate(
            changing_server, PollEveryRequestProtocol(),
            requests, SimulatorMode.OPTIMIZED,
        )
        assert result.counters.mean_round_trips == 1.0

    def test_base_mode_counts_full_fetches(self, changing_server):
        result = simulate(
            changing_server, AlexProtocol.from_percent(0),
            [(days(1), "/cold")], SimulatorMode.BASE,
        )
        assert result.counters.round_trips == 1

    def test_summary_includes_round_trips(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(days(2), "/cold")], SimulatorMode.OPTIMIZED,
        )
        assert result.summary()["mean_round_trips"] == 1.0
