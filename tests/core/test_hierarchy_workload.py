"""Workload-scale hierarchy runs: the Figure 1 argument beyond toy cases."""

import pytest

from repro.core.clock import hours
from repro.core.hierarchy import drive_workload, two_level_tree
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import HCS, CampusWorkload


@pytest.fixture(scope="module")
def workload():
    return CampusWorkload(HCS, seed=13, request_scale=0.1).build()


class TestTwoLevelTree:
    def test_shape(self):
        root, leaves = two_level_tree(lambda: TTLProtocol(hours(1)),
                                      fan_out=3)
        assert len(leaves) == 3
        assert all(leaf.parent is root for leaf in leaves)
        assert [leaf.name for leaf in leaves] == [
            "cache-1a", "cache-1b", "cache-1c",
        ]

    def test_invalid_fan_out(self):
        with pytest.raises(ValueError):
            two_level_tree(lambda: TTLProtocol(1.0), fan_out=0)


class TestDriveWorkload:
    def test_all_requests_served(self, workload):
        sim = drive_workload(
            workload.server(), lambda: TTLProtocol(hours(125)),
            workload.requests, clients=workload.clients,
            end_time=workload.duration,
        )
        assert sim.leaf_counters().requests == len(workload.requests)

    def test_clients_pinned_to_leaves(self, workload):
        """The same client always reaches the same leaf cache."""
        sim = drive_workload(
            workload.server(), lambda: TTLProtocol(hours(125)),
            workload.requests[:200], clients=workload.clients[:200],
            end_time=workload.duration,
        )
        served = sum(
            leaf.counters.requests for leaf in sim.leaves.values()
        )
        assert served == 200

    def test_invalidation_never_stale_at_scale(self, workload):
        sim = drive_workload(
            workload.server(), InvalidationProtocol,
            workload.requests, clients=workload.clients,
            deliver_invalidations=True, end_time=workload.duration,
        )
        assert sim.leaf_counters().stale_hits == 0

    def test_flattening_never_favours_time_based(self, workload):
        """Figure 1's argument at workload scale: the collapsed model's
        time/invalidation bandwidth ratio is no lower than the
        hierarchy's."""
        server = workload.server()

        def hier_bytes(protocol_factory, invalidations):
            sim = drive_workload(
                server, protocol_factory, workload.requests,
                clients=workload.clients,
                deliver_invalidations=invalidations,
                end_time=workload.duration,
            )
            return sim.total_bytes()

        hier_time = hier_bytes(lambda: TTLProtocol(hours(125)), False)
        hier_inval = hier_bytes(InvalidationProtocol, True)

        flat_time = simulate(
            server, TTLProtocol(hours(125)), workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        ).bandwidth.total_bytes
        flat_inval = simulate(
            server, InvalidationProtocol(), workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        ).bandwidth.total_bytes

        assert hier_inval > 0 and flat_inval > 0
        assert flat_time / flat_inval >= hier_time / hier_inval * 0.999

    def test_heterogeneous_protocols_per_level(self, workload):
        """Nothing requires every level to run the same protocol: a
        conservative leaf tier over a relaxed parent tier works and
        stays within the leaf tier's staleness envelope."""
        from repro.core.hierarchy import CacheNode, HierarchySimulation
        from repro.core.protocols import AlexProtocol

        root = CacheNode("cache-2", AlexProtocol.from_percent(100))
        leaves = [
            CacheNode("1a", AlexProtocol.from_percent(5), parent=root),
            CacheNode("1b", AlexProtocol.from_percent(5), parent=root),
        ]
        sim = HierarchySimulation(workload.server(), root, leaves)
        sim.preload(at=0.0)
        names = ["1a", "1b"]
        stale = 0
        for i, (t, oid) in enumerate(workload.requests):
            stale += sim.request(names[i % 2], oid, t)
        sim.finish(workload.duration)
        # The relaxed parent can serve slightly stale content to a
        # freshly-validating leaf, but the envelope stays small.
        assert stale / len(workload.requests) < 0.10
        assert sim.leaf_counters().requests == len(workload.requests)

    def test_hop_weighting_exceeds_flat_bytes(self, workload):
        """Worrell's hops x bytes metric is strictly larger than raw
        bytes whenever any leaf traffic exists."""
        sim = drive_workload(
            workload.server(), lambda: TTLProtocol(hours(50)),
            workload.requests, clients=workload.clients,
            end_time=workload.duration,
        )
        assert sim.hop_weighted_bytes() > sim.total_bytes()
