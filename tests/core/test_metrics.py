"""Bandwidth ledger and consistency counters."""

import pytest

from repro.core.metrics import (
    FULL_RETRIEVAL,
    INVALIDATION,
    VALIDATION_200,
    VALIDATION_304,
    BandwidthLedger,
    ConsistencyCounters,
)


class TestBandwidthLedger:
    def test_starts_empty(self):
        ledger = BandwidthLedger()
        assert ledger.total_bytes == 0
        assert ledger.total_megabytes == 0.0

    def test_charge_accumulates(self):
        ledger = BandwidthLedger()
        ledger.charge(FULL_RETRIEVAL, 86, 5000)
        ledger.charge(FULL_RETRIEVAL, 86, 3000)
        assert ledger.control_bytes[FULL_RETRIEVAL] == 172
        assert ledger.body_bytes[FULL_RETRIEVAL] == 8000
        assert ledger.exchanges[FULL_RETRIEVAL] == 2

    def test_totals_cross_categories(self):
        ledger = BandwidthLedger()
        ledger.charge(VALIDATION_304, 86, 0)
        ledger.charge(VALIDATION_200, 86, 1000)
        ledger.charge(INVALIDATION, 43, 0)
        assert ledger.total_control_bytes == 215
        assert ledger.total_body_bytes == 1000
        assert ledger.total_bytes == 1215

    def test_megabytes_decimal(self):
        ledger = BandwidthLedger()
        ledger.charge(FULL_RETRIEVAL, 0, 2_500_000)
        assert ledger.total_megabytes == 2.5

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            BandwidthLedger().charge("bogus", 1, 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            BandwidthLedger().charge(FULL_RETRIEVAL, -1, 0)

    def test_merge(self):
        a, b = BandwidthLedger(), BandwidthLedger()
        a.charge(FULL_RETRIEVAL, 86, 100)
        b.charge(FULL_RETRIEVAL, 86, 200)
        b.charge(INVALIDATION, 43, 0)
        a.merge(b)
        assert a.body_bytes[FULL_RETRIEVAL] == 300
        assert a.exchanges[INVALIDATION] == 1


class TestConsistencyCounters:
    def test_rates_zero_when_idle(self):
        counters = ConsistencyCounters()
        assert counters.miss_rate == 0.0
        assert counters.hit_rate == 0.0
        assert counters.stale_hit_rate == 0.0

    def test_rates(self):
        counters = ConsistencyCounters(
            requests=10, hits=8, misses=2, stale_hits=1
        )
        assert counters.miss_rate == 0.2
        assert counters.hit_rate == 0.8
        assert counters.stale_hit_rate == 0.1

    def test_server_operations_sum(self):
        counters = ConsistencyCounters(
            server_gets=3, server_ims_queries=5, server_invalidations_sent=7
        )
        assert counters.server_operations == 15

    def test_merge(self):
        a = ConsistencyCounters(requests=5, hits=5)
        b = ConsistencyCounters(requests=3, hits=1, misses=2, stale_hits=1)
        a.merge(b)
        assert a.requests == 8
        assert a.hits == 6
        assert a.misses == 2
        assert a.stale_hits == 1

    def test_invariants_pass_when_consistent(self):
        counters = ConsistencyCounters(
            requests=4, hits=3, misses=1, stale_hits=2,
            validations=2, validations_not_modified=1,
            server_ims_queries=2, full_retrievals=1, server_gets=1,
        )
        counters.check_invariants()

    def test_invariants_catch_hit_miss_mismatch(self):
        counters = ConsistencyCounters(requests=4, hits=1, misses=1)
        with pytest.raises(AssertionError):
            counters.check_invariants()

    def test_invariants_catch_stale_exceeding_hits(self):
        counters = ConsistencyCounters(requests=2, hits=1, misses=1,
                                       stale_hits=2)
        with pytest.raises(AssertionError):
            counters.check_invariants()
