"""Staleness-severity accounting (mean stale age)."""

import pytest

from repro.core.clock import days, hours
from repro.core.metrics import ConsistencyCounters
from repro.core.protocols import AlexProtocol, InvalidationProtocol, TTLProtocol
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate
from tests.conftest import make_history


class TestCounter:
    def test_zero_when_no_stale_hits(self):
        assert ConsistencyCounters().mean_stale_age == 0.0

    def test_mean(self):
        counters = ConsistencyCounters(stale_hits=2, stale_age_sum=10.0)
        assert counters.mean_stale_age == 5.0

    def test_merge_sums(self):
        a = ConsistencyCounters(stale_hits=1, stale_age_sum=4.0)
        b = ConsistencyCounters(stale_hits=1, stale_age_sum=6.0)
        a.merge(b)
        assert a.mean_stale_age == 5.0


class TestSimulatorAccounting:
    def test_exact_lag_single_stale_hit(self):
        # /f changes at day 3; request at day 5 under a 500h TTL is
        # served stale, 2 days after the change.
        server = OriginServer([make_history("/f", changes=(days(3),))])
        result = simulate(
            server, TTLProtocol(hours(500)), [(days(5), "/f")],
            SimulatorMode.OPTIMIZED,
        )
        assert result.counters.stale_hits == 1
        assert result.counters.stale_age_sum == pytest.approx(days(2))

    def test_lag_measured_from_first_missed_change(self):
        # Two changes (days 3 and 4); the entry went stale at day 3.
        server = OriginServer(
            [make_history("/f", changes=(days(3), days(4)))]
        )
        result = simulate(
            server, TTLProtocol(hours(500)), [(days(5), "/f")],
            SimulatorMode.OPTIMIZED,
        )
        assert result.counters.stale_age_sum == pytest.approx(days(2))

    def test_fresh_hits_add_nothing(self):
        server = OriginServer([make_history("/f", changes=(days(3),))])
        result = simulate(
            server, TTLProtocol(hours(500)), [(days(1), "/f")],
            SimulatorMode.OPTIMIZED,
        )
        assert result.counters.stale_age_sum == 0.0

    def test_invalidation_never_accumulates(self, changing_server):
        requests = [(days(0.3 * i), "/hot") for i in range(1, 60)]
        result = simulate(
            changing_server, InvalidationProtocol(), requests,
            SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        assert result.counters.stale_age_sum == 0.0

    def test_ttl_bounds_stale_age(self, changing_server):
        """A stale TTL entry cannot have been stale longer than the TTL
        itself (it would have revalidated)."""
        ttl = hours(48)
        requests = [(days(0.2 * i), "/hot") for i in range(1, 120)]
        result = simulate(
            changing_server, TTLProtocol(ttl), requests,
            SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        if result.counters.stale_hits:
            assert result.counters.mean_stale_age <= ttl

    def test_alex_stale_age_grows_with_threshold(self):
        """Higher thresholds do not only make staleness more frequent —
        they make it deeper."""
        server = OriginServer(
            [make_history(f"/f{i}", changes=(days(2 + i),))
             for i in range(8)]
        )
        requests = sorted(
            (days(0.5 * k + 0.25), f"/f{k % 8}") for k in range(70)
        )
        ages = []
        for percent in (20, 100):
            result = simulate(
                server, AlexProtocol.from_percent(percent), requests,
                SimulatorMode.OPTIMIZED, end_time=days(40),
            )
            assert result.counters.stale_hits > 0
            ages.append(result.counters.mean_stale_age)
        assert ages[1] > ages[0]
