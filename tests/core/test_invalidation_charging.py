"""Section 4.1 invalidation charging: flag semantics + hierarchy parity.

The paper says "the invalidation protocol sends an invalidation message
every time that a file changes" — the ``charge_per_modification`` flag
makes that reading explicit, and ``False`` gives the transition-only
accounting a holder-tracking server (the hierarchy) would do.  These are
the regression tests for routing the single-cache delivery loop through
:meth:`Cache.invalidate`: both paths must agree on the same feed.
"""

import pytest

from repro.core.clock import days
from repro.core.hierarchy import drive_workload
from repro.core.metrics import INVALIDATION
from repro.core.protocols import InvalidationProtocol
from repro.core.server import OriginServer
from repro.core.simulator import simulate
from tests.conftest import make_history


def burst_server() -> OriginServer:
    """One object, three modifications between the two requests."""
    return OriginServer(
        [make_history("/hot", size=1000,
                      changes=(days(1), days(2), days(3)))]
    )


REQUESTS = [(days(0.5), "/hot"), (days(4), "/hot")]


class TestChargePerModification:
    def test_true_charges_every_modification_of_resident_entry(self):
        result = simulate(
            burst_server(), InvalidationProtocol(), REQUESTS,
            charge_per_modification=True,
        )
        assert result.counters.invalidations_received == 3
        assert result.bandwidth.exchanges[INVALIDATION] == 3

    def test_false_charges_only_valid_to_invalid_transitions(self):
        result = simulate(
            burst_server(), InvalidationProtocol(), REQUESTS,
            charge_per_modification=False,
        )
        # The day-1 change flips the preloaded valid entry; days 2-3 find
        # it already invalid and go uncharged.
        assert result.counters.invalidations_received == 1
        assert result.bandwidth.exchanges[INVALIDATION] == 1

    def test_revalidation_rearms_transition_charging(self):
        requests = [
            (days(0.5), "/hot"), (days(1.5), "/hot"), (days(4), "/hot")
        ]
        result = simulate(
            burst_server(), InvalidationProtocol(), requests,
            charge_per_modification=False,
        )
        # Day 1 flips valid→invalid (charged); the day-1.5 request
        # revalidates; day 2 flips again (charged); day 3 is uncharged.
        assert result.counters.invalidations_received == 2

    def test_non_resident_modifications_never_charged(self):
        server = OriginServer(
            [
                make_history("/seen", size=100, changes=(days(1),)),
                make_history("/ghost", size=100,
                             changes=(days(1), days(2))),
            ]
        )
        result = simulate(
            server, InvalidationProtocol(),
            [(days(0.5), "/seen"), (days(3), "/seen")],
            preload=False, charge_per_modification=True,
        )
        # /ghost was never fetched, so its two changes cost nothing even
        # under per-modification charging.
        assert result.counters.invalidations_received == 1

    def test_entry_state_identical_under_both_policies(self):
        """The flag changes accounting only — never cache state."""
        for flag in (True, False):
            result = simulate(
                burst_server(), InvalidationProtocol(), REQUESTS,
                charge_per_modification=flag,
            )
            # Day-4 request always finds the entry invalid → validates.
            assert result.counters.validations == 1
            assert result.counters.stale_hits == 0


class TestHierarchyParity:
    """Single cache and hierarchy root must account the same feed alike."""

    def _server(self) -> OriginServer:
        # Bursts of changes between requests make the two §4.1 policies
        # actually disagree (three notices vs one for the day-1 burst).
        return OriginServer(
            [
                make_history("/a", size=1000,
                             changes=(days(1), days(1.2), days(1.4),
                                      days(3))),
                make_history("/b", size=2000,
                             changes=(days(2), days(2.1))),
            ]
        )

    def _requests(self) -> list[tuple[float, str]]:
        return sorted(
            (days(d), oid)
            for d in (0.5, 1.5, 2.5, 3.5, 4.5, 5.5)
            for oid in ("/a", "/b")
        )

    @pytest.mark.parametrize("per_modification", [True, False])
    def test_root_link_matches_single_cache(self, per_modification):
        single = simulate(
            self._server(), InvalidationProtocol(), self._requests(),
            end_time=days(7), charge_per_modification=per_modification,
        )
        sim = drive_workload(
            self._server(), InvalidationProtocol, self._requests(),
            fan_out=1, deliver_invalidations=True,
            charge_per_modification=per_modification, end_time=days(7),
        )
        # With one leaf, every request drives the root exactly like the
        # flattened model drives its one cache, so the origin→root notice
        # accounting must match the single-cache ledger on the same feed.
        assert (
            sim.root.uplink.exchanges[INVALIDATION]
            == single.bandwidth.exchanges[INVALIDATION]
        )
        assert (
            sim.root.counters.invalidations_received
            == single.counters.invalidations_received
        )

    def test_policies_differ_on_repeat_modifications(self):
        """Sanity: the two policies disagree on this feed (so the parity
        test above is not vacuous)."""
        per_mod = drive_workload(
            self._server(), InvalidationProtocol, self._requests(),
            fan_out=1, deliver_invalidations=True,
            charge_per_modification=True, end_time=days(7),
        )
        transition = drive_workload(
            self._server(), InvalidationProtocol, self._requests(),
            fan_out=1, deliver_invalidations=True,
            charge_per_modification=False, end_time=days(7),
        )
        assert (
            per_mod.root.uplink.exchanges[INVALIDATION]
            > transition.root.uplink.exchanges[INVALIDATION]
        )
