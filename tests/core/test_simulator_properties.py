"""Property-based tests: simulator invariants over random workloads."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DAY, days, hours
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate

DURATION = 20 * DAY


@st.composite
def small_workloads(draw):
    """A tiny random population plus a time-ordered request stream."""
    n_files = draw(st.integers(min_value=1, max_value=6))
    histories = []
    for i in range(n_files):
        created = -draw(st.floats(min_value=1.0, max_value=100.0)) * DAY
        n_changes = draw(st.integers(min_value=0, max_value=8))
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.01 * DAY, max_value=DURATION),
                    min_size=n_changes, max_size=n_changes, unique=True,
                )
            )
        )
        size = draw(st.integers(min_value=64, max_value=50_000))
        histories.append(
            ObjectHistory(
                WebObject(f"/f{i}", size=size, created=created),
                ModificationSchedule(created, times),
            )
        )
    n_requests = draw(st.integers(min_value=0, max_value=60))
    raw = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=DURATION),
                st.integers(min_value=0, max_value=n_files - 1),
            ),
            min_size=n_requests, max_size=n_requests,
        )
    )
    requests = sorted(
        (t, histories[i].object_id) for t, i in raw
    )
    return histories, requests


def protocols():
    return st.sampled_from(
        [
            lambda: TTLProtocol(hours(0)),
            lambda: TTLProtocol(hours(24)),
            lambda: TTLProtocol(hours(500)),
            lambda: AlexProtocol.from_percent(0),
            lambda: AlexProtocol.from_percent(10),
            lambda: AlexProtocol.from_percent(100),
            InvalidationProtocol,
        ]
    )


@settings(max_examples=60, deadline=None)
@given(workload=small_workloads(), make_protocol=protocols(),
       mode=st.sampled_from(list(SimulatorMode)))
def test_counter_invariants(workload, make_protocol, mode):
    """Bookkeeping identities hold for every protocol/mode/workload."""
    histories, requests = workload
    server = OriginServer(histories)
    result = simulate(server, make_protocol(), requests, mode,
                      end_time=DURATION)
    c = result.counters
    c.check_invariants()
    assert c.requests == len(requests)
    assert result.bandwidth.total_bytes >= 0
    # Every body transfer is a miss and vice versa.
    body_events = (
        result.bandwidth.exchanges["full_retrieval"]
        + result.bandwidth.exchanges["validation_200"]
    )
    assert body_events == c.misses


@settings(max_examples=40, deadline=None)
@given(workload=small_workloads(), mode=st.sampled_from(list(SimulatorMode)))
def test_invalidation_protocol_is_perfectly_consistent(workload, mode):
    """The invalidation protocol never serves stale data (Figure 3/7)."""
    histories, requests = workload
    server = OriginServer(histories)
    result = simulate(server, InvalidationProtocol(), requests, mode,
                      end_time=DURATION)
    assert result.counters.stale_hits == 0
    # One notice per in-window change of a resident (preloaded) object.
    assert result.counters.server_invalidations_sent == sum(
        h.schedule.changes_in(0.0, DURATION) for h in histories
    )


@settings(max_examples=40, deadline=None)
@given(workload=small_workloads())
def test_weak_protocols_never_transfer_more_bodies_than_invalidation(workload):
    """Section 4.1: "neither Alex nor TTL will ever transmit more file
    information than the invalidation protocol" (optimized mode)."""
    histories, requests = workload
    server = OriginServer(histories)
    inval = simulate(server, InvalidationProtocol(), requests,
                     SimulatorMode.OPTIMIZED, end_time=DURATION)
    for proto in (TTLProtocol(hours(24)), AlexProtocol.from_percent(20)):
        weak = simulate(server, proto, requests, SimulatorMode.OPTIMIZED,
                        end_time=DURATION)
        assert (
            weak.bandwidth.total_body_bytes
            <= inval.bandwidth.total_body_bytes
        )


@settings(max_examples=40, deadline=None)
@given(workload=small_workloads())
def test_poll_every_request_never_stale(workload):
    """Alex(0) queries on every request, so it can never return stale
    data — the Figure 8 "poorly designed servers" configuration."""
    histories, requests = workload
    server = OriginServer(histories)
    result = simulate(server, AlexProtocol.from_percent(0), requests,
                      SimulatorMode.OPTIMIZED, end_time=DURATION)
    assert result.counters.stale_hits == 0
    assert result.counters.validations + result.counters.full_retrievals >= (
        len(requests)
    )


@settings(max_examples=30, deadline=None)
@given(workload=small_workloads(),
       ttl_pair=st.tuples(st.integers(0, 500), st.integers(0, 500)))
def test_base_mode_bandwidth_monotone_in_ttl(workload, ttl_pair):
    """In base mode a longer TTL can only reduce total traffic (fewer
    unconditional refetches of identical content)."""
    histories, requests = workload
    server = OriginServer(histories)
    lo, hi = sorted(ttl_pair)
    result_lo = simulate(server, TTLProtocol(hours(lo)), requests,
                         SimulatorMode.BASE, end_time=DURATION)
    result_hi = simulate(server, TTLProtocol(hours(hi)), requests,
                         SimulatorMode.BASE, end_time=DURATION)
    assert result_hi.bandwidth.total_bytes <= result_lo.bandwidth.total_bytes


@settings(max_examples=30, deadline=None)
@given(workload=small_workloads(), percent=st.integers(0, 100))
def test_optimized_never_costs_more_than_base(workload, percent):
    """Conditional retrieval is a pure bandwidth optimization for any
    time-based protocol parameter (Figure 2 vs Figure 4)."""
    histories, requests = workload
    server = OriginServer(histories)
    base = simulate(server, AlexProtocol.from_percent(percent), requests,
                    SimulatorMode.BASE, end_time=DURATION)
    opt = simulate(server, AlexProtocol.from_percent(percent), requests,
                   SimulatorMode.OPTIMIZED, end_time=DURATION)
    assert opt.bandwidth.total_bytes <= base.bandwidth.total_bytes
    # And it never changes what the user sees: stale counts match.
    assert opt.counters.stale_hits == base.counters.stale_hits


@settings(max_examples=30, deadline=None)
@given(workload=small_workloads(), seed=st.integers(0, 10))
def test_simulation_is_deterministic(workload, seed):
    """Same inputs, same outputs — byte for byte."""
    del seed
    histories, requests = workload
    server = OriginServer(histories)
    a = simulate(server, AlexProtocol.from_percent(15), requests,
                 SimulatorMode.OPTIMIZED, end_time=DURATION)
    b = simulate(server, AlexProtocol.from_percent(15), requests,
                 SimulatorMode.OPTIMIZED, end_time=DURATION)
    assert a.summary() == b.summary()
    assert a.bandwidth.total_bytes == b.bandwidth.total_bytes
