"""The single-cache simulator: exact accounting on hand-computed scenarios."""

import pytest

from repro.core.cache import Cache
from repro.core.clock import days, hours
from repro.core.costs import MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import Simulation, SimulatorMode, simulate
from tests.conftest import make_history

BODY = 1000           # size of /hot in the changing_server fixture
MSG = 43


class TestBaseMode:
    def test_fresh_hit_costs_nothing(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(hours(1), "/cold")], SimulatorMode.BASE,
        )
        assert result.counters.hits == 1
        assert result.bandwidth.total_bytes == 0

    def test_expired_entry_refetched_unconditionally(self, changing_server):
        # /cold never changes, but base mode refetches the body anyway.
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(hours(20), "/cold")], SimulatorMode.BASE,
        )
        assert result.counters.misses == 1
        assert result.counters.full_retrievals == 1
        # Two control messages + a 4000-byte body (fixture /cold size).
        assert result.bandwidth.total_bytes == 2 * MSG + 4000

    def test_miss_counts_refetch_of_unchanged_file(self, changing_server):
        # The base-mode hallmark (Figure 3's terrible miss rates).
        result = simulate(
            changing_server, TTLProtocol(hours(1)),
            [(hours(2 * i), "/cold") for i in range(1, 6)],
            SimulatorMode.BASE,
        )
        assert result.counters.misses == 5

    def test_refetch_resets_freshness_window(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(hours(20), "/cold"), (hours(25), "/cold")],
            SimulatorMode.BASE,
        )
        assert result.counters.misses == 1
        assert result.counters.hits == 1


class TestOptimizedMode:
    def test_expired_unchanged_entry_validates_304(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(hours(20), "/cold")], SimulatorMode.OPTIMIZED,
        )
        counters = result.counters
        assert counters.validations == 1
        assert counters.validations_not_modified == 1
        assert counters.misses == 0
        assert counters.hits == 1
        assert result.bandwidth.total_bytes == 2 * MSG

    def test_expired_changed_entry_transfers_body(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(days(12), "/warm")], SimulatorMode.OPTIMIZED,
        )
        counters = result.counters
        assert counters.validations == 1
        assert counters.validations_not_modified == 0
        assert counters.misses == 1
        assert result.bandwidth.total_bytes == 2 * MSG + 2000

    def test_304_resets_freshness_window(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(hours(20), "/cold"), (hours(25), "/cold")],
            SimulatorMode.OPTIMIZED,
        )
        assert result.counters.validations == 1
        assert result.counters.hits == 2

    def test_validation_updates_last_modified_for_alex(self, changing_server):
        # Threshold 1% of a 30-day preload age = ~7 hours of validity, so
        # the day-2.5 request must revalidate (changes landed at days 1, 2).
        sim = Simulation(
            changing_server, AlexProtocol.from_percent(1),
            SimulatorMode.OPTIMIZED,
        )
        sim.step(days(2.5), "/hot")
        entry = sim.cache.peek("/hot")
        assert entry.last_modified == days(2)
        assert entry.validated_at == days(2.5)


class TestStaleHits:
    def test_stale_hit_detected(self, changing_server):
        # /warm changes at day 10; TTL 500h (~21d) keeps the preload fresh.
        result = simulate(
            changing_server, TTLProtocol(hours(500)),
            [(days(11), "/warm")], SimulatorMode.OPTIMIZED,
        )
        assert result.counters.hits == 1
        assert result.counters.stale_hits == 1

    def test_current_hit_not_stale(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(500)),
            [(days(9), "/warm")], SimulatorMode.OPTIMIZED,
        )
        assert result.counters.stale_hits == 0

    def test_stale_never_exceeds_hits(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(500)),
            [(days(d), "/hot") for d in range(1, 20)],
            SimulatorMode.OPTIMIZED,
        )
        assert result.counters.stale_hits <= result.counters.hits


class TestInvalidationProtocol:
    def test_callback_charged_per_change(self, changing_server):
        result = simulate(
            changing_server, InvalidationProtocol(),
            [], SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        # /hot changes 3 times, /warm once: 4 notices, no bodies.
        assert result.counters.server_invalidations_sent == 4
        assert result.bandwidth.total_bytes == 4 * MSG

    def test_notice_sent_even_when_already_invalid(self, changing_server):
        # Section 4.1: a message is sent every time a file changes.
        result = simulate(
            changing_server, InvalidationProtocol(),
            [(days(20), "/hot")], SimulatorMode.OPTIMIZED,
            end_time=days(30),
        )
        assert result.counters.server_invalidations_sent == 4

    def test_invalid_entry_refetched_on_access(self, changing_server):
        result = simulate(
            changing_server, InvalidationProtocol(),
            [(days(1.5), "/hot")], SimulatorMode.OPTIMIZED,
            end_time=days(1.5),
        )
        assert result.counters.misses == 1
        assert result.counters.stale_hits == 0

    def test_never_stale(self, changing_server):
        requests = [(days(0.1 + 0.2 * i), "/hot") for i in range(100)]
        result = simulate(
            changing_server, InvalidationProtocol(),
            requests, SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        assert result.counters.stale_hits == 0

    def test_same_time_change_and_access_not_stale(self):
        server = OriginServer([make_history("/f", changes=(days(1),))])
        result = simulate(
            server, InvalidationProtocol(),
            [(days(1), "/f")], SimulatorMode.OPTIMIZED,
        )
        assert result.counters.stale_hits == 0
        assert result.counters.misses == 1

    def test_base_and_optimized_equivalent(self, changing_server):
        requests = [(days(0.5 * i), "/hot") for i in range(1, 40)]
        results = [
            simulate(changing_server, InvalidationProtocol(), requests, mode,
                     end_time=days(30))
            for mode in (SimulatorMode.BASE, SimulatorMode.OPTIMIZED)
        ]
        assert results[0].counters.misses == results[1].counters.misses
        assert results[0].counters.stale_hits == results[1].counters.stale_hits


class TestColdCacheAndDynamic:
    def test_no_preload_first_access_misses(self, static_server):
        result = simulate(
            static_server, TTLProtocol(hours(10)),
            [(1.0, "/a"), (2.0, "/a")], SimulatorMode.OPTIMIZED,
            preload=False,
        )
        assert result.counters.misses == 1
        assert result.counters.hits == 1

    def test_dynamic_objects_always_fetched(self):
        server = OriginServer([make_history("/cgi", cacheable=False)])
        result = simulate(
            server, TTLProtocol(hours(100)),
            [(1.0, "/cgi"), (2.0, "/cgi")], SimulatorMode.OPTIMIZED,
        )
        assert result.counters.misses == 2
        assert result.counters.hits == 0


class TestMechanics:
    def test_out_of_order_requests_rejected(self, static_server):
        sim = Simulation(static_server, TTLProtocol(hours(1)))
        sim.step(10.0, "/a")
        with pytest.raises(ValueError, match="time-ordered"):
            sim.step(9.0, "/a")

    def test_end_time_before_last_request_rejected(self, static_server):
        sim = Simulation(static_server, TTLProtocol(hours(1)))
        sim.step(10.0, "/a")
        with pytest.raises(ValueError):
            sim.finish(end_time=5.0)

    def test_start_time_skips_pre_run_invalidations(self):
        server = OriginServer([make_history("/f", changes=(days(1),))])
        result = simulate(
            server, InvalidationProtocol(), [],
            SimulatorMode.OPTIMIZED, start_time=days(2), end_time=days(3),
        )
        assert result.counters.server_invalidations_sent == 0

    def test_custom_costs_respected(self, changing_server):
        result = simulate(
            changing_server, TTLProtocol(hours(10)),
            [(hours(20), "/cold")], SimulatorMode.OPTIMIZED,
            costs=MessageCosts(control_message=100),
        )
        assert result.bandwidth.total_bytes == 200

    def test_result_metadata(self, static_server):
        result = simulate(
            static_server, AlexProtocol.from_percent(25),
            [(5.0, "/a")], SimulatorMode.BASE, end_time=100.0,
        )
        assert result.protocol_name == "alex(25%)"
        assert result.mode == "base"
        assert result.duration == 100.0

    def test_reusing_supplied_cache(self, static_server):
        cache = Cache()
        simulate(static_server, TTLProtocol(hours(1)), [(1.0, "/a")],
                 cache=cache)
        assert "/a" in cache

    def test_invariants_hold_after_run(self, changing_server):
        result = simulate(
            changing_server, AlexProtocol.from_percent(10),
            [(days(0.3 * i), "/hot") for i in range(1, 50)],
            SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        result.counters.check_invariants()  # raises on violation


class TestExpiresRefreshOn304:
    """Regression: a 304 must re-stamp the Expires header.

    Without the refresh, an Expires-driven entry whose first window has
    lapsed revalidates on every subsequent request forever —
    ExpiresTTLProtocol degenerates into poll-every-request.
    """

    def _server(self) -> OriginServer:
        # Never modified, but stamped with a 600-second Expires window.
        return OriginServer(
            [make_history("/page", size=1000, expires_after=600.0)]
        )

    def test_refreshed_expires_restores_hits(self):
        # Preloaded at t=0 → Expires 600.  The t=1000 request validates
        # (304, new Expires 1600); t=1100 and t=1200 fall inside the
        # refreshed window and must be plain hits.  Pre-fix, all three
        # requests validated.
        result = simulate(
            self._server(), ExpiresTTLProtocol(hours(24)),
            [(1000.0, "/page"), (1100.0, "/page"), (1200.0, "/page")],
        )
        assert result.counters.validations == 1
        assert result.counters.validations_not_modified == 1
        assert result.counters.hits == 3  # the 304 itself counts as a hit

    def test_window_lapses_again_after_refresh(self):
        # The refreshed window is not immortal: a request past the new
        # Expires (1600) revalidates once more.
        result = simulate(
            self._server(), ExpiresTTLProtocol(hours(24)),
            [(1000.0, "/page"), (1100.0, "/page"), (2000.0, "/page")],
        )
        assert result.counters.validations == 2
