"""Cache replacement policies under capacity pressure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import Cache, CacheEntry
from repro.core.replacement import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    POLICIES,
    SizePolicy,
    make_policy,
)


def entry(oid, size=100):
    return CacheEntry(
        object_id=oid, version=0, size=size, file_type="html",
        fetched_at=0.0, validated_at=0.0, last_modified=-100.0,
    )


def bounded_cache(policy, capacity=250):
    return Cache(capacity_bytes=capacity, policy=policy)


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_case_insensitive(self):
        assert make_policy("LRU").name == "lru"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("random")

    def test_policy_without_capacity_rejected(self):
        with pytest.raises(ValueError, match="meaningless"):
            Cache(policy=LRUPolicy())


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = bounded_cache(LRUPolicy())
        cache.store(entry("/a"))
        cache.store(entry("/b"))
        cache.lookup("/a")
        cache.store(entry("/c"))
        assert "/b" not in cache
        assert "/a" in cache and "/c" in cache

    def test_matches_builtin_lru(self):
        """The pluggable LRU and the OrderedDict fast path agree."""
        pluggable = bounded_cache(LRUPolicy())
        builtin = Cache(capacity_bytes=250)
        ops = ["/a", "/b", "/a", "/c", "/d", "/b", "/e"]
        for oid in ops:
            for cache in (pluggable, builtin):
                if cache.lookup(oid) is None:
                    cache.store(entry(oid))
        assert {e.object_id for e in pluggable} == {
            e.object_id for e in builtin
        }


class TestFIFO:
    def test_ignores_accesses(self):
        cache = bounded_cache(FIFOPolicy())
        cache.store(entry("/a"))
        cache.store(entry("/b"))
        cache.lookup("/a")            # must NOT save /a
        cache.store(entry("/c"))
        assert "/a" not in cache
        assert "/b" in cache


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = bounded_cache(LFUPolicy())
        cache.store(entry("/a"))
        cache.store(entry("/b"))
        cache.lookup("/a")
        cache.lookup("/a")
        cache.lookup("/b")
        cache.store(entry("/c"))       # /b has fewer hits than /a
        assert "/b" not in cache
        assert "/a" in cache

    def test_tie_broken_by_recency(self):
        cache = bounded_cache(LFUPolicy())
        cache.store(entry("/a"))
        cache.store(entry("/b"))
        cache.lookup("/a")
        cache.lookup("/b")             # both count 1; /a older
        cache.store(entry("/c"))
        assert "/a" not in cache

    def test_counts_cleared_on_eviction(self):
        policy = LFUPolicy()
        cache = bounded_cache(policy)
        cache.store(entry("/a"))
        for _ in range(5):
            cache.lookup("/a")
        cache.drop("/a")
        cache.store(entry("/a"))       # re-inserted with zero count
        cache.store(entry("/b"))
        cache.lookup("/b")
        cache.store(entry("/c"))
        assert "/a" not in cache       # fresh /a lost its old frequency


class TestSize:
    def test_evicts_largest_first(self):
        cache = Cache(capacity_bytes=1000, policy=SizePolicy())
        cache.store(entry("/small", size=100))
        cache.store(entry("/big", size=700))
        cache.store(entry("/mid", size=300))   # overflow: /big goes
        assert "/big" not in cache
        assert "/small" in cache and "/mid" in cache

    def test_never_evicts_incoming_entry(self):
        cache = Cache(capacity_bytes=1000, policy=SizePolicy())
        cache.store(entry("/a", size=600))
        cache.store(entry("/huge", size=900))  # bigger than anything
        assert "/huge" in cache
        assert "/a" not in cache


@settings(max_examples=40, deadline=None)
@given(
    policy_name=st.sampled_from(sorted(POLICIES)),
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.integers(50, 400)),
        min_size=1, max_size=60,
    ),
)
def test_capacity_invariant_holds_for_every_policy(policy_name, ops):
    """Whatever the policy, the cache never exceeds its capacity and the
    just-stored entry is always resident."""
    cache = Cache(capacity_bytes=800, policy=make_policy(policy_name))
    for key, size in ops:
        oid = f"/f{key}"
        if cache.lookup(oid) is None:
            size = min(size, 800)
            cache.store(entry(oid, size=size))
            assert oid in cache
        assert cache.used_bytes <= 800
        assert cache.used_bytes == sum(e.size for e in cache)
