"""Time units and the monotonic simulation clock."""

import pytest

from repro.core.clock import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    SimClock,
    days,
    hours,
    minutes,
    seconds,
    to_days,
    to_hours,
)


class TestUnits:
    def test_constants_consistent(self):
        assert MINUTE == 60 * 1.0
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert MONTH == 30 * DAY

    def test_helpers(self):
        assert seconds(5) == 5.0
        assert minutes(2) == 120.0
        assert hours(2) == 7200.0
        assert days(1.5) == 1.5 * DAY

    def test_inverse_helpers(self):
        assert to_hours(hours(125)) == 125.0
        assert to_days(days(56)) == 56.0

    def test_paper_ttl_range(self):
        # Figures sweep TTL 0..500 hours; make the unit algebra explicit.
        assert to_days(hours(500)) == pytest.approx(20.833, abs=0.001)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance_to(10.0) == 10.0
        assert clock.now == 10.0

    def test_advance_to_same_time_ok(self):
        clock = SimClock(now=5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_backwards_rejected(self):
        clock = SimClock(now=10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.9)

    def test_elapsed(self):
        clock = SimClock(now=100.0)
        clock.advance_to(250.0)
        assert clock.elapsed == 150.0
