"""The hierarchical cache tree."""

import pytest

from repro.core.clock import days, hours
from repro.core.hierarchy import CacheNode, HierarchySimulation
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.server import OriginServer
from tests.conftest import make_history


def build_tree(protocol_factory):
    root = CacheNode("cache-2", protocol_factory())
    leaf_a = CacheNode("1a", protocol_factory(), parent=root)
    leaf_b = CacheNode("1b", protocol_factory(), parent=root)
    return root, leaf_a, leaf_b


class TestWiring:
    def test_children_tracked(self):
        root, leaf_a, leaf_b = build_tree(lambda: TTLProtocol(hours(1)))
        assert set(root.children) == {leaf_a, leaf_b}

    def test_depth(self):
        root, leaf_a, _ = build_tree(lambda: TTLProtocol(hours(1)))
        assert root.depth == 1
        assert leaf_a.depth == 2

    def test_attach_origin_only_at_root(self):
        root, leaf_a, _ = build_tree(lambda: TTLProtocol(hours(1)))
        with pytest.raises(ValueError):
            leaf_a.attach_origin(OriginServer([]))
        root.attach_origin(OriginServer([]))

    def test_unattached_root_raises_on_fetch(self):
        root = CacheNode("r", TTLProtocol(hours(1)))
        with pytest.raises(RuntimeError, match="no origin"):
            root.ensure_fresh("/x", 0.0)


class TestRequestFlow:
    def _sim(self, protocol_factory, histories, invalidations=False):
        server = OriginServer(histories)
        root, leaf_a, leaf_b = build_tree(protocol_factory)
        sim = HierarchySimulation(
            server, root, [leaf_a, leaf_b],
            deliver_invalidations=invalidations,
        )
        sim.preload(at=0.0)
        return sim, root, leaf_a, leaf_b

    def test_fresh_hit_no_traffic(self):
        sim, root, leaf_a, _ = self._sim(
            lambda: TTLProtocol(days(5)), [make_history("/f")]
        )
        stale = sim.request("1a", "/f", days(1))
        assert not stale
        assert sim.total_bytes() == 0

    def test_expiry_validates_through_parent_to_origin(self):
        sim, root, leaf_a, _ = self._sim(
            lambda: TTLProtocol(days(5)), [make_history("/f", size=100)]
        )
        sim.request("1a", "/f", days(6))
        # Both the leaf and the root validated (304): 86 bytes each link.
        assert leaf_a.uplink.total_bytes == 86
        assert root.uplink.total_bytes == 86
        assert root.counters.server_ims_queries == 1

    def test_parent_serves_without_origin_when_fresh(self):
        sim, root, leaf_a, leaf_b = self._sim(
            lambda: TTLProtocol(days(5)),
            [make_history("/f", size=100, changes=(days(1),))],
        )
        sim.request("1a", "/f", days(6))   # root revalidates: body down
        sim.request("1b", "/f", days(6.5))
        # 1b's validation is answered by the (now fresh) root copy.
        assert root.counters.server_ims_queries == 1
        assert leaf_b.uplink.total_bytes == 86 + 100

    def test_hierarchy_can_serve_stale_from_parent(self):
        sim, root, leaf_a, _ = self._sim(
            lambda: TTLProtocol(days(5)),
            [make_history("/f", changes=(days(2),))],
        )
        assert sim.request("1a", "/f", days(3)) is True

    def test_out_of_order_rejected(self):
        sim, *_ = self._sim(lambda: TTLProtocol(days(5)),
                            [make_history("/f")])
        sim.request("1a", "/f", days(2))
        with pytest.raises(ValueError):
            sim.request("1b", "/f", days(1))

    def test_unknown_leaf_rejected(self):
        sim, *_ = self._sim(lambda: TTLProtocol(days(5)),
                            [make_history("/f")])
        with pytest.raises(KeyError):
            sim.request("nope", "/f", days(1))


class TestInvalidationFanOut:
    def test_notices_flow_down_to_holders(self):
        server = OriginServer([make_history("/f", changes=(days(1),))])
        root, leaf_a, leaf_b = build_tree(InvalidationProtocol)
        sim = HierarchySimulation(server, root, [leaf_a, leaf_b],
                                  deliver_invalidations=True)
        sim.preload(at=0.0)
        sim.finish(days(2))
        # Origin->root, root->1a, root->1b: one notice each.
        assert root.uplink.exchanges["invalidation"] == 1
        assert leaf_a.uplink.exchanges["invalidation"] == 1
        assert leaf_b.uplink.exchanges["invalidation"] == 1
        assert not root.cache.peek("/f").valid
        assert not leaf_a.cache.peek("/f").valid

    def test_invalidation_never_stale(self):
        server = OriginServer(
            [make_history("/f", changes=(days(1), days(2), days(3)))]
        )
        root, leaf_a, leaf_b = build_tree(InvalidationProtocol)
        sim = HierarchySimulation(server, root, [leaf_a, leaf_b],
                                  deliver_invalidations=True)
        sim.preload(at=0.0)
        for i, t in enumerate((0.5, 1.5, 2.5, 3.5)):
            leaf = "1a" if i % 2 == 0 else "1b"
            assert sim.request(leaf, "/f", days(t)) is False

    def test_refetch_reregisters_for_callbacks(self):
        server = OriginServer(
            [make_history("/f", changes=(days(1), days(5)))]
        )
        root, leaf_a, leaf_b = build_tree(InvalidationProtocol)
        sim = HierarchySimulation(server, root, [leaf_a, leaf_b],
                                  deliver_invalidations=True)
        sim.preload(at=0.0)
        sim.request("1a", "/f", days(2))   # refetch after first change
        sim.finish(days(6))                # second change must notify again
        assert leaf_a.uplink.exchanges["invalidation"] == 2
        # 1b never refetched, so its registration was consumed at day 1.
        assert leaf_b.uplink.exchanges["invalidation"] == 1


class TestMetrics:
    def test_hop_weighted_bytes(self):
        server = OriginServer([make_history("/f", size=100)])
        root, leaf_a, leaf_b = build_tree(lambda: TTLProtocol(days(5)))
        sim = HierarchySimulation(server, root, [leaf_a, leaf_b])
        sim.preload(at=0.0)
        sim.request("1a", "/f", days(6))
        # Root link (depth 1): 86 bytes; leaf link (depth 2): 86 bytes.
        assert sim.total_bytes() == 172
        assert sim.hop_weighted_bytes() == 86 * 1 + 86 * 2

    def test_message_count(self):
        server = OriginServer([make_history("/f", size=100)])
        root, leaf_a, leaf_b = build_tree(lambda: TTLProtocol(days(5)))
        sim = HierarchySimulation(server, root, [leaf_a, leaf_b])
        sim.preload(at=0.0)
        sim.request("1a", "/f", days(6))
        assert sim.message_count() == 2  # one 304 exchange per link
