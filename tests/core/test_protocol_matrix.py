"""The full protocol x mode matrix over one standard workload.

Every protocol the library ships must run cleanly through both simulator
modes on a realistic workload, satisfy the counter invariants, and honor
its own consistency contract.  This is the compatibility gate a new
protocol implementation has to pass.
"""

import pytest

from repro.core.clock import hours
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.simulator import SimulatorMode, simulate
from repro.workload.campus import HCS, CampusWorkload

PROTOCOL_FACTORIES = [
    pytest.param(lambda: TTLProtocol(hours(125)), id="ttl"),
    pytest.param(lambda: ExpiresTTLProtocol(hours(125)), id="expires"),
    pytest.param(lambda: AlexProtocol.from_percent(10), id="alex"),
    pytest.param(lambda: InvalidationProtocol(), id="invalidation"),
    pytest.param(lambda: InvalidationProtocol(eager=True), id="inval-eager"),
    pytest.param(lambda: PollEveryRequestProtocol(), id="poll"),
    pytest.param(lambda: CERNPolicyProtocol(lm_fraction=0.1), id="cern"),
    pytest.param(lambda: SelfTuningProtocol(), id="selftuning"),
]

PERFECTLY_CONSISTENT = {"invalidation", "inval-eager", "poll"}


@pytest.fixture(scope="module")
def workload():
    return CampusWorkload(HCS, seed=77, request_scale=0.15).build()


@pytest.mark.parametrize("make_protocol", PROTOCOL_FACTORIES)
@pytest.mark.parametrize("mode", list(SimulatorMode), ids=lambda m: m.value)
def test_protocol_mode_matrix(make_protocol, mode, workload):
    protocol = make_protocol()
    result = simulate(
        workload.server(), protocol, workload.requests, mode,
        end_time=workload.duration,
    )
    counters = result.counters
    counters.check_invariants()
    assert counters.requests == len(workload.requests)
    assert result.bandwidth.total_bytes > 0

    name = protocol.name
    if any(tag in name for tag in ("invalidation", "poll")):
        assert counters.stale_hits == 0, name
    # Stale hits always come with positive stale-age accounting.
    if counters.stale_hits:
        assert counters.stale_age_sum > 0.0
    # Server load identity.
    assert counters.server_operations == (
        counters.server_gets
        + counters.server_ims_queries
        + counters.server_invalidations_sent
    )


@pytest.mark.parametrize("make_protocol", PROTOCOL_FACTORIES)
def test_optimized_never_more_bytes_than_base(make_protocol, workload):
    base = simulate(
        workload.server(), make_protocol(), workload.requests,
        SimulatorMode.BASE, end_time=workload.duration,
    )
    optimized = simulate(
        workload.server(), make_protocol(), workload.requests,
        SimulatorMode.OPTIMIZED, end_time=workload.duration,
    )
    assert (
        optimized.bandwidth.total_bytes <= base.bandwidth.total_bytes
    ), make_protocol().name


@pytest.mark.parametrize("make_protocol", PROTOCOL_FACTORIES)
def test_protocols_are_deterministic(make_protocol, workload):
    runs = [
        simulate(
            workload.server(), make_protocol(), workload.requests,
            SimulatorMode.OPTIMIZED, end_time=workload.duration,
        ).summary()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
