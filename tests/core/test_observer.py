"""The simulator's per-event observer hook."""

import pytest

from repro.core.clock import days, hours
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.server import OriginServer
from repro.core.simulator import Simulation, SimulatorMode
from tests.conftest import make_history


class Recorder:
    def __init__(self):
        self.events: list[tuple[str, float, str]] = []

    def __call__(self, kind: str, t: float, oid: str) -> None:
        self.events.append((kind, t, oid))

    def kinds(self) -> list[str]:
        return [kind for kind, _, _ in self.events]


def run(server, protocol, requests, mode=SimulatorMode.OPTIMIZED,
        end_time=None):
    recorder = Recorder()
    sim = Simulation(server, protocol, mode, observer=recorder)
    for t, oid in requests:
        sim.step(t, oid)
    sim.finish(end_time)
    return recorder, sim


class TestObserverEvents:
    def test_hit_and_stale_hit(self, changing_server):
        recorder, _ = run(
            changing_server, TTLProtocol(hours(500)),
            [(days(1), "/cold"), (days(11), "/warm")],
        )
        assert recorder.kinds() == ["hit", "stale_hit"]

    def test_validation_events(self, changing_server):
        recorder, _ = run(
            changing_server, TTLProtocol(hours(10)),
            [(days(2), "/cold"), (days(12), "/warm")],
        )
        assert recorder.kinds() == ["validation_304", "validation_200"]

    def test_miss_on_base_mode_refetch(self, changing_server):
        recorder, _ = run(
            changing_server, TTLProtocol(hours(10)),
            [(days(2), "/cold")], mode=SimulatorMode.BASE,
        )
        assert recorder.kinds() == ["miss"]

    def test_invalidation_and_prefetch_events(self, changing_server):
        recorder, _ = run(
            changing_server, InvalidationProtocol(eager=True),
            [], end_time=days(30),
        )
        kinds = recorder.kinds()
        assert kinds.count("invalidation") == 4
        assert kinds.count("prefetch") == 4
        # Notices precede their pushes, pairwise.
        assert kinds[0] == "invalidation" and kinds[1] == "prefetch"

    def test_dynamic_fetch_event(self):
        server = OriginServer([make_history("/cgi", cacheable=False)])
        recorder, _ = run(server, TTLProtocol(hours(1)), [(1.0, "/cgi")])
        assert recorder.kinds() == ["dynamic_fetch"]

    def test_event_times_and_ids(self, changing_server):
        recorder, _ = run(
            changing_server, TTLProtocol(hours(500)),
            [(days(11), "/warm")],
        )
        kind, t, oid = recorder.events[0]
        assert (kind, t, oid) == ("stale_hit", days(11), "/warm")

    def test_events_match_counters(self, changing_server):
        requests = [(days(0.3 * i), "/hot") for i in range(1, 60)]
        recorder, sim = run(
            changing_server, TTLProtocol(hours(24)), requests,
            end_time=days(30),
        )
        kinds = recorder.kinds()
        counters = sim.counters
        assert kinds.count("stale_hit") == counters.stale_hits
        assert kinds.count("validation_304") == counters.validations_not_modified
        assert (
            kinds.count("validation_200") + kinds.count("miss")
            == counters.misses
        )
        assert (
            kinds.count("hit") + kinds.count("stale_hit")
            + kinds.count("validation_304")
            == counters.hits
        )

    def test_no_observer_no_error(self, changing_server):
        sim = Simulation(changing_server, TTLProtocol(hours(1)))
        sim.step(days(1), "/cold")
        assert sim.finish().counters.requests == 1
