"""The consistency protocols: TTL, Expires, Alex, invalidation, polling,
CERN policy, and the self-tuning extension."""

import pytest

from repro.core.cache import CacheEntry
from repro.core.clock import DAY, days, hours
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)


def entry(validated_at=0.0, last_modified=-days(30), valid=True,
          server_expires=None, file_type="html") -> CacheEntry:
    return CacheEntry(
        object_id="/x", version=0, size=100, file_type=file_type,
        fetched_at=validated_at, validated_at=validated_at,
        last_modified=last_modified, valid=valid,
        server_expires=server_expires,
    )


class TestTTL:
    def test_fresh_within_window(self):
        ttl = TTLProtocol(hours(10))
        assert ttl.is_fresh(entry(validated_at=0.0), hours(9.9))

    def test_stale_at_window_boundary(self):
        ttl = TTLProtocol(hours(10))
        assert not ttl.is_fresh(entry(validated_at=0.0), hours(10))

    def test_zero_ttl_never_fresh(self):
        assert not TTLProtocol(0.0).is_fresh(entry(), 0.0)

    def test_window_restarts_at_validation(self):
        ttl = TTLProtocol(hours(10))
        e = entry(validated_at=hours(100))
        assert ttl.is_fresh(e, hours(105))

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            TTLProtocol(-1.0)

    def test_on_stored_stamps_expiry(self):
        ttl = TTLProtocol(hours(10))
        e = entry(validated_at=hours(5))
        ttl.on_stored(e, hours(5))
        assert e.expires_at == hours(15)

    def test_name_in_hours(self):
        assert TTLProtocol(hours(125)).name == "ttl(125h)"
        assert not TTLProtocol(hours(1)).wants_invalidations


class TestExpiresTTL:
    def test_server_expires_governs(self):
        proto = ExpiresTTLProtocol(hours(10))
        e = entry(server_expires=hours(2))
        assert proto.is_fresh(e, hours(1.9))
        assert not proto.is_fresh(e, hours(2.0))

    def test_falls_back_to_default(self):
        proto = ExpiresTTLProtocol(hours(10))
        assert proto.is_fresh(entry(), hours(9))

    def test_on_stored_prefers_server_expiry(self):
        proto = ExpiresTTLProtocol(hours(10))
        e = entry(server_expires=hours(2))
        proto.on_stored(e, 0.0)
        assert e.expires_at == hours(2)


class TestAlex:
    def test_paper_worked_example(self):
        # Age one month, threshold 10% -> three-day validity.
        alex = AlexProtocol.from_percent(10)
        e = entry(validated_at=0.0, last_modified=-days(30))
        assert alex.is_fresh(e, days(2.9))
        assert not alex.is_fresh(e, days(3.1))

    def test_validity_proportional_to_age(self):
        alex = AlexProtocol.from_percent(50)
        young = entry(last_modified=-days(2))
        old = entry(last_modified=-days(200))
        assert not alex.is_fresh(young, days(1.1))
        assert alex.is_fresh(old, days(99))

    def test_zero_threshold_never_fresh(self):
        assert not AlexProtocol(0.0).is_fresh(entry(), 1e-9)

    def test_zero_age_never_fresh(self):
        alex = AlexProtocol.from_percent(50)
        just_changed = entry(validated_at=10.0, last_modified=10.0)
        assert not alex.is_fresh(just_changed, 10.0 + 1e-9)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            AlexProtocol(-0.1)

    def test_percent_round_trip(self):
        assert AlexProtocol.from_percent(64).percent == pytest.approx(64.0)
        assert AlexProtocol.from_percent(10).name == "alex(10%)"

    def test_on_stored_stamps_expiry(self):
        alex = AlexProtocol.from_percent(10)
        e = entry(validated_at=days(1), last_modified=-days(29))
        alex.on_stored(e, days(1))
        assert e.expires_at == pytest.approx(days(1) + 0.1 * days(30))


class TestInvalidation:
    def test_fresh_while_valid(self):
        proto = InvalidationProtocol()
        assert proto.is_fresh(entry(valid=True), 1e12)

    def test_stale_after_callback(self):
        proto = InvalidationProtocol()
        assert not proto.is_fresh(entry(valid=False), 0.0)

    def test_declares_callback_need(self):
        assert InvalidationProtocol().wants_invalidations
        assert InvalidationProtocol().name == "invalidation"


class TestPolling:
    def test_never_fresh(self):
        proto = PollEveryRequestProtocol()
        assert not proto.is_fresh(entry(), 0.0)
        assert not proto.wants_invalidations


class TestCERNPolicy:
    def test_expires_header_wins(self):
        proto = CERNPolicyProtocol(lm_fraction=0.1, default_ttl=hours(1))
        e = entry(server_expires=hours(3))
        proto.on_stored(e, 0.0)
        assert e.expires_at == hours(3)

    def test_lm_fraction_rule(self):
        proto = CERNPolicyProtocol(lm_fraction=0.1)
        e = entry(last_modified=-days(30))
        proto.on_stored(e, 0.0)
        assert e.expires_at == pytest.approx(days(3))
        assert proto.is_fresh(e, days(2.9))
        assert not proto.is_fresh(e, days(3.1))

    def test_default_ttl_when_no_age(self):
        proto = CERNPolicyProtocol(default_ttl=hours(12))
        e = entry(validated_at=5.0, last_modified=5.0)
        proto.on_stored(e, 5.0)
        assert e.expires_at == 5.0 + hours(12)

    def test_max_ttl_clamps(self):
        proto = CERNPolicyProtocol(lm_fraction=0.5, max_ttl=hours(1))
        e = entry(last_modified=-days(100))
        proto.on_stored(e, 0.0)
        assert e.expires_at == hours(1)

    def test_is_fresh_derives_for_preloaded_entries(self):
        proto = CERNPolicyProtocol(lm_fraction=0.1)
        e = entry(last_modified=-days(30))   # no expires_at stamped
        assert proto.is_fresh(e, days(1))
        assert e.expires_at is not None

    @pytest.mark.parametrize(
        "kwargs", [dict(lm_fraction=-1), dict(default_ttl=-1),
                   dict(max_ttl=-1)]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CERNPolicyProtocol(**kwargs)


class TestSelfTuning:
    def test_starts_at_initial_threshold(self):
        proto = SelfTuningProtocol(initial_threshold=0.2)
        assert proto.threshold_for("gif") == 0.2

    def test_304_raises_threshold(self):
        proto = SelfTuningProtocol(initial_threshold=0.1, increase_factor=2.0)
        proto.on_validation_result(entry(file_type="gif"), 0.0,
                                   was_modified=False)
        assert proto.threshold_for("gif") == pytest.approx(0.2)

    def test_change_lowers_threshold(self):
        proto = SelfTuningProtocol(initial_threshold=0.2, decrease_factor=0.5)
        proto.on_validation_result(entry(file_type="html"), 0.0,
                                   was_modified=True)
        assert proto.threshold_for("html") == pytest.approx(0.1)

    def test_clamped_to_bounds(self):
        proto = SelfTuningProtocol(
            initial_threshold=0.5, min_threshold=0.4, max_threshold=0.6
        )
        for _ in range(10):
            proto.on_validation_result(entry(), 0.0, was_modified=True)
        assert proto.threshold_for("html") == 0.4
        for _ in range(10):
            proto.on_validation_result(entry(), 0.0, was_modified=False)
        assert proto.threshold_for("html") == 0.6

    def test_types_tuned_independently(self):
        proto = SelfTuningProtocol()
        proto.on_validation_result(entry(file_type="gif"), 0.0, False)
        assert proto.threshold_for("gif") != proto.threshold_for("html")

    def test_freshness_uses_per_type_threshold(self):
        proto = SelfTuningProtocol(initial_threshold=0.1)
        e = entry(last_modified=-days(30))
        assert proto.is_fresh(e, days(2.9))
        assert not proto.is_fresh(e, days(3.1))

    def test_history_recorded(self):
        proto = SelfTuningProtocol()
        proto.on_validation_result(entry(file_type="gif"), 0.0, True)
        proto.on_validation_result(entry(file_type="gif"), 0.0, False)
        assert proto.history["gif"] == [1, 1]

    def test_snapshot(self):
        proto = SelfTuningProtocol()
        assert proto.snapshot() == {}
        proto.on_validation_result(entry(file_type="jpg"), 0.0, False)
        assert "jpg" in proto.snapshot()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_threshold=0.0),
            dict(min_threshold=0.5, max_threshold=0.4),
            dict(initial_threshold=2.0),
            dict(increase_factor=0.9),
            dict(decrease_factor=0.0),
            dict(decrease_factor=1.5),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SelfTuningProtocol(**kwargs)
