"""The origin server model."""

import pytest

from repro.core.clock import days
from repro.core.server import (
    FetchResult,
    NotModified,
    OriginServer,
    UnknownObjectError,
)
from tests.conftest import make_history


class TestPopulation:
    def test_len_and_contains(self, static_server):
        assert len(static_server) == 3
        assert "/a" in static_server
        assert "/missing" not in static_server

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            OriginServer([make_history("/a"), make_history("/a")])

    def test_unknown_object_error(self, static_server):
        with pytest.raises(UnknownObjectError):
            static_server.get("/missing", 0.0)

    def test_object_and_schedule_accessors(self, changing_server):
        assert changing_server.object("/hot").size == 1000
        assert changing_server.schedule("/hot").total_changes == 3

    def test_total_changes_in_window(self, changing_server):
        assert changing_server.total_changes(0.0, days(30)) == 4
        assert changing_server.total_changes(0.0, days(5)) == 3
        assert changing_server.total_changes(days(3), days(30)) == 1


class TestGet:
    def test_returns_current_version(self, changing_server):
        before = changing_server.get("/hot", days(0.5))
        after = changing_server.get("/hot", days(1.5))
        assert before.version == 0
        assert after.version == 1
        assert after.last_modified == days(1)
        assert after.size == 1000

    def test_expires_attached_when_configured(self):
        server = OriginServer([make_history("/news", expires_after=3600.0)])
        result = server.get("/news", 100.0)
        assert result.expires == 3700.0

    def test_no_expires_by_default(self, static_server):
        assert static_server.get("/a", 0.0).expires is None


class TestIfModifiedSince:
    def test_not_modified_returns_304(self, changing_server):
        result = changing_server.if_modified_since(
            "/cold", days(20), since=-days(30)
        )
        assert isinstance(result, NotModified)
        assert result.expires is None

    def test_modified_returns_fetch(self, changing_server):
        result = changing_server.if_modified_since(
            "/warm", days(15), since=-days(30)
        )
        assert isinstance(result, FetchResult)
        assert result.version == 1
        assert result.last_modified == days(10)

    def test_boundary_equal_since_is_not_modified(self, changing_server):
        # IMS with since == last-modified means "unchanged".
        assert isinstance(
            changing_server.if_modified_since("/warm", days(15), since=days(10)),
            NotModified,
        )

    def test_304_carries_refreshed_expires(self):
        # The regression behind the ExpiresTTL degeneration: a 304 must
        # re-stamp Expires, not leave the cache on its first lapsed one.
        server = OriginServer([make_history("/news", expires_after=3600.0)])
        result = server.if_modified_since("/news", 10_000.0, since=0.0)
        assert isinstance(result, NotModified)
        assert result.expires == 13_600.0


class TestInvalidationFeed:
    def test_feed_is_time_ordered(self, changing_server):
        feed = changing_server.invalidation_feed()
        times = [t for t, _ in feed]
        assert times == sorted(times)
        assert len(feed) == 4

    def test_feed_cached(self, changing_server):
        assert changing_server.invalidation_feed() is (
            changing_server.invalidation_feed()
        )

    def test_feed_between(self, changing_server):
        window = list(changing_server.feed_between(days(1), days(3)))
        # (days(1), days(3)] excludes the day-1 change, includes 2 and 3.
        assert [oid for _, oid in window] == ["/hot", "/hot"]

    def test_feed_between_empty_range(self, changing_server):
        assert list(changing_server.feed_between(days(20), days(30))) == []
