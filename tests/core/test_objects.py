"""Web objects and modification schedules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject


class TestWebObject:
    def test_defaults(self):
        obj = WebObject("/x", size=100)
        assert obj.file_type == "html"
        assert obj.cacheable
        assert obj.expires_after is None

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            WebObject("", size=100)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WebObject("/x", size=-1)

    def test_frozen(self):
        obj = WebObject("/x", size=100)
        with pytest.raises(AttributeError):
            obj.size = 200


class TestModificationSchedule:
    def test_empty_schedule(self):
        sched = ModificationSchedule(created=-100.0)
        assert sched.total_changes == 0
        assert sched.version_at(0.0) == 0
        assert sched.last_modified_at(0.0) == -100.0

    def test_versions_increment_at_change_times(self):
        sched = ModificationSchedule(0.0, [10.0, 20.0, 30.0])
        assert sched.version_at(5.0) == 0
        assert sched.version_at(10.0) == 1   # visible at exactly t
        assert sched.version_at(15.0) == 1
        assert sched.version_at(30.0) == 3
        assert sched.version_at(1e9) == 3

    def test_last_modified_tracks_versions(self):
        sched = ModificationSchedule(0.0, [10.0, 20.0])
        assert sched.last_modified_at(5.0) == 0.0
        assert sched.last_modified_at(10.0) == 10.0
        assert sched.last_modified_at(25.0) == 20.0

    def test_times_sorted_on_ingest(self):
        sched = ModificationSchedule(0.0, [30.0, 10.0, 20.0])
        assert sched.times == (10.0, 20.0, 30.0)

    def test_change_before_creation_rejected(self):
        with pytest.raises(ValueError):
            ModificationSchedule(0.0, [-5.0])
        with pytest.raises(ValueError):
            ModificationSchedule(0.0, [0.0])  # must be strictly after

    def test_changes_in_half_open_interval(self):
        sched = ModificationSchedule(0.0, [10.0, 20.0, 30.0])
        assert sched.changes_in(0.0, 30.0) == 3
        assert sched.changes_in(10.0, 20.0) == 1  # (10, 20] excludes 10
        assert sched.changes_in(30.0, 40.0) == 0

    def test_changes_in_rejects_inverted_interval(self):
        sched = ModificationSchedule(0.0)
        with pytest.raises(ValueError):
            sched.changes_in(10.0, 5.0)

    def test_next_change_after(self):
        sched = ModificationSchedule(0.0, [10.0, 20.0])
        assert sched.next_change_after(5.0) == 10.0
        assert sched.next_change_after(10.0) == 20.0
        assert sched.next_change_after(20.0) is None

    def test_age_at(self):
        sched = ModificationSchedule(-100.0, [50.0])
        assert sched.age_at(0.0) == 100.0
        assert sched.age_at(60.0) == 10.0

    def test_repr(self):
        assert "changes=2" in repr(ModificationSchedule(0.0, [1.0, 2.0]))


class TestObjectHistory:
    def test_default_schedule_from_object(self):
        history = ObjectHistory(WebObject("/x", size=10, created=-5.0))
        assert history.schedule.created == -5.0
        assert history.schedule.total_changes == 0

    def test_mismatched_creation_rejected(self):
        obj = WebObject("/x", size=10, created=-5.0)
        with pytest.raises(ValueError):
            ObjectHistory(obj, ModificationSchedule(0.0))

    def test_object_id_passthrough(self):
        history = ObjectHistory(WebObject("/y", size=10))
        assert history.object_id == "/y"


@given(
    times=st.lists(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        max_size=50,
    ),
    probe=st.floats(min_value=-10.0, max_value=1.1e6, allow_nan=False),
)
def test_version_consistency_property(times, probe):
    """version_at(t) always equals the number of changes at or before t,
    and last_modified_at(t) <= t whenever version > 0."""
    sched = ModificationSchedule(0.0, times)
    version = sched.version_at(probe)
    assert version == sum(1 for t in sorted(times) if t <= probe)
    if version > 0:
        assert sched.last_modified_at(probe) <= probe
    else:
        assert sched.last_modified_at(probe) == 0.0
