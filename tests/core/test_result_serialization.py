"""JSON-compatible serialization of simulation results."""

import json

import pytest

from repro.core.clock import days, hours
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.results import result_from_dict, result_to_dict
from repro.core.simulator import SimulatorMode, simulate


@pytest.fixture
def result(changing_server):
    requests = [(days(0.4 * i), "/hot") for i in range(1, 50)]
    return simulate(
        changing_server, TTLProtocol(hours(50)), requests,
        SimulatorMode.OPTIMIZED, end_time=days(30),
    )


class TestRoundTrip:
    def test_dict_is_json_compatible(self, result):
        text = json.dumps(result_to_dict(result))
        assert "ttl(50h)" in text

    def test_round_trip_preserves_everything(self, result):
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert rebuilt.protocol_name == result.protocol_name
        assert rebuilt.mode == result.mode
        assert rebuilt.duration == result.duration
        assert rebuilt.summary() == result.summary()
        assert rebuilt.bandwidth.total_bytes == result.bandwidth.total_bytes
        assert (
            rebuilt.counters.mean_stale_age == result.counters.mean_stale_age
        )
        rebuilt.counters.check_invariants()

    def test_round_trip_with_invalidation_run(self, changing_server):
        original = simulate(
            changing_server, InvalidationProtocol(eager=True),
            [(days(5), "/hot")], SimulatorMode.OPTIMIZED, end_time=days(30),
        )
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.counters.prefetches == original.counters.prefetches
        assert (
            rebuilt.bandwidth.exchanges["prefetch"]
            == original.bandwidth.exchanges["prefetch"]
        )


class TestValidation:
    def test_unknown_counter_rejected(self, result):
        data = result_to_dict(result)
        data["counters"]["bogus"] = 1
        with pytest.raises(KeyError, match="bogus"):
            result_from_dict(data)

    def test_unknown_category_rejected(self, result):
        data = result_to_dict(result)
        data["bandwidth"]["exchanges"]["teleport"] = 1
        with pytest.raises(ValueError, match="teleport"):
            result_from_dict(data)

    def test_missing_fields_rejected(self):
        with pytest.raises(KeyError):
            result_from_dict({"protocol_name": "x"})
