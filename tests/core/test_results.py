"""Result containers, merging, and Figure-6-style averaging."""

import pytest

from repro.core.metrics import FULL_RETRIEVAL
from repro.core.results import SimulationResult, average_results, merge_results


def make_result(name="alex(10%)", mode="optimized", requests=10, misses=2,
                stale=1, body_bytes=1_000_000, ops=5) -> SimulationResult:
    result = SimulationResult(protocol_name=name, mode=mode)
    result.counters.requests = requests
    result.counters.misses = misses
    result.counters.hits = requests - misses
    result.counters.stale_hits = stale
    result.counters.server_gets = ops
    result.bandwidth.charge(FULL_RETRIEVAL, 0, body_bytes)
    result.duration = 100.0
    return result


class TestSimulationResult:
    def test_derived_metrics(self):
        result = make_result()
        assert result.total_megabytes == 1.0
        assert result.miss_rate == 0.2
        assert result.stale_hit_rate == 0.1
        assert result.server_operations == 5

    def test_summary_keys(self):
        summary = make_result().summary()
        assert set(summary) == {
            "total_mb", "miss_rate", "stale_hit_rate",
            "server_operations", "requests", "mean_round_trips",
        }


class TestMergeResults:
    def test_sums_counters_and_bytes(self):
        merged = merge_results([make_result(), make_result(requests=20,
                                                           misses=5)])
        assert merged.counters.requests == 30
        assert merged.counters.misses == 7
        assert merged.total_megabytes == 2.0

    def test_keeps_max_duration(self):
        a, b = make_result(), make_result()
        b.duration = 500.0
        assert merge_results([a, b]).duration == 500.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_results([])

    def test_mixed_protocols_rejected(self):
        with pytest.raises(ValueError):
            merge_results([make_result("alex(1%)"), make_result("ttl(5h)")])

    def test_mixed_modes_rejected(self):
        with pytest.raises(ValueError):
            merge_results([make_result(mode="base"),
                           make_result(mode="optimized")])


class TestAverageResults:
    def test_equal_weighting(self):
        avg = average_results(
            [make_result(body_bytes=1_000_000),
             make_result(body_bytes=3_000_000)]
        )
        assert avg["total_mb"] == 2.0

    def test_rates_averaged_as_rates(self):
        # 20% and 50% miss rates average to 35% regardless of volumes.
        a = make_result(requests=10, misses=2)
        b = make_result(requests=100, misses=50)
        avg = average_results([a, b])
        assert avg["miss_rate"] == pytest.approx(0.35)

    def test_single_result_identity(self):
        result = make_result()
        assert average_results([result]) == result.summary()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_results([])
