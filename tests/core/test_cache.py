"""The proxy cache: entries, preload, invalidation, LRU eviction."""

import pytest

from repro.core.cache import Cache, CacheEntry
from repro.core.clock import days
from repro.core.server import OriginServer
from tests.conftest import make_history


def entry(oid="/x", size=100, version=0, validated_at=0.0,
          last_modified=-days(10)) -> CacheEntry:
    return CacheEntry(
        object_id=oid, version=version, size=size, file_type="html",
        fetched_at=validated_at, validated_at=validated_at,
        last_modified=last_modified,
    )


class TestEntry:
    def test_age_measured_at_validation(self):
        e = entry(validated_at=days(5), last_modified=-days(25))
        assert e.age == days(30)

    def test_repr_mentions_state(self):
        assert "/x" in repr(entry())


class TestBasicOperations:
    def test_store_and_lookup(self):
        cache = Cache()
        cache.store(entry())
        found = cache.lookup("/x")
        assert found is not None and found.object_id == "/x"

    def test_lookup_missing_is_none(self):
        assert Cache().lookup("/nope") is None

    def test_contains_len_iter(self):
        cache = Cache()
        cache.store(entry("/a"))
        cache.store(entry("/b"))
        assert "/a" in cache and len(cache) == 2
        assert {e.object_id for e in cache} == {"/a", "/b"}

    def test_replace_updates_usage(self):
        cache = Cache()
        cache.store(entry(size=100))
        cache.store(entry(size=300))
        assert cache.used_bytes == 300
        assert len(cache) == 1

    def test_drop(self):
        cache = Cache()
        cache.store(entry())
        cache.drop("/x")
        assert "/x" not in cache
        assert cache.used_bytes == 0
        # Regression: drop() must count as an eviction, exactly like the
        # capacity path, so eviction statistics do not depend on which
        # code path removed the entry.
        assert cache.evictions == 1
        cache.drop("/x")  # idempotent — and no phantom eviction
        assert cache.evictions == 1


class TestInvalidate:
    def test_marks_invalid_returns_true(self):
        cache = Cache()
        cache.store(entry())
        assert cache.invalidate("/x") is True
        assert cache.peek("/x").valid is False

    def test_already_invalid_returns_false(self):
        cache = Cache()
        cache.store(entry())
        cache.invalidate("/x")
        assert cache.invalidate("/x") is False

    def test_absent_returns_false(self):
        assert Cache().invalidate("/ghost") is False

    def test_entry_stays_resident(self):
        cache = Cache()
        cache.store(entry())
        cache.invalidate("/x")
        assert "/x" in cache  # marked, not evicted (Worrell's optimization)


class TestGenerationGuard:
    """A callback for a superseded generation must not kill a fresh copy.

    The scenario (impossible under instant in-order delivery, routine
    under :mod:`repro.faults`): the entry was evicted and *refetched*
    after a modification, so its ``last_modified`` already reflects the
    change the late-arriving callback announces.
    """

    def test_superseded_callback_is_a_noop(self):
        cache = Cache()
        cache.store(entry(last_modified=50.0))  # refetched copy
        assert cache.invalidate("/x", modified_at=50.0) is False
        assert cache.invalidate("/x", modified_at=20.0) is False
        assert cache.peek("/x").valid is True

    def test_newer_generation_still_invalidates(self):
        cache = Cache()
        cache.store(entry(last_modified=50.0))
        assert cache.invalidate("/x", modified_at=60.0) is True
        assert cache.peek("/x").valid is False

    def test_no_timestamp_preserves_legacy_behaviour(self):
        cache = Cache()
        cache.store(entry(last_modified=50.0))
        assert cache.invalidate("/x") is True

    def test_evict_refetch_callback_round_trip(self):
        """The full sequence against a bounded cache."""
        cache = Cache(capacity_bytes=150)
        cache.store(entry("/a", size=100, last_modified=-days(10)))
        cache.store(entry("/b", size=100))         # evicts /a
        assert "/a" not in cache
        cache.store(entry("/a", size=100, last_modified=30.0))  # refetch
        # The delayed callback for the change at t=30 finally arrives.
        assert cache.invalidate("/a", modified_at=30.0) is False
        assert cache.peek("/a").valid is True


class TestClear:
    def test_clear_empties_and_returns_count(self):
        cache = Cache()
        cache.store(entry("/a"))
        cache.store(entry("/b", size=200))
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_clear_does_not_count_as_eviction(self):
        cache = Cache(capacity_bytes=1000)
        cache.store(entry("/a"))
        evictions_before = cache.evictions
        cache.clear()
        assert cache.evictions == evictions_before

    def test_cache_usable_after_clear(self):
        cache = Cache(capacity_bytes=150)
        cache.store(entry("/a", size=100))
        cache.clear()
        cache.store(entry("/b", size=100))
        cache.store(entry("/c", size=100))  # LRU still enforced
        assert "/b" not in cache and "/c" in cache


class TestCapacityAndLRU:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Cache(capacity_bytes=0)
        with pytest.raises(ValueError):
            Cache(capacity_bytes=-5)

    def test_evicts_least_recently_used(self):
        cache = Cache(capacity_bytes=250)
        cache.store(entry("/a", size=100))
        cache.store(entry("/b", size=100))
        cache.lookup("/a")                  # /a now more recent than /b
        cache.store(entry("/c", size=100))  # overflows: /b must go
        assert "/b" not in cache
        assert "/a" in cache and "/c" in cache
        assert cache.evictions == 1

    def test_oversized_entry_rejected(self):
        cache = Cache(capacity_bytes=100)
        with pytest.raises(ValueError, match="exceeds"):
            cache.store(entry(size=200))

    def test_unbounded_never_evicts(self):
        cache = Cache()
        for i in range(100):
            cache.store(entry(f"/f{i}", size=10_000))
        assert len(cache) == 100
        assert cache.evictions == 0

    def test_drop_counts_alongside_lru_evictions(self):
        # Both removal paths feed the same counter (bounded-LRU fast
        # path + explicit drop).
        cache = Cache(capacity_bytes=250)
        cache.store(entry("/a", size=100))
        cache.store(entry("/b", size=100))
        cache.store(entry("/c", size=100))  # LRU-evicts /a
        cache.drop("/b")
        assert cache.evictions == 2

    def test_peek_does_not_touch_lru(self):
        cache = Cache(capacity_bytes=250)
        cache.store(entry("/a", size=100))
        cache.store(entry("/b", size=100))
        cache.peek("/a")                    # must NOT refresh /a
        cache.store(entry("/c", size=100))
        assert "/a" not in cache


class TestPreload:
    def test_loads_all_cacheable(self):
        server = OriginServer(
            [
                make_history("/a"),
                make_history("/dyn", cacheable=False),
            ]
        )
        cache = Cache()
        assert cache.preload_from(server) == 1
        assert "/a" in cache and "/dyn" not in cache

    def test_preloaded_entries_carry_pretrace_age(self):
        server = OriginServer([make_history("/a", created=-days(40))])
        cache = Cache()
        cache.preload_from(server, at=0.0)
        e = cache.peek("/a")
        assert e.last_modified == -days(40)
        assert e.validated_at == 0.0
        assert e.age == days(40)
        assert e.valid

    def test_preload_respects_modifications_before_start(self):
        server = OriginServer(
            [make_history("/a", created=-days(40), changes=(days(2),))]
        )
        cache = Cache()
        cache.preload_from(server, at=days(5))
        e = cache.peek("/a")
        assert e.version == 1
        assert e.last_modified == days(2)
