"""Three-level hierarchies: deeper than the paper's topology."""

import pytest

from repro.core.clock import days, hours
from repro.core.hierarchy import CacheNode, HierarchySimulation
from repro.core.protocols import InvalidationProtocol, TTLProtocol
from repro.core.server import OriginServer
from tests.conftest import make_history


def three_level(protocol_factory):
    """origin — national — 2 regional — 4 local caches."""
    national = CacheNode("national", protocol_factory())
    regionals = [
        CacheNode(f"regional-{i}", protocol_factory(), parent=national)
        for i in range(2)
    ]
    locals_ = [
        CacheNode(f"local-{i}{j}", protocol_factory(), parent=regionals[i])
        for i in range(2)
        for j in range(2)
    ]
    return national, regionals, locals_


class TestThreeLevels:
    def test_depths(self):
        national, regionals, locals_ = three_level(
            lambda: TTLProtocol(hours(1))
        )
        assert national.depth == 1
        assert regionals[0].depth == 2
        assert locals_[0].depth == 3

    def test_validation_walks_the_full_chain(self):
        server = OriginServer([make_history("/f", size=100)])
        national, regionals, locals_ = three_level(
            lambda: TTLProtocol(days(5))
        )
        sim = HierarchySimulation(server, national, locals_)
        sim.preload(at=0.0)
        sim.request("local-00", "/f", days(6))
        # One 304 exchange on each of the three links in the chain.
        assert locals_[0].uplink.total_bytes == 86
        assert regionals[0].uplink.total_bytes == 86
        assert national.uplink.total_bytes == 86
        # The sibling subtree saw no traffic.
        assert regionals[1].uplink.total_bytes == 0

    def test_hop_weighted_bytes_reflect_depth(self):
        server = OriginServer([make_history("/f", size=100)])
        national, regionals, locals_ = three_level(
            lambda: TTLProtocol(days(5))
        )
        sim = HierarchySimulation(server, national, locals_)
        sim.preload(at=0.0)
        sim.request("local-00", "/f", days(6))
        assert sim.total_bytes() == 86 * 3
        assert sim.hop_weighted_bytes() == 86 * (1 + 2 + 3)

    def test_intermediate_serves_second_subtree(self):
        server = OriginServer([make_history("/f", size=100,
                                            changes=(days(1),))])
        national, regionals, locals_ = three_level(
            lambda: TTLProtocol(days(5))
        )
        sim = HierarchySimulation(server, national, locals_)
        sim.preload(at=0.0)
        sim.request("local-00", "/f", days(6))   # refresh whole chain
        sim.request("local-01", "/f", days(6.5))
        # local-01 shares regional-0, which is now fresh: the request
        # never reaches national or the origin a second time.
        assert national.counters.server_ims_queries == 1
        assert national.uplink.exchanges["validation_200"] == 1

    def test_invalidation_cascades_three_levels(self):
        server = OriginServer([make_history("/f", changes=(days(1),))])
        national, regionals, locals_ = three_level(InvalidationProtocol)
        sim = HierarchySimulation(server, national, locals_,
                                  deliver_invalidations=True)
        sim.preload(at=0.0)
        sim.finish(days(2))
        # Everyone heard about the change.
        for node in (national, *regionals, *locals_):
            assert node.cache.peek("/f").valid is False
        # Notices: origin->national (1), national->regionals (2),
        # regionals->locals (4).
        total_notices = sum(
            node.uplink.exchanges["invalidation"]
            for node in (national, *regionals, *locals_)
        )
        assert total_notices == 7
