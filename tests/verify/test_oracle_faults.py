"""The oracle under fault injection: both replays must still agree.

A :class:`~repro.faults.FaultPlan` is configuration, like the cost
model: the simulator and the spec each compile their own schedule from
their own view of the feed and replay it independently.  Any drift in
the charging rules, the generation guard, or the fault event stream is
a divergence.
"""

from __future__ import annotations

import pytest

from repro.core.clock import days, hours
from repro.core.protocols import (
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.faults import DowntimeWindow, FaultPlan
from repro.verify import checked_simulate, set_enabled, verify_simulation
from repro.verify.spec import rule_for
from tests.conftest import make_history


@pytest.fixture
def changing_server() -> OriginServer:
    return OriginServer(
        [
            make_history("/static", size=1000),
            make_history("/hot", size=500,
                         changes=(days(1), days(2), days(3), days(5))),
            make_history("/warm", size=800, changes=(days(2), days(6))),
        ]
    )


def requests() -> list[tuple[float, str]]:
    ids = ["/static", "/hot", "/warm"]
    return sorted(
        (days(d) + 400.0 * i, ids[(i + int(2 * d)) % len(ids)])
        for d in (0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5)
        for i in range(4)
    )


PLANS = (
    FaultPlan(),
    FaultPlan(loss_rate=0.5, seed=1),
    FaultPlan(loss_rate=0.5, retries=3, backoff=hours(1), seed=1),
    FaultPlan(loss_rate=0.3, delay=hours(2), retries=1, seed=4,
              downtime=(DowntimeWindow(start=days(2), length=hours(12)),),
              cache_crashes=(days(4),)),
)

PROTOCOLS = (
    lambda: InvalidationProtocol(),
    lambda: InvalidationProtocol(eager=True),
    lambda: LeasedInvalidationProtocol(hours(24)),
    lambda: LeasedInvalidationProtocol(hours(24), eager=True),
    lambda: TTLProtocol(hours(10)),
)


class TestAgreementUnderFaults:
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: repr(p)[:60])
    @pytest.mark.parametrize("factory", PROTOCOLS, ids=lambda f: f().name)
    @pytest.mark.parametrize("per_modification", [True, False])
    def test_simulator_matches_spec(
        self, changing_server, plan, factory, per_modification
    ):
        result, report = verify_simulation(
            changing_server, factory(), requests(),
            SimulatorMode.OPTIMIZED, end_time=days(8),
            charge_per_modification=per_modification, faults=plan,
        )
        assert report.ok

    def test_base_mode_agrees_too(self, changing_server):
        _, report = verify_simulation(
            changing_server, InvalidationProtocol(), requests(),
            SimulatorMode.BASE, end_time=days(8),
            faults=FaultPlan(loss_rate=0.4, retries=2, seed=9),
        )
        assert report.ok


class TestLeasedRule:
    def test_leased_protocol_has_a_spec_rule(self):
        rule = rule_for(LeasedInvalidationProtocol(hours(24)))
        assert rule.wants_feed

    def test_leased_verifies_without_faults(self, changing_server):
        _, report = verify_simulation(
            changing_server, LeasedInvalidationProtocol(hours(12)),
            requests(), SimulatorMode.OPTIMIZED, end_time=days(8),
        )
        assert report.ok


class TestCheckedSimulateForwarding:
    def test_faults_forwarded_when_oracle_disabled(self, changing_server):
        set_enabled(False)
        lossy = checked_simulate(
            changing_server, InvalidationProtocol(), requests(),
            end_time=days(8), faults=FaultPlan(loss_rate=1.0),
        )
        clean = checked_simulate(
            changing_server, InvalidationProtocol(), requests(),
            end_time=days(8),
        )
        assert lossy.counters.stale_hits > clean.counters.stale_hits == 0

    def test_faults_forwarded_under_force(self, changing_server):
        result = checked_simulate(
            changing_server, InvalidationProtocol(), requests(),
            end_time=days(8), faults=FaultPlan(loss_rate=1.0), force=True,
        )
        assert result.counters.stale_hits > 0
