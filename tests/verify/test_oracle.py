"""The differential oracle: agreement, divergence detection, gating."""

from __future__ import annotations

import pytest

from repro.core.clock import days, hours
from repro.core.costs import MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode, simulate
from repro.verify import (
    ConsistencyViolation,
    UnsupportedProtocolError,
    checked_simulate,
    is_enabled,
    set_enabled,
    verify_simulation,
)
from repro.verify.oracle import runs_verified
from tests.conftest import make_history


@pytest.fixture
def mixed_server() -> OriginServer:
    """Static, changing, Expires-stamped, and dynamic objects together."""
    return OriginServer(
        [
            make_history("/static", size=1000),
            make_history("/hot", size=500,
                         changes=(days(1), days(2), days(2), days(5))),
            make_history("/news", size=800, expires_after=hours(6),
                         changes=(days(3),)),
            make_history("/gif", size=2000, file_type="gif",
                         changes=(days(4),)),
            make_history("/cgi", size=300, file_type="cgi", cacheable=False),
        ]
    )


def mixed_requests() -> list[tuple[float, str]]:
    ids = ["/static", "/hot", "/news", "/gif", "/cgi"]
    return sorted(
        (days(d) + 300.0 * i, ids[(i + int(d)) % len(ids)])
        for d in (0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5)
        for i in range(5)
    )


ALL_PROTOCOLS = (
    lambda: TTLProtocol(hours(24)),
    lambda: TTLProtocol(0.0),
    lambda: ExpiresTTLProtocol(hours(24)),
    lambda: AlexProtocol.from_percent(10),
    lambda: InvalidationProtocol(),
    lambda: InvalidationProtocol(eager=True),
    lambda: PollEveryRequestProtocol(),
    lambda: CERNPolicyProtocol(0.1, hours(1), max_ttl=days(2)),
    lambda: SelfTuningProtocol(),
)


class TestAgreement:
    @pytest.mark.parametrize("factory", ALL_PROTOCOLS,
                             ids=lambda f: f().name)
    @pytest.mark.parametrize("mode", list(SimulatorMode))
    @pytest.mark.parametrize("per_modification", [True, False])
    def test_simulator_matches_spec(
        self, mixed_server, factory, mode, per_modification
    ):
        result, report = verify_simulation(
            mixed_server, factory(), mixed_requests(), mode,
            end_time=days(8), charge_per_modification=per_modification,
        )
        assert report.ok
        assert report.counters_checked == 13
        # Every request emits exactly one event; invalidation feeds add
        # invalidation/prefetch events on top.
        assert report.events_checked >= result.counters.requests

    def test_matches_plain_simulate(self, mixed_server):
        """The oracle's simulator leg is the production simulator."""
        result, _ = verify_simulation(
            mixed_server, AlexProtocol.from_percent(10), mixed_requests(),
            SimulatorMode.OPTIMIZED, end_time=days(8),
        )
        plain = simulate(
            mixed_server, AlexProtocol.from_percent(10), mixed_requests(),
            SimulatorMode.OPTIMIZED, end_time=days(8),
        )
        assert result.summary() == plain.summary()


class TestDivergenceDetection:
    def test_seeded_cost_bug_is_caught(self, mixed_server, monkeypatch):
        """A 304 that leaks one body byte must trip the ledger diff."""
        monkeypatch.setattr(
            MessageCosts, "validation_not_modified",
            lambda self: (2 * self.control_message, 1),
        )
        with pytest.raises(ConsistencyViolation) as excinfo:
            verify_simulation(
                mixed_server, TTLProtocol(0.0), mixed_requests(),
                SimulatorMode.OPTIMIZED, end_time=days(8),
            )
        assert any(
            "body_bytes[validation_304]" in d
            for d in excinfo.value.report.divergences
        )

    def test_seeded_freshness_bug_is_caught(self, monkeypatch):
        """An off-by-one freshness boundary must trip the event diff."""
        server = OriginServer([make_history("/f", size=100)])
        monkeypatch.setattr(
            TTLProtocol, "is_fresh",
            lambda self, entry, now: (now - entry.validated_at) <= self.ttl,
        )
        # Second request lands exactly at the TTL boundary: the buggy
        # simulator serves a hit, the spec demands a validation.
        with pytest.raises(ConsistencyViolation) as excinfo:
            verify_simulation(
                server, TTLProtocol(100.0), [(50.0, "/f"), (100.0, "/f")],
                SimulatorMode.OPTIMIZED,
            )
        assert any("event" in d for d in excinfo.value.report.divergences)

    def test_violation_message_names_protocol_and_mode(
        self, mixed_server, monkeypatch
    ):
        monkeypatch.setattr(
            MessageCosts, "validation_not_modified",
            lambda self: (2 * self.control_message, 1),
        )
        with pytest.raises(ConsistencyViolation, match="ttl.*optimized"):
            verify_simulation(
                mixed_server, TTLProtocol(0.0), mixed_requests(),
                SimulatorMode.OPTIMIZED, end_time=days(8),
            )


class TestGating:
    def test_unsupported_protocol_raises_on_explicit_verify(self, mixed_server):
        class CustomProtocol(TTLProtocol):
            pass

        with pytest.raises(UnsupportedProtocolError):
            verify_simulation(
                mixed_server, CustomProtocol(hours(1)), mixed_requests(),
            )

    def test_checked_simulate_falls_back_for_unsupported(self, mixed_server):
        class CustomProtocol(TTLProtocol):
            pass

        result = checked_simulate(
            mixed_server, CustomProtocol(hours(1)), mixed_requests(),
            end_time=days(8), force=True,
        )
        plain = simulate(
            mixed_server, TTLProtocol(hours(1)), mixed_requests(),
            end_time=days(8),
        )
        assert result.summary()["total_mb"] == plain.summary()["total_mb"]

    def test_checked_simulate_disabled_skips_oracle(
        self, mixed_server, monkeypatch
    ):
        """With verification off, even a seeded bug goes unnoticed."""
        monkeypatch.setattr(
            MessageCosts, "validation_not_modified",
            lambda self: (2 * self.control_message, 1),
        )
        assert not is_enabled()
        checked_simulate(
            mixed_server, TTLProtocol(0.0), mixed_requests(),
            end_time=days(8),
        )  # does not raise

    def test_checked_simulate_force_runs_oracle(
        self, mixed_server, monkeypatch
    ):
        monkeypatch.setattr(
            MessageCosts, "validation_not_modified",
            lambda self: (2 * self.control_message, 1),
        )
        with pytest.raises(ConsistencyViolation):
            checked_simulate(
                mixed_server, TTLProtocol(0.0), mixed_requests(),
                end_time=days(8), force=True,
            )

    def test_set_enabled_roundtrip(self, monkeypatch):
        import os

        monkeypatch.setattr("repro.verify.oracle._enabled", False)
        monkeypatch.setenv("REPRO_VERIFY", "0")
        set_enabled(True)
        assert is_enabled()
        assert os.environ["REPRO_VERIFY"] == "1"
        set_enabled(False)
        assert not is_enabled()
        assert os.environ["REPRO_VERIFY"] == "0"

    def test_verified_counter_increments(self, mixed_server):
        before = runs_verified()
        verify_simulation(
            mixed_server, TTLProtocol(hours(24)), mixed_requests(),
            end_time=days(8),
        )
        assert runs_verified() == before + 1
