"""The metamorphic suite: cross-run properties on fixed + random workloads."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.clock import DAY, days
from repro.core.server import OriginServer
from repro.verify import run_metamorphic_suite
from repro.verify.metamorphic import (
    check_hit_miss_closure,
    check_invalidation_zero_stale,
    check_optimized_bytes_leq_base,
    check_poll_validates_every_request,
)
from tests.conftest import make_history
from tests.verify.test_oracle_properties import rich_workloads


def _fixture_server() -> OriginServer:
    return OriginServer(
        [
            make_history("/a", size=1000,
                         changes=(days(1), days(3), days(5))),
            make_history("/b", size=4000, changes=(days(4),)),
            make_history("/cgi", size=200, file_type="cgi", cacheable=False),
        ]
    )


def _fixture_requests() -> list[tuple[float, str]]:
    return sorted(
        (days(d), oid)
        for d in (0.5, 1.5, 2.5, 3.5, 4.5, 5.5)
        for oid in ("/a", "/b", "/cgi")
    )


class TestFixedWorkload:
    def test_full_suite_holds(self):
        results = run_metamorphic_suite(
            _fixture_server(), _fixture_requests(), end_time=days(7)
        )
        assert len(results) == 4
        for prop in results:
            assert prop.holds, str(prop)

    def test_property_names_are_stable(self):
        names = [
            p.name
            for p in run_metamorphic_suite(
                _fixture_server(), _fixture_requests(), end_time=days(7)
            )
        ]
        assert names == [
            "invalidation-zero-stale",
            "optimized-bytes-leq-base",
            "poll-validates-every-request",
            "hit-miss-closure",
        ]

    def test_str_renders_verdict(self):
        prop = check_invalidation_zero_stale(
            _fixture_server(), _fixture_requests(), end_time=days(7)
        )
        assert str(prop).startswith("[ok] invalidation-zero-stale")


@settings(max_examples=25, deadline=None)
@given(workload=rich_workloads())
def test_invalidation_zero_stale_on_random_workloads(workload):
    histories, requests = workload
    prop = check_invalidation_zero_stale(
        OriginServer(histories), requests, end_time=20 * DAY
    )
    assert prop.holds, str(prop)


@settings(max_examples=25, deadline=None)
@given(workload=rich_workloads())
def test_optimized_leq_base_on_random_workloads(workload):
    histories, requests = workload
    prop = check_optimized_bytes_leq_base(
        OriginServer(histories), requests, end_time=20 * DAY
    )
    assert prop.holds, str(prop)


@settings(max_examples=25, deadline=None)
@given(workload=rich_workloads())
def test_poll_validates_every_request_on_random_workloads(workload):
    histories, requests = workload
    prop = check_poll_validates_every_request(
        OriginServer(histories), requests, end_time=20 * DAY
    )
    assert prop.holds, str(prop)


@settings(max_examples=25, deadline=None)
@given(workload=rich_workloads())
def test_hit_miss_closure_on_random_workloads(workload):
    histories, requests = workload
    prop = check_hit_miss_closure(
        OriginServer(histories), requests, end_time=20 * DAY
    )
    assert prop.holds, str(prop)
