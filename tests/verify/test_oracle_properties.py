"""Property-based oracle checks: random workloads × protocols × modes.

Every randomly generated run must replay through the
:class:`~repro.verify.spec.SpecModel` with zero divergence — this is the
hypothesis-driven leg of the ISSUE's differential-testing tentpole, and
the widest net for silent accounting drift.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DAY, hours
from repro.core.objects import ModificationSchedule, ObjectHistory, WebObject
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.verify import verify_simulation

DURATION = 20 * DAY

FILE_TYPES = ("html", "gif", "jpg", "other")


@st.composite
def rich_workloads(draw):
    """Random populations with file types, Expires headers, and dynamic
    objects, plus a time-ordered request stream."""
    n_files = draw(st.integers(min_value=1, max_value=5))
    histories = []
    for i in range(n_files):
        created = -draw(st.floats(min_value=1.0, max_value=100.0)) * DAY
        n_changes = draw(st.integers(min_value=0, max_value=6))
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.01 * DAY, max_value=DURATION),
                    min_size=n_changes, max_size=n_changes, unique=True,
                )
            )
        )
        cacheable = draw(st.booleans()) or i == 0
        expires_after = draw(
            st.one_of(st.none(), st.floats(min_value=hours(1),
                                           max_value=5 * DAY))
        )
        histories.append(
            ObjectHistory(
                WebObject(
                    f"/f{i}",
                    size=draw(st.integers(min_value=64, max_value=50_000)),
                    file_type=draw(st.sampled_from(FILE_TYPES)),
                    created=created,
                    cacheable=cacheable,
                    expires_after=expires_after if cacheable else None,
                ),
                ModificationSchedule(created, times),
            )
        )
    n_requests = draw(st.integers(min_value=0, max_value=50))
    raw = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=DURATION),
                st.integers(min_value=0, max_value=n_files - 1),
            ),
            min_size=n_requests, max_size=n_requests,
        )
    )
    requests = sorted((t, histories[i].object_id) for t, i in raw)
    return histories, requests


def protocols():
    return st.sampled_from(
        [
            lambda: TTLProtocol(0.0),
            lambda: TTLProtocol(hours(24)),
            lambda: ExpiresTTLProtocol(hours(24)),
            lambda: AlexProtocol.from_percent(0),
            lambda: AlexProtocol.from_percent(10),
            lambda: InvalidationProtocol(),
            lambda: InvalidationProtocol(eager=True),
            lambda: PollEveryRequestProtocol(),
            lambda: CERNPolicyProtocol(0.1, hours(1)),
            lambda: SelfTuningProtocol(),
        ]
    )


@settings(max_examples=80, deadline=None)
@given(
    workload=rich_workloads(),
    make_protocol=protocols(),
    mode=st.sampled_from(list(SimulatorMode)),
    per_modification=st.booleans(),
)
def test_simulator_always_matches_spec(
    workload, make_protocol, mode, per_modification
):
    """Zero divergence on any workload, protocol, mode, or §4.1 policy —
    raises ConsistencyViolation otherwise."""
    histories, requests = workload
    server = OriginServer(histories)
    _, report = verify_simulation(
        server,
        make_protocol(),
        requests,
        mode,
        end_time=DURATION,
        charge_per_modification=per_modification,
    )
    assert report.ok


@settings(max_examples=30, deadline=None)
@given(workload=rich_workloads(), make_protocol=protocols())
def test_spec_agrees_without_preload_too(workload, make_protocol):
    """Cold-cache runs replay cleanly as well (preload=False path)."""
    histories, requests = workload
    server = OriginServer(histories)
    _, report = verify_simulation(
        server,
        make_protocol(),
        requests,
        SimulatorMode.OPTIMIZED,
        preload=False,
        end_time=DURATION,
    )
    assert report.ok
