"""RunStats instrumentation and its threading through sweeps/experiments."""

import pytest

from repro.analysis.sweep import sweep_alex
from repro.core.simulator import SimulatorMode
from repro.experiments import common
from repro.experiments.registry import run_experiment
from repro.runtime import RunStats, collecting, record
from repro.workload.worrell import WorrellWorkload


class TestRunStats:
    def test_requests_per_second(self):
        stats = RunStats(wall_seconds=2.0, simulated_requests=100_000,
                         workers=4)
        assert stats.requests_per_second == pytest.approx(50_000.0)

    def test_zero_wall_time_guard(self):
        assert RunStats(0.0, 100).requests_per_second == 0.0

    def test_render_mentions_every_headline(self):
        stats = RunStats(wall_seconds=1.5, simulated_requests=3_000,
                         workers=2, grid_points=21, peak_grid_size=21)
        text = stats.render()
        assert "1.5s wall" in text
        assert "3,000 simulated requests" in text
        assert "req/s" in text
        assert "peak grid 21" in text
        assert "workers 2" in text

    def test_as_dict_round_trip(self):
        stats = RunStats(2.0, 10, workers=3, grid_points=5, peak_grid_size=5)
        data = stats.as_dict()
        assert data["wall_seconds"] == 2.0
        assert data["requests_per_second"] == pytest.approx(5.0)
        assert data["workers"] == 3

    def test_combine_sums_requests_and_takes_peak(self):
        combined = RunStats.combine(
            [RunStats(1.0, 100, workers=1, grid_points=5, peak_grid_size=5),
             RunStats(2.0, 300, workers=4, grid_points=21, peak_grid_size=21)],
        )
        assert combined.simulated_requests == 400
        assert combined.grid_points == 26
        assert combined.peak_grid_size == 21
        assert combined.wall_seconds == pytest.approx(3.0)
        assert combined.workers == 4

    def test_combine_empty_needs_wall_anchor(self):
        with pytest.raises(ValueError):
            RunStats.combine([])
        anchored = RunStats.combine([], wall_seconds=0.5, workers=2)
        assert anchored.simulated_requests == 0
        assert anchored.workers == 2


class TestCollector:
    def test_collects_only_inside_context(self):
        record(RunStats(1.0, 1))  # no active collector: dropped
        with collecting() as bucket:
            record(RunStats(1.0, 2))
        record(RunStats(1.0, 3))
        assert [s.simulated_requests for s in bucket] == [2]

    def test_nested_contexts_both_see_records(self):
        with collecting() as outer:
            record(RunStats(1.0, 1))
            with collecting() as inner:
                record(RunStats(1.0, 2))
        assert [s.simulated_requests for s in outer] == [1, 2]
        assert [s.simulated_requests for s in inner] == [2]


class TestSweepInstrumentation:
    def test_sweep_populates_stats(self):
        workload = WorrellWorkload(files=15, requests=400, seed=1).build()
        sweep = sweep_alex([workload], SimulatorMode.OPTIMIZED,
                           thresholds_percent=(0, 50, 100))
        stats = sweep.stats
        assert stats is not None
        assert stats.wall_seconds > 0.0
        # 3 grid points + the invalidation baseline, 400 requests each.
        assert stats.simulated_requests == 4 * 400
        assert stats.requests_per_second > 0.0
        assert stats.grid_points == 3
        assert stats.peak_grid_size == 3
        assert stats.workers == 1


class TestExperimentInstrumentation:
    def test_run_experiment_attaches_aggregate_stats(self):
        common.clear_caches()
        try:
            report = run_experiment("figure2", scale=0.02, seed=0)
        finally:
            common.clear_caches()
        stats = report.stats
        assert stats is not None
        assert stats.wall_seconds > 0.0
        assert stats.simulated_requests > 0
        assert stats.requests_per_second > 0.0
        assert stats.peak_grid_size > 0
        assert stats.workers == 1

    def test_memoized_rerun_reports_zero_new_work(self):
        common.clear_caches()
        try:
            run_experiment("figure2", scale=0.02, seed=0)
            cached = run_experiment("figure2", scale=0.02, seed=0)
        finally:
            common.clear_caches()
        assert cached.stats.simulated_requests == 0
