"""The process-pool sweep engine: resolution, mapping, equivalence."""

import os
import signal

import pytest

from repro.analysis.sweep import sweep_alex, sweep_ttl
from repro.core.simulator import SimulatorMode
from repro.runtime import engine
from repro.runtime import (
    default_workers,
    derive_seed,
    map_ordered,
    resolve_workers,
    set_default_workers,
)
from repro.workload.worrell import WorrellWorkload


class TestResolveWorkers:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv(engine.WORKERS_ENV_VAR, raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(engine.WORKERS_ENV_VAR, "8")
        with default_workers(2):
            assert resolve_workers(3) == 3

    def test_default_context_beats_env(self, monkeypatch):
        monkeypatch.setenv(engine.WORKERS_ENV_VAR, "8")
        with default_workers(2):
            assert resolve_workers() == 2
        assert resolve_workers() == 8

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv(engine.WORKERS_ENV_VAR, "5")
        assert resolve_workers() == 5

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(engine.WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_clamped_to_at_least_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_set_default_returns_previous(self):
        previous = set_default_workers(6)
        try:
            assert resolve_workers() == 6
        finally:
            set_default_workers(previous)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_distinct_per_index(self):
        seeds = {derive_seed(0, i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_per_base(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_non_negative_63_bit(self):
        for i in range(10):
            seed = derive_seed(123, i)
            assert 0 <= seed < 2 ** 63


class TestMapOrdered:
    def test_serial_is_list_comprehension(self):
        assert map_ordered(lambda x: x * x, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert map_ordered(lambda x: x * x, items, workers=4) == [
            x * x for x in items
        ]

    def test_parallel_supports_closures(self):
        captured = {"offset": 1000}
        result = map_ordered(
            lambda x: x + captured["offset"], [1, 2, 3], workers=3
        )
        assert result == [1001, 1002, 1003]

    def test_parallel_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("task failure")
            return x

        with pytest.raises(ValueError, match="task failure"):
            map_ordered(boom, [1, 2, 3], workers=2)

    def test_nested_map_in_worker_runs_serially(self):
        # The inner map runs inside a forked pool worker, where the
        # engine must fall back to the serial path instead of spawning a
        # nested (deadlocking) pool.
        def outer(x):
            return sum(map_ordered(lambda y: y + x, [1, 2], workers=4))

        assert map_ordered(outer, [10, 20], workers=2) == [23, 43]

    def test_empty_and_single_item(self):
        assert map_ordered(lambda x: x, [], workers=4) == []
        assert map_ordered(lambda x: -x, [5], workers=4) == [-5]


class TestCrashTolerance:
    """A worker that dies mid-task must not hang ``map_ordered``.

    The tasks below SIGKILL their own worker process — the failure mode
    a plain ``pool.map`` loop turns into a lost result or a hang.  The
    ``engine._in_worker`` guard keeps the kill inside pool workers only,
    so the serial fallback (and the parent) always survives.
    """

    def test_killed_worker_recovers(self, tmp_path):
        marker = tmp_path / "killed-once"

        def task(x):
            if x == 3 and engine._in_worker and not marker.exists():
                marker.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return x * x

        expected = [x * x for x in range(8)]
        assert map_ordered(task, list(range(8)), workers=2) == expected
        assert marker.exists()  # the kill really happened

    def test_persistent_crasher_degrades_to_serial(self):
        # Index 1 kills *every* worker that picks it up, so every pool
        # round breaks; after the restart budget the engine must finish
        # the remainder serially in the parent (where the guard is off).
        def task(x):
            if x == 1 and engine._in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            return x + 100

        assert map_ordered(task, [0, 1, 2, 3], workers=2) == [
            100, 101, 102, 103,
        ]

    def test_task_exception_still_propagates_after_crash_rework(self):
        # A task that *raises* is a task failure, not a worker death:
        # no retry, the exception surfaces unchanged.
        def boom(x):
            if x == 0:
                raise KeyError("task bug")
            return x

        with pytest.raises(KeyError, match="task bug"):
            map_ordered(boom, [0, 1, 2], workers=2)


@pytest.fixture(scope="module")
def workload():
    return WorrellWorkload(files=20, requests=600, seed=3).build()


class TestParallelSerialEquivalence:
    """`--workers N` must be bit-identical to the serial fallback."""

    GRID = (0, 25, 50, 75, 100)

    def test_alex_sweep_identical(self, workload):
        serial = sweep_alex([workload], SimulatorMode.OPTIMIZED,
                            thresholds_percent=self.GRID, workers=1)
        parallel = sweep_alex([workload], SimulatorMode.OPTIMIZED,
                              thresholds_percent=self.GRID, workers=4)
        assert serial == parallel  # instrumentation excluded from equality
        for a, b in zip(serial.points, parallel.points):
            assert a.parameter == b.parameter
            assert a.metrics == b.metrics  # exact float equality
        assert serial.invalidation == parallel.invalidation

    def test_ttl_sweep_identical_via_default_workers(self, workload):
        serial = sweep_ttl([workload], SimulatorMode.BASE,
                           ttl_hours=(0, 100, 200))
        with default_workers(4):
            parallel = sweep_ttl([workload], SimulatorMode.BASE,
                                 ttl_hours=(0, 100, 200))
        assert serial == parallel
        assert serial.stats.workers == 1
        assert parallel.stats.workers == 4

    def test_points_stay_in_grid_order(self, workload):
        parallel = sweep_alex([workload], SimulatorMode.OPTIMIZED,
                              thresholds_percent=self.GRID, workers=4)
        assert parallel.parameters() == list(self.GRID)
