"""Engine-level behaviour: noqa, baselines, selection, and the self-run.

The last test is the acceptance gate: the committed tree must lint
clean, so the linter can never rot into something the repository itself
violates.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import check_project, run_lint
from repro.lint.project import (
    LintError,
    ModuleInfo,
    Project,
    module_name_for,
    parse_noqa,
)
from repro.lint.registry import all_checkers, checker_codes

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_CORE = (
    "import random\n"
    "\n"
    "def jitter():\n"
    "    return random.random()\n"
)


def write_fixture_tree(tmp_path: Path, source: str) -> Path:
    """A minimal src/repro/core layout so scoped checkers engage."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(source)
    return tmp_path / "src"


class TestRegistry:
    def test_all_nine_checkers_registered(self):
        assert checker_codes() == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR009",
        ]
        assert len(all_checkers()) == 9

    def test_unknown_select_code_raises(self):
        project = Project([])
        with pytest.raises(KeyError, match="RPR999"):
            check_project(project, select=["RPR999"])


class TestNaming:
    def test_module_name_from_src_layout(self):
        assert module_name_for(
            Path("src/repro/core/simulator.py")
        ) == "repro.core.simulator"
        assert module_name_for(
            Path("/abs/src/repro/verify/__init__.py")
        ) == "repro.verify"

    def test_module_name_without_src(self):
        assert module_name_for(
            Path("repro/workload/campus.py")
        ) == "repro.workload.campus"
        assert module_name_for(Path("scratch.py")) == "scratch"


class TestNoqa:
    def test_parse_noqa_forms(self):
        table = parse_noqa(
            "x = 1  # repro: noqa[RPR001]\n"
            "y = 2  # repro: noqa[RPR001, RPR005]\n"
            "z = 3  # repro: noqa\n"
            "w = 4  # unrelated comment\n"
        )
        assert table[1] == {"RPR001"}
        assert table[2] == {"RPR001", "RPR005"}
        assert table[3] == {"*"}
        assert 4 not in table

    def test_noqa_suppresses_matching_code_only(self):
        suppressed_src = BAD_CORE.replace(
            "return random.random()",
            "return random.random()  # repro: noqa[RPR001]",
        )
        module = ModuleInfo.from_source(
            suppressed_src, path="bad.py", name="repro.core.bad"
        )
        reportable, suppressed = check_project(Project([module]))
        assert reportable == []
        assert [d.code for d in suppressed] == ["RPR001"]

    def test_wrong_code_noqa_does_not_suppress(self):
        src = BAD_CORE.replace(
            "return random.random()",
            "return random.random()  # repro: noqa[RPR005]",
        )
        module = ModuleInfo.from_source(
            src, path="bad.py", name="repro.core.bad"
        )
        reportable, suppressed = check_project(Project([module]))
        assert [d.code for d in reportable] == ["RPR001"]
        assert suppressed == []


class TestBaseline:
    def _diag(self, message: str) -> Diagnostic:
        return Diagnostic(
            path="a.py", line=3, col=1, code="RPR001", message=message,
            severity=Severity.ERROR,
        )

    def test_roundtrip_and_split(self, tmp_path):
        baseline = tmp_path / "base.json"
        old = self._diag("grandfathered")
        new = self._diag("fresh finding")
        assert write_baseline(baseline, [old]) == 1
        entries = load_baseline(baseline)
        fresh, grandfathered = split_baselined([old, new], entries)
        assert fresh == [new]
        assert grandfathered == [old]

    def test_fingerprint_ignores_line_numbers(self):
        moved = Diagnostic(
            path="a.py", line=99, col=5, code="RPR001",
            message="grandfathered", severity=Severity.ERROR,
        )
        assert moved.fingerprint == self._diag("grandfathered").fingerprint

    def test_fingerprint_survives_file_rename(self, tmp_path):
        # Baseline against bad.py, then rename the file: the identity
        # hashes code::message::context (no path), so the grandfathered
        # finding must still match.
        src = write_fixture_tree(tmp_path, BAD_CORE)
        baseline = tmp_path / "base.json"
        first = run_lint([src], root=tmp_path)
        write_baseline(baseline, first.diagnostics)

        pkg = src / "repro" / "core"
        (pkg / "bad.py").rename(pkg / "renamed.py")
        second = run_lint([src], baseline_path=baseline, root=tmp_path)
        assert second.diagnostics == []
        assert [d.path for d in second.baselined] == [
            "src/repro/core/renamed.py"
        ]

    def test_fingerprint_survives_unrelated_insertions(self, tmp_path):
        # Pushing the offending line down the file must not break the
        # baseline match: line numbers are excluded from the identity.
        src = write_fixture_tree(tmp_path, BAD_CORE)
        baseline = tmp_path / "base.json"
        first = run_lint([src], root=tmp_path)
        write_baseline(baseline, first.diagnostics)

        pkg = src / "repro" / "core"
        shifted = "import random\n\nPAD_A = 1\nPAD_B = 2\nPAD_C = 3\n" + (
            "\ndef jitter():\n    return random.random()\n"
        )
        (pkg / "bad.py").write_text(shifted)
        second = run_lint([src], baseline_path=baseline, root=tmp_path)
        assert second.diagnostics == []
        assert [d.line for d in second.baselined] == [8]

    def test_fingerprint_changes_when_offending_code_changes(self, tmp_path):
        # The flip side of stability: edit the offending line itself and
        # the old baseline entry must stop matching (debt cannot hide).
        src = write_fixture_tree(tmp_path, BAD_CORE)
        baseline = tmp_path / "base.json"
        first = run_lint([src], root=tmp_path)
        write_baseline(baseline, first.diagnostics)

        pkg = src / "repro" / "core"
        (pkg / "bad.py").write_text(
            BAD_CORE.replace(
                "return random.random()", "return random.random() * 2"
            )
        )
        second = run_lint([src], baseline_path=baseline, root=tmp_path)
        assert [d.code for d in second.diagnostics] == ["RPR001"]
        assert second.baselined == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)
        bad.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(BaselineError, match="version"):
            load_baseline(bad)


class TestRunLint:
    def test_finds_seeded_violation(self, tmp_path):
        src = write_fixture_tree(tmp_path, BAD_CORE)
        result = run_lint([src], root=tmp_path)
        assert [d.code for d in result.diagnostics] == ["RPR001"]
        assert result.errors and not result.warnings
        assert result.files_checked == 1

    def test_baseline_grandfathers_finding(self, tmp_path):
        src = write_fixture_tree(tmp_path, BAD_CORE)
        baseline = tmp_path / "base.json"
        first = run_lint([src], root=tmp_path)
        write_baseline(baseline, first.diagnostics)
        second = run_lint([src], baseline_path=baseline, root=tmp_path)
        assert second.diagnostics == []
        assert [d.code for d in second.baselined] == ["RPR001"]

    def test_select_restricts_checkers(self, tmp_path):
        src = write_fixture_tree(
            tmp_path, BAD_CORE + "\nlist = [1]\n"
        )
        only_hygiene = run_lint([src], select=["RPR005"], root=tmp_path)
        assert [d.code for d in only_hygiene.diagnostics] == ["RPR005"]
        ignored = run_lint([src], ignore=["RPR001"], root=tmp_path)
        assert [d.code for d in ignored.diagnostics] == ["RPR005"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            run_lint([tmp_path / "ghost"], root=tmp_path)

    def test_unparseable_source_raises(self, tmp_path):
        src = write_fixture_tree(tmp_path, "def broken(:\n")
        with pytest.raises(LintError, match="cannot lint"):
            run_lint([src], root=tmp_path)


class TestSelfRun:
    """The committed tree must pass its own linter (acceptance gate)."""

    def test_src_tree_is_clean(self):
        result = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        assert result.diagnostics == [], "\n".join(
            d.render() for d in result.diagnostics
        )
        assert result.files_checked > 80

    def test_committed_baseline_is_empty(self):
        entries = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        assert entries == {}
