"""Machine-readable output: ``--format json/github`` and the mypy filter."""

from __future__ import annotations

import io
import json
import re

from repro.lint.annotations import annotate_mypy, annotate_stream
from repro.lint.diagnostics import Because, Diagnostic, Severity
from repro.lint.engine import LintResult
from repro.lint.formats import (
    JSON_SCHEMA,
    escape_message,
    escape_property,
    render_github,
    render_json,
)


def finding(**overrides) -> Diagnostic:
    base = dict(
        path="src/repro/core/bad.py",
        line=4,
        col=12,
        code="RPR001",
        message="random.random() is nondeterministic",
        severity=Severity.ERROR,
        context="return random.random()",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestJson:
    def test_document_shape(self):
        result = LintResult(
            diagnostics=[finding()],
            suppressed=[finding(line=9)],
            baselined=[],
            files_checked=3,
        )
        doc = json.loads(render_json(result))
        assert doc["schema"] == JSON_SCHEMA == "repro.lint/1"
        assert doc["files_checked"] == 3
        assert doc["summary"] == {
            "errors": 1, "warnings": 0, "suppressed": 1, "baselined": 0,
        }
        (entry,) = doc["diagnostics"]
        assert entry["path"] == "src/repro/core/bad.py"
        assert entry["line"] == 4 and entry["col"] == 12
        assert entry["code"] == "RPR001"
        assert entry["severity"] == "error"
        assert entry["context"] == "return random.random()"
        assert re.fullmatch(r"[0-9a-f]{16}", entry["fingerprint"])
        assert entry["because"] == []

    def test_because_chain_serialized(self):
        d = finding(because=(
            Because("src/repro/live/proxy.py", 137, "entry point"),
            Because("src/repro/live/proxy.py", 200, "calls helper()"),
        ))
        doc = json.loads(render_json(LintResult(diagnostics=[d])))
        chain = doc["diagnostics"][0]["because"]
        assert chain == [
            {"path": "src/repro/live/proxy.py", "line": 137,
             "note": "entry point"},
            {"path": "src/repro/live/proxy.py", "line": 200,
             "note": "calls helper()"},
        ]

    def test_warning_severity(self):
        d = finding(severity=Severity.WARNING)
        doc = json.loads(render_json(LintResult(diagnostics=[d])))
        assert doc["diagnostics"][0]["severity"] == "warning"
        assert doc["summary"]["warnings"] == 1


class TestGithub:
    def test_error_annotation_line(self):
        (line,) = render_github(LintResult(diagnostics=[finding()]))
        assert line == (
            "::error file=src/repro/core/bad.py,line=4,col=12,"
            "title=RPR001::random.random() is nondeterministic"
        )

    def test_warning_level(self):
        (line,) = render_github(
            LintResult(diagnostics=[finding(severity=Severity.WARNING)])
        )
        assert line.startswith("::warning file=")

    def test_because_chain_folds_into_message(self):
        d = finding(because=(
            Because("src/repro/live/proxy.py", 137, "entry point"),
        ))
        (line,) = render_github(LintResult(diagnostics=[d]))
        # Newlines must be %0A-escaped so the command stays one line.
        assert "\n" not in line
        assert "%0Abecause: src/repro/live/proxy.py:137" in line

    def test_property_escaping(self):
        assert escape_property("a:b,c%d\n") == "a%3Ab%2Cc%25d%0A"

    def test_message_escaping_preserves_punctuation(self):
        assert escape_message("x: y, z\n%") == "x: y, z%0A%25"


class TestMypyAnnotations:
    def test_error_line_parsed(self):
        cmd = annotate_mypy(
            'src/repro/core/cache.py:42: error: Incompatible return '
            'value type  [return-value]'
        )
        assert cmd == (
            "::error file=src/repro/core/cache.py,line=42,col=1,"
            "title=mypy::Incompatible return value type  [return-value]"
        )

    def test_column_numbers_supported(self):
        cmd = annotate_mypy("src/repro/a.py:7:13: error: boom")
        assert cmd is not None and ",line=7,col=13," in cmd

    def test_note_becomes_notice(self):
        cmd = annotate_mypy("src/repro/a.py:7: note: See docs")
        assert cmd is not None and cmd.startswith("::notice ")

    def test_non_finding_lines_ignored(self):
        assert annotate_mypy("Found 3 errors in 2 files") is None
        assert annotate_mypy("Success: no issues found") is None
        assert annotate_mypy("") is None

    def test_stream_echoes_and_interleaves(self):
        out = io.StringIO()
        emitted = annotate_stream(
            "mypy",
            io.StringIO(
                "src/repro/a.py:1: error: bad\n"
                "Found 1 error in 1 file (checked 2 source files)\n"
            ),
            out=out,
        )
        assert emitted == 1
        lines = out.getvalue().splitlines()
        assert lines[0] == "src/repro/a.py:1: error: bad"
        assert lines[1].startswith("::error file=src/repro/a.py,line=1,")
        assert lines[2].startswith("Found 1 error")
