"""RPR007 — async-safety / lock-discipline checker."""

from pathlib import Path

from repro.lint.checkers.asyncsafety import AsyncSafetyChecker
from repro.lint.project import ModuleInfo, Project, load_project

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _project(source: str, name: str = "repro.live.fixture") -> Project:
    path = "src/" + name.replace(".", "/") + ".py"
    return Project([ModuleInfo.from_source(source, path=path, name=name)])


def _run(source: str, name: str = "repro.live.fixture"):
    return list(AsyncSafetyChecker().check_project(_project(source, name)))


RACY_PROXY = '''
import asyncio

class Proxy:
    def __init__(self):
        self._lock = asyncio.Lock()
        self.hits = 0
        self.wire_bytes = 0

    async def start(self):
        self._listener = await asyncio.start_server(self._handle, "h", 0)

    async def _handle(self, reader, writer):
        data = await reader.read(100)
        self.hits += 1
        body = await self._fetch(data)
        self.wire_bytes += len(body)

    async def _fetch(self, data):
        return data
'''


class TestUnlockedTransactions:
    def test_write_after_await_flagged(self):
        diags = _run(RACY_PROXY)
        assert len(diags) == 1
        d = diags[0]
        assert d.code == "RPR007"
        assert "self.wire_bytes" in d.message
        assert "self._lock" in d.message
        # The because chain cites the transaction start and the await.
        notes = [b.note for b in d.because]
        assert any("self.hits" in n for n in notes)
        assert any("await" in n for n in notes)

    def test_same_shape_under_lock_is_clean(self):
        safe = RACY_PROXY.replace(
            """        data = await reader.read(100)
        self.hits += 1
        body = await self._fetch(data)
        self.wire_bytes += len(body)""",
            """        data = await reader.read(100)
        async with self._lock:
            self.hits += 1
            body = await self._fetch(data)
            self.wire_bytes += len(body)""",
        )
        assert _run(safe) == []

    def test_method_not_handed_to_event_loop_is_not_analyzed(self):
        # No start_server/create_task: nothing can interleave, so the
        # same racy body draws no finding (documented imprecision).
        no_entry = RACY_PROXY.replace(
            'self._listener = await asyncio.start_server(self._handle, "h", 0)',
            "pass",
        )
        assert _run(no_entry) == []

    def test_touch_via_helper_method_counts(self):
        source = '''
import asyncio

class Proxy:
    def __init__(self):
        self.count = 0

    async def start(self):
        await asyncio.start_server(self._handle, "h", 0)

    def _bump(self):
        self.count += 1

    async def _handle(self, reader, writer):
        self._bump()
        await writer.drain()
        self._bump()
'''
        diags = _run(source)
        assert len(diags) == 1
        assert "self.count" in diags[0].message

    def test_helper_called_only_under_lock_is_clean(self):
        source = '''
import asyncio

class Proxy:
    def __init__(self):
        self._lock = asyncio.Lock()
        self.count = 0

    async def start(self):
        await asyncio.start_server(self._handle, "h", 0)

    async def _respond(self):
        self.count += 1
        await self._refetch()
        self.count += 1

    async def _refetch(self):
        return None

    async def _handle(self, reader, writer):
        async with self._lock:
            await self._respond()
'''
        assert _run(source) == []

    def test_read_modify_write_straddling_await(self):
        source = '''
import asyncio

class Counter:
    def __init__(self):
        self.total = 0

    def spawn(self):
        asyncio.create_task(self.bump())

    async def bump(self):
        self.total += await self._cost()

    async def _cost(self):
        return 1
'''
        diags = _run(source)
        assert len(diags) == 1
        assert "read-modify-write" in diags[0].message

    def test_mutating_container_call_counts_as_touch(self):
        source = '''
import asyncio

class Feed:
    def __init__(self):
        self.pending = []

    def spawn(self):
        asyncio.create_task(self.drain())

    async def drain(self):
        self.pending.append(1)
        await self._flush()
        self.pending.clear()

    async def _flush(self):
        return None
'''
        diags = _run(source)
        assert len(diags) == 1
        assert "self.pending" in diags[0].message

    def test_branch_that_returns_does_not_leak_state(self):
        # The error path mutates then returns; the main path mutates
        # once — no transaction spans an await on any single path.
        source = '''
import asyncio

class Proxy:
    def __init__(self):
        self.wire_bytes = 0

    async def start(self):
        await asyncio.start_server(self._handle, "h", 0)

    async def _handle(self, reader, writer):
        try:
            data = await reader.read(100)
        except ConnectionError:
            self.wire_bytes += 1
            return
        sent = await self._send(writer, data)
        self.wire_bytes += sent

    async def _send(self, writer, data):
        return len(data)
'''
        assert _run(source) == []

    def test_loop_carries_transaction_across_iterations(self):
        source = '''
import asyncio

class Feed:
    def __init__(self):
        self.seen = 0

    def spawn(self):
        asyncio.create_task(self.pump())

    async def pump(self):
        for _ in range(3):
            self.seen += 1
            await self._tick()

    async def _tick(self):
        return None
'''
        diags = _run(source)
        assert len(diags) == 1
        assert "self.seen" in diags[0].message


class TestBlockingCalls:
    def test_blocking_call_two_hops_from_async_def(self):
        source = '''
import time

def _backoff(n):
    time.sleep(n)

def _retry(n):
    _backoff(n)

async def poll_origin(n):
    _retry(n)
'''
        diags = _run(source)
        assert len(diags) == 1
        d = diags[0]
        assert "time.sleep" in d.message
        assert "poll_origin" in d.message
        # Proof path: async root, then each call hop.
        assert len(d.because) == 3

    def test_blocking_call_not_reachable_from_async_is_clean(self):
        source = '''
import time

def sync_only(n):
    time.sleep(n)

async def handler(n):
    return n
'''
        assert _run(source) == []

    def test_out_of_scope_async_def_is_not_a_root(self):
        source = '''
import time

async def handler(n):
    time.sleep(n)
'''
        assert _run(source, name="repro.core.simulator2") == []

    def test_subprocess_and_socket_flagged(self):
        source = '''
import socket
import subprocess

async def handler():
    subprocess.run(["ls"])
    socket.create_connection(("h", 80))
'''
        diags = _run(source)
        assert {d.line for d in diags} == {6, 7}


class TestLockNesting:
    def test_await_under_sync_lock(self):
        source = '''
import threading

_pool_lock = threading.Lock()

async def drain(queue):
    with _pool_lock:
        await queue.get()
'''
        diags = _run(source)
        assert len(diags) == 1
        assert "synchronous lock" in diags[0].message

    def test_nested_async_lock_acquisition(self):
        source = '''
async def nested(a_lock, b_lock):
    async with a_lock:
        async with b_lock:
            pass
'''
        diags = _run(source)
        assert len(diags) == 1
        assert "nested lock acquisition" in diags[0].message

    def test_single_lock_with_await_inside_is_fine(self):
        source = '''
async def serialized(a_lock, queue):
    async with a_lock:
        await queue.get()
'''
        assert _run(source) == []


class TestShippedTree:
    def test_live_and_runtime_are_clean_as_shipped(self):
        project = load_project([REPO_SRC], root=REPO_SRC.parents[0])
        diags = list(AsyncSafetyChecker().check_project(project))
        assert diags == []
