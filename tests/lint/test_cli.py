"""The lint CLI contract: rendering, exit statuses, baseline workflow."""

from __future__ import annotations

from pathlib import Path

from repro.lint.cli import main as lint_main

BAD_CORE = (
    "import random\n"
    "\n"
    "def jitter():\n"
    "    return random.random()\n"
)


def fixture_tree(tmp_path: Path, source: str = BAD_CORE) -> Path:
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(source)
    return tmp_path / "src"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = fixture_tree(tmp_path, "x = 1\n")
        assert lint_main([str(src), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "1 file(s), 0 error(s)" in out

    def test_error_finding_exits_one(self, tmp_path, capsys):
        src = fixture_tree(tmp_path)
        assert lint_main([str(src), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "bad.py:4:" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "ghost"), "--no-baseline"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_select_code_exits_two(self, tmp_path, capsys):
        src = fixture_tree(tmp_path, "x = 1\n")
        assert lint_main(
            [str(src), "--no-baseline", "--select", "RPR999"]
        ) == 2
        assert "RPR999" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        src = fixture_tree(tmp_path, "x = 1\n")
        baseline = tmp_path / "broken.json"
        baseline.write_text("{not json")
        assert lint_main([str(src), "--baseline", str(baseline)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_update_then_green(self, tmp_path, capsys):
        src = fixture_tree(tmp_path)
        baseline = tmp_path / "base.json"

        assert lint_main(
            [str(src), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out

        assert lint_main([str(src), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # A *new* violation is still fatal under the old baseline.
        pkg = src / "repro" / "core"
        (pkg / "worse.py").write_text("import time\nt = time.time()\n")
        assert lint_main([str(src), "--baseline", str(baseline)]) == 1
        assert "worse.py" in capsys.readouterr().out


class TestFlags:
    def test_list_codes(self, capsys):
        assert lint_main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        ):
            assert code in out

    def test_quiet_omits_summary(self, tmp_path, capsys):
        src = fixture_tree(tmp_path, "x = 1\n")
        assert lint_main([str(src), "--no-baseline", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_format_json_document(self, tmp_path, capsys):
        import json

        src = fixture_tree(tmp_path)
        assert lint_main(
            [str(src), "--no-baseline", "--format", "json"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint/1"
        assert doc["summary"]["errors"] == 1
        (entry,) = doc["diagnostics"]
        assert entry["code"] == "RPR001"
        assert entry["path"].endswith("bad.py")

    def test_format_github_annotations(self, tmp_path, capsys):
        src = fixture_tree(tmp_path)
        assert lint_main(
            [str(src), "--no-baseline", "--format", "github"]
        ) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert ",line=4," in out and "title=RPR001::" in out

    def test_format_github_clean_tree(self, tmp_path, capsys):
        src = fixture_tree(tmp_path, "x = 1\n")
        assert lint_main(
            [str(src), "--no-baseline", "--format", "github"]
        ) == 0
        out = capsys.readouterr().out
        assert "::error" not in out

    def test_noqa_shows_in_summary(self, tmp_path, capsys):
        src = fixture_tree(
            tmp_path,
            BAD_CORE.replace(
                "return random.random()",
                "return random.random()  # repro: noqa[RPR001]",
            ),
        )
        assert lint_main([str(src), "--no-baseline"]) == 0
        assert "1 noqa-suppressed" in capsys.readouterr().out
