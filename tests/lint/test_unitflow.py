"""RPR009 — interprocedural unit inference."""

import textwrap
from pathlib import Path

from repro.lint.checkers.unitflow import UnitFlowChecker
from repro.lint.project import ModuleInfo, Project, load_project

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"


def mod(source: str, name: str) -> ModuleInfo:
    path = "src/" + name.replace(".", "/") + ".py"
    return ModuleInfo.from_source(textwrap.dedent(source), path=path, name=name)


def run(*modules: ModuleInfo):
    return list(UnitFlowChecker().check_project(Project(list(modules))))


class TestReturnPropagation:
    def test_unit_flows_through_local_and_return(self):
        diags = run(mod(
            """
            def backlog(delay_s):
                window = delay_s
                return window

            def account(total_bytes, d):
                total_bytes += backlog(d)
                return total_bytes
            """,
            name="repro.core.flow1",
        ))
        assert len(diags) == 1
        d = diags[0]
        assert d.code == "RPR009"
        assert "bytes" in d.message and "seconds" in d.message
        # Provenance: parameter -> local -> return.
        notes = [b.note for b in d.because]
        assert any("parameter delay_s" in n for n in notes)
        assert any("backlog() returns seconds" in n for n in notes)

    def test_chain_of_helpers(self):
        diags = run(mod(
            """
            def inner(stale_seconds):
                return stale_seconds

            def middle(x):
                return inner(x)

            def outer(total_bytes, x):
                return total_bytes + middle(x)
            """,
            name="repro.core.flow2",
        ))
        assert len(diags) == 1
        assert "additive arithmetic" in diags[0].message

    def test_cross_module_propagation(self):
        helpers = mod(
            """
            def window(delay_s):
                return delay_s
            """,
            name="repro.core.flowhelpers",
        )
        user = mod(
            """
            from repro.core.flowhelpers import window

            def account(total_bytes, d):
                return total_bytes - window(d)
            """,
            name="repro.fastpath.flowuser",
        )
        diags = run(helpers, user)
        assert len(diags) == 1
        assert diags[0].path.endswith("flowuser.py")

    def test_mixed_returns_stay_unknown(self):
        # A function returning bytes on one path and seconds on another
        # has no unit; nothing downstream is flagged.
        assert run(mod(
            """
            def ambiguous(flag, total_bytes, delay_s):
                if flag:
                    return total_bytes
                return delay_s

            def use(x, hit_count):
                return hit_count + ambiguous(True, 1, 2)
            """,
            name="repro.core.flow3",
        )) == []


class TestLocalPropagation:
    def test_local_alias_mixes(self):
        diags = run(mod(
            """
            def account(delay_s, total_bytes):
                window = delay_s
                return window + total_bytes
            """,
            name="repro.core.flow4",
        ))
        assert len(diags) == 1
        assert any(
            "window is assigned a seconds value" in b.note
            for b in diags[0].because
        )

    def test_reassignment_clears_unit(self):
        assert run(mod(
            """
            def account(delay_s, total_bytes, mystery):
                window = delay_s
                window = mystery
                return window + total_bytes
            """,
            name="repro.core.flow5",
        )) == []


class TestCallArguments:
    def test_wrong_unit_argument_flagged(self):
        diags = run(mod(
            """
            def charge(body_size):
                return body_size

            def caller(delay_s):
                return charge(delay_s)
            """,
            name="repro.core.flow6",
        ))
        assert len(diags) == 1
        assert "parameter body_size" in diags[0].message
        assert "expects bytes" in diags[0].message

    def test_keyword_argument_checked(self):
        diags = run(mod(
            """
            def charge(amount, body_size=0):
                return body_size

            def caller(delay_s):
                return charge(1, body_size=delay_s)
            """,
            name="repro.core.flow7",
        ))
        assert len(diags) == 1

    def test_matching_unit_argument_clean(self):
        assert run(mod(
            """
            def charge(body_size):
                return body_size

            def caller(header_bytes):
                return charge(header_bytes)
            """,
            name="repro.core.flow8",
        )) == []


class TestDeduplicationAndScope:
    def test_rpr002_visible_mixes_are_not_duplicated(self):
        # Both operands carry units by *name*: RPR002's finding, not ours.
        assert run(mod(
            "total = body_bytes + elapsed_seconds\n",
            name="repro.core.flow9",
        )) == []

    def test_out_of_scope_module_not_checked(self):
        assert run(mod(
            """
            def backlog(delay_s):
                return delay_s

            def account(total_bytes, d):
                return total_bytes + backlog(d)
            """,
            name="repro.obs.flow10",
        )) == []

    def test_shipped_tree_is_clean(self):
        project = load_project([REPO_SRC], root=REPO_ROOT)
        assert list(UnitFlowChecker().check_project(project)) == []
