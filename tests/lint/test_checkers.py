"""Fixture tests: every RPR checker fires on a seeded-bad snippet.

Each test builds a tiny in-memory project (``ModuleInfo.from_source``
with an explicit dotted name, so scoping rules apply) containing one
deliberate violation, asserts the checker reports it, and asserts the
corrected twin stays clean.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.units import UnitsChecker, infer_unit
from repro.lint.checkers.conformance import ConformanceChecker
from repro.lint.checkers.events import EventExhaustivenessChecker
from repro.lint.checkers.hygiene import HygieneChecker
from repro.lint.checkers.obsnames import ObsNameChecker
from repro.lint.project import ModuleInfo, Project


def mod(source: str, name: str, path: str = "fixture.py") -> ModuleInfo:
    return ModuleInfo.from_source(
        textwrap.dedent(source), path=path, name=name
    )


def run_module(checker, module: ModuleInfo, *extra: ModuleInfo):
    project = Project([module, *extra])
    return list(checker.check_module(module, project))


def run_project(checker, *modules: ModuleInfo):
    return list(checker.check_project(Project(list(modules))))


# -- RPR001 determinism -------------------------------------------------------


class TestDeterminism:
    checker = DeterminismChecker()

    def test_global_random_call_flagged_in_core(self):
        bad = mod(
            """
            import random

            def jitter():
                return random.random()
            """,
            name="repro.core.bad",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1
        assert found[0].code == "RPR001"
        assert "random.random()" in found[0].message

    def test_seeded_random_and_out_of_scope_clean(self):
        seeded = mod(
            """
            import random

            def jitter(seed):
                return random.Random(seed).random()
            """,
            name="repro.core.ok",
        )
        assert run_module(self.checker, seeded) == []
        # Same bad code outside the scoped packages: not this checker's
        # business (instrumentation may read clocks).
        elsewhere = mod(
            "import time\nt = time.time()\n", name="repro.runtime.stats"
        )
        assert run_module(self.checker, elsewhere) == []

    def test_unseeded_default_rng_flagged_seeded_ok(self):
        bad = mod(
            """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
            """,
            name="repro.workload.bad",
        )
        found = run_module(self.checker, bad)
        assert [d.code for d in found] == ["RPR001"]
        assert "unseeded" in found[0].message

        good = mod(
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).random()
            """,
            name="repro.workload.ok",
        )
        assert run_module(self.checker, good) == []

    def test_legacy_numpy_global_api_flagged(self):
        bad = mod(
            "import numpy as np\nx = np.random.rand(3)\n",
            name="repro.verify.bad",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1 and "legacy global numpy RNG" in found[0].message

    def test_wall_clock_read_flagged(self):
        bad = mod(
            "import time\n\ndef stamp():\n    return time.time()\n",
            name="repro.core.clockish",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1 and "wall-clock" in found[0].message

    def test_set_iteration_flagged_sorted_ok(self):
        bad = mod(
            """
            def order(ids):
                for x in set(ids):
                    yield x
            """,
            name="repro.core.iter",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1 and "set order" in found[0].message

        good = mod(
            """
            def order(ids):
                for x in sorted(set(ids)):
                    yield x
            """,
            name="repro.core.iter",
        )
        assert run_module(self.checker, good) == []

    def test_import_from_random_flagged(self):
        bad = mod(
            "from random import shuffle\n", name="repro.workload.imports"
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1 and "global-state" in found[0].message


# -- RPR002 units -------------------------------------------------------------


class TestUnits:
    checker = UnitsChecker()

    def test_infer_unit_suffixes_and_table(self):
        import ast as astmod

        def unit_of(expr: str):
            return infer_unit(astmod.parse(expr, mode="eval").body)

        assert unit_of("total_bytes") == "bytes"
        assert unit_of("self.stale_seconds") == "seconds"
        assert unit_of("hit_count") == "count"
        assert unit_of("costs.control_message") == "bytes"
        assert unit_of("ttl") == "seconds"
        assert unit_of("mystery") is None

    def test_additive_mix_flagged(self):
        bad = mod(
            "total = body_bytes + elapsed_seconds\n", name="repro.core.mix"
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1
        assert found[0].code == "RPR002"
        assert "bytes" in found[0].message and "seconds" in found[0].message

    def test_augmented_mix_and_comparison_flagged(self):
        bad = mod(
            """
            def account(ledger, stale_seconds, request_count):
                ledger.total_bytes += stale_seconds
                if stale_seconds > request_count:
                    return True
            """,
            name="repro.core.mix2",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 2
        assert {"augmented" in d.message or "comparison" in d.message
                for d in found} == {True}

    def test_same_unit_and_conversions_clean(self):
        good = mod(
            """
            def account(header_bytes, body_bytes, seconds_per_byte):
                total_bytes = header_bytes + body_bytes
                transfer_seconds = total_bytes * seconds_per_byte
                return total_bytes, transfer_seconds
            """,
            name="repro.core.okunits",
        )
        assert run_module(self.checker, good) == []

    # -- PR 8 blind-spot regressions (these passed unflagged before) ---------

    def test_delay_s_suffix_in_augmented_assignment(self):
        # Blind spot 1: ``_s`` (the repo's delay_s spelling) carried no
        # unit, so this accounting bug sailed through.
        bad = mod(
            """
            def account(ledger, delay_s):
                ledger.total_bytes += delay_s
            """,
            name="repro.core.blind1",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1
        assert "augmented assignment" in found[0].message
        assert "seconds" in found[0].message

    def test_min_max_mixing_units(self):
        # Blind spot 2: min()/max() arguments were never compared.
        bad = mod(
            """
            def clamp(total_bytes, delay_s, hit_count):
                a = min(total_bytes, delay_s)
                b = max(hit_count, delay_s, 0)
                return a, b
            """,
            name="repro.core.blind2",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 2
        assert all("min()" in d.message or "max()" in d.message
                   for d in found)
        assert all("meaningless" in d.message for d in found)

    def test_min_max_agreeing_units_propagate(self):
        # min() of two byte counts *is* bytes — and that unit carries
        # into the surrounding expression.
        bad = mod(
            "worst = min(header_bytes, body_bytes) + stale_seconds\n",
            name="repro.core.blind3",
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1
        assert "additive arithmetic" in found[0].message

    def test_min_max_of_unknowns_is_clean(self):
        good = mod(
            "low = min(a, b)\nhigh = max(a, 0, key_thing)\n",
            name="repro.core.blind4",
        )
        assert run_module(self.checker, good) == []


# -- RPR003 conformance -------------------------------------------------------


_PROTO_BASE = """
    import abc

    class ConsistencyProtocol(abc.ABC):
        @property
        @abc.abstractmethod
        def name(self): ...

        @abc.abstractmethod
        def is_fresh(self, entry, t): ...
"""

_SPEC_WITH = """
    def rule_for(protocol):
        kind = type(protocol)
        if kind is GoodProtocol:
            return object()
        return None
"""


class TestConformance:
    checker = ConformanceChecker()

    def _fixture(self, *, exported: bool, dispatched: bool,
                 with_is_fresh: bool = True):
        body = "    @property\n    def name(self):\n        return 'good'\n"
        if with_is_fresh:
            body += "    def is_fresh(self, entry, t):\n        return True\n"
        proto = mod(
            textwrap.dedent(_PROTO_BASE)
            + "\nclass GoodProtocol(ConsistencyProtocol):\n" + body,
            name="repro.core.protocols.good",
        )
        init = mod(
            "__all__ = ['GoodProtocol']\n" if exported else "__all__ = []\n",
            name="repro.core.protocols",
        )
        spec = mod(
            _SPEC_WITH if dispatched else "def rule_for(protocol):\n"
            "    return None\n",
            name="repro.verify.spec",
        )
        return proto, init, spec

    def test_conforming_protocol_clean(self):
        found = run_project(
            self.checker, *self._fixture(exported=True, dispatched=True)
        )
        assert found == []

    def test_missing_hook_flagged(self):
        found = run_project(
            self.checker,
            *self._fixture(exported=True, dispatched=True,
                           with_is_fresh=False),
        )
        assert len(found) == 1
        assert found[0].code == "RPR003"
        assert "is_fresh" in found[0].message

    def test_unexported_protocol_flagged(self):
        found = run_project(
            self.checker, *self._fixture(exported=False, dispatched=True)
        )
        assert len(found) == 1 and "__all__" in found[0].message

    def test_missing_spec_rule_flagged(self):
        found = run_project(
            self.checker, *self._fixture(exported=True, dispatched=False)
        )
        assert len(found) == 1 and "rule_for" in found[0].message

    def test_unregistered_experiment_flagged(self):
        registry = mod(
            "from repro.experiments import table1\n"
            "_MODULES = (table1,)\n",
            name="repro.experiments.registry",
        )
        orphan = mod(
            "EXPERIMENT_ID = 'figure9'\n", name="repro.experiments.figure9"
        )
        listed = mod(
            "EXPERIMENT_ID = 'table1'\n", name="repro.experiments.table1"
        )
        found = run_project(self.checker, registry, orphan, listed)
        assert len(found) == 1
        assert "figure9" in found[0].message
        assert "_MODULES" in found[0].message


# -- RPR004 oracle exhaustiveness ---------------------------------------------


def _simulator(kinds: str, emits: list) -> ModuleInfo:
    lines = [f"EVENT_KINDS: tuple = ({kinds})", "", "class Simulation:",
             "    def run(self):"]
    for k in emits:
        lines.append(f"        self._observe({k!r}, 1.0)")
    if not emits:
        lines.append("        pass")
    return ModuleInfo.from_source(
        "\n".join(lines) + "\n", name="repro.core.simulator"
    )


def _spec(replays: list) -> ModuleInfo:
    lines = ["class SpecModel:", "    def run(self):", "        pass"]
    for k in replays:
        lines.append(f"    def on_{k}(self):")
        lines.append(f"        self.events.append(({k!r}, 1.0))")
    return ModuleInfo.from_source(
        "\n".join(lines) + "\n", name="repro.verify.spec"
    )


class TestEventExhaustiveness:
    checker = EventExhaustivenessChecker()

    def test_matching_alphabets_clean(self):
        sim = _simulator("'hit', 'miss'", ["hit", "miss"])
        spec = _spec(["hit", "miss"])
        assert run_project(self.checker, sim, spec) == []

    def test_undeclared_emission_flagged(self):
        sim = _simulator("'hit',", ["hit", "miss"])
        found = run_project(self.checker, sim, _spec(["hit", "miss"]))
        assert any(
            "'miss'" in d.message and "not declared" in d.message
            for d in found
        )

    def test_dead_alphabet_entry_flagged(self):
        sim = _simulator("'hit', 'miss'", ["hit"])
        found = run_project(self.checker, sim, _spec(["hit"]))
        assert any("never emits" in d.message for d in found)

    def test_spec_missing_handler_flagged(self):
        sim = _simulator("'hit', 'miss'", ["hit", "miss"])
        found = run_project(self.checker, sim, _spec(["hit"]))
        assert len(found) == 1
        assert found[0].code == "RPR004"
        assert "no handler" in found[0].message

    def test_spec_alien_event_flagged(self):
        sim = _simulator("'hit',", ["hit"])
        found = run_project(self.checker, sim, _spec(["hit", "warp"]))
        assert len(found) == 1
        assert "'warp'" in found[0].message


# -- RPR005 hygiene -----------------------------------------------------------


class TestHygiene:
    checker = HygieneChecker()

    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "list()",
                                         "dict()"])
    def test_mutable_default_flagged(self, default):
        bad = mod(
            f"def f(x, acc={default}):\n    return acc\n", name="anything"
        )
        found = run_module(self.checker, bad)
        assert len(found) == 1
        assert found[0].code == "RPR005"
        assert "mutable default" in found[0].message

    def test_none_default_clean(self):
        good = mod(
            "def f(x, acc=None):\n    acc = acc or []\n    return acc\n",
            name="anything",
        )
        assert run_module(self.checker, good) == []

    def test_shadowed_builtin_assignment_flagged(self):
        bad = mod("list = [1, 2]\n", name="anything")
        found = run_module(self.checker, bad)
        assert len(found) == 1 and "shadows the builtin" in found[0].message

    def test_shadowed_builtin_param_and_loop_flagged(self):
        bad = mod(
            """
            def f(id):
                for type in range(3):
                    pass
            """,
            name="anything",
        )
        found = run_module(self.checker, bad)
        assert sorted("id" in d.message or "type" in d.message
                      for d in found) == [True, True]

    def test_domain_names_not_flagged(self):
        good = mod(
            "size_bytes = 10\nrequest_count = 2\nentry_id = 'x'\n",
            name="anything",
        )
        assert run_module(self.checker, good) == []


# -- RPR006 observability names -----------------------------------------------


NAMES_SOURCE = """
METRIC_NAMES = ("cache.stores", "engine.tasks")
SPAN_NAMES = ("engine.task",)
TRACE_MARK_NAMES = ()
"""

MARK_NAMES_SOURCE = """
METRIC_NAMES = ("cache.stores",)
SPAN_NAMES = ()
TRACE_MARK_NAMES = ("live.trace.send", "live.trace.recv")
"""


def obs_names_module(source: str = NAMES_SOURCE) -> ModuleInfo:
    return mod(source, name="repro.obs.names",
               path="src/repro/obs/names.py")


class TestObsNames:
    checker = ObsNameChecker()

    def test_declared_and_live_names_clean(self):
        user = mod(
            """
            from repro.obs import registry as obs_metrics
            from repro.obs import trace as obs_trace

            obs_metrics.emit("cache.stores")
            obs_metrics.emit("engine.tasks", 2.0)
            obs_trace.span("engine.task", 0.5, index=3)
            """,
            name="repro.core.cache",
        )
        assert run_project(self.checker, obs_names_module(), user) == []

    def test_undeclared_metric_name_flagged(self):
        user = mod(
            'emit("cache.stores")\nemit("cache.storse")\n'
            'emit("engine.tasks")\n'
            'span("engine.task", 0.1)\nspan("engine.tsak", 0.1)\n',
            name="repro.core.cache",
        )
        found = run_project(self.checker, obs_names_module(), user)
        messages = sorted(d.message for d in found)
        assert len(found) == 2
        assert "'cache.storse'" in messages[0]
        assert "'engine.tsak'" in messages[1]

    def test_undeclared_mark_kind_flagged(self):
        user = mod(
            'emit("cache.stores")\n'
            'mark("live.trace.send", "r0", 1.0)\n'
            'mark("live.trace.recv", "r0", 1.1)\n'
            'mark("live.trace.sned", "r0", 1.2)\n',
            name="repro.live.driver",
        )
        found = run_project(
            self.checker, obs_names_module(MARK_NAMES_SOURCE), user
        )
        assert len(found) == 1
        assert "'live.trace.sned'" in found[0].message
        assert "TRACE_MARK_NAMES" in found[0].message

    def test_dead_mark_entry_flagged(self):
        user = mod(
            'emit("cache.stores")\n'
            'mark("live.trace.send", "r0", 1.0)\n',
            name="repro.live.driver",
        )
        found = run_project(
            self.checker, obs_names_module(MARK_NAMES_SOURCE), user
        )
        assert len(found) == 1
        assert "'live.trace.recv'" in found[0].message
        assert "dead alphabet" in found[0].message

    def test_missing_mark_alphabet_flagged(self):
        source = (
            'METRIC_NAMES = ("cache.stores",)\nSPAN_NAMES = ()\n'
        )
        user = mod('emit("cache.stores")\n', name="repro.core.cache")
        found = run_project(
            self.checker, obs_names_module(source), user
        )
        assert len(found) == 1
        assert "TRACE_MARK_NAMES" in found[0].message

    def test_dead_alphabet_entry_flagged(self):
        user = mod('emit("cache.stores")\nspan("engine.task", 0.1)\n',
                   name="repro.core.cache")
        found = run_project(self.checker, obs_names_module(), user)
        assert len(found) == 1
        assert "'engine.tasks'" in found[0].message
        assert "dead alphabet" in found[0].message

    def test_table_driven_names_stay_live(self):
        # Names emitted through a variable stay live via the dict
        # literal holding them (the EVENT_METRICS pattern in trace.py).
        user = mod(
            """
            TABLE = {"evt": "engine.tasks"}
            def tee(kind):
                emit(TABLE[kind])
            emit("cache.stores")
            span("engine.task", 0.1)
            """,
            name="repro.obs.trace",
        )
        assert run_project(self.checker, obs_names_module(), user) == []

    def test_variable_first_argument_ignored(self):
        user = mod(
            'name = "anything"\nemit(name)\nspan(name, 0.2)\n'
            'emit("cache.stores")\nemit("engine.tasks")\n'
            'span("engine.task", 0.1)\n',
            name="repro.core.cache",
        )
        assert run_project(self.checker, obs_names_module(), user) == []

    def test_missing_alphabet_flagged(self):
        user = mod('emit("cache.stores")\n', name="repro.core.cache")
        found = run_project(
            self.checker, obs_names_module("x = 1\n"), user
        )
        assert len(found) == 1
        assert "METRIC_NAMES" in found[0].message

    def test_silent_without_names_module(self):
        user = mod('emit("cache.storse")\n', name="repro.core.cache")
        assert run_project(self.checker, user) == []

    def test_obs_package_in_determinism_scope(self):
        # Satellite guarantee: repro.obs itself is held to RPR001, so
        # only the audited clock shim may read wall time.
        bad = mod("import time\nt = time.perf_counter()\n",
                  name="repro.obs.registry")
        found = run_module(DeterminismChecker(), bad)
        assert len(found) == 1 and "wall-clock" in found[0].message
