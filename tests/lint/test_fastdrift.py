"""RPR008 — fastpath transcription-drift checker.

Includes the mutation smoke test required by the PR 8 issue: a
one-token edit seeded into a copy of kernels.py must be reported.
"""

import shutil
from pathlib import Path

from repro.lint.checkers.fastdrift import FastpathDriftChecker
from repro.lint.project import ModuleInfo, Project, load_project

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"

#: The files the contract spans: the kernel plus every protocol module
#: it transcribes.
CONTRACT_FILES = [
    "repro/fastpath/kernels.py",
    "repro/core/protocols/ttl.py",
    "repro/core/protocols/alex.py",
    "repro/core/protocols/cern.py",
    "repro/core/protocols/polling.py",
    "repro/core/protocols/invalidation.py",
]


def _contract_project(kernel_mutation=None) -> Project:
    """The contract files as a Project, optionally with a kernel edit."""
    modules = []
    for rel in CONTRACT_FILES:
        source = (REPO_SRC / rel).read_text(encoding="utf-8")
        name = "repro." + rel[len("repro/"):-len(".py")].replace("/", ".")
        if kernel_mutation is not None and rel.endswith("kernels.py"):
            old, new = kernel_mutation
            assert old in source, f"mutation target {old!r} not in kernel"
            source = source.replace(old, new)
        modules.append(
            ModuleInfo.from_source(source, path="src/" + rel, name=name)
        )
    return Project(modules)


def _run(project: Project):
    return list(FastpathDriftChecker().check_project(project))


class TestCleanTree:
    def test_shipped_kernel_matches_protocols(self):
        assert _run(_contract_project()) == []

    def test_full_src_tree_is_clean(self):
        project = load_project([REPO_SRC], root=REPO_ROOT)
        assert _run(project) == []

    def test_silent_when_kernel_not_linted(self):
        # Linting a subtree without the kernel checks nothing.
        project = load_project(
            [REPO_SRC / "repro" / "core"], root=REPO_ROOT
        )
        assert _run(project) == []


class TestMutationSmoke:
    """A seeded one-token divergence must fail the drift check."""

    def test_boundary_flip_in_alex_branch_is_reported(self, tmp_path):
        # Copy the contract files into a scratch src tree, flip one
        # token in the kernel's alex branch, and lint the copy.
        for rel in CONTRACT_FILES:
            target = tmp_path / "src" / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(REPO_SRC / rel, target)
        kernel = tmp_path / "src" / "repro" / "fastpath" / "kernels.py"
        source = kernel.read_text(encoding="utf-8")
        assert "if age <= 0.0:" in source
        kernel.write_text(
            source.replace("if age <= 0.0:", "if age < 0.0:"),
            encoding="utf-8",
        )
        project = load_project([tmp_path / "src"], root=tmp_path)
        diags = _run(project)
        assert len(diags) == 1
        d = diags[0]
        assert d.code == "RPR008"
        assert "KIND_ALEX" in d.message
        assert "AlexProtocol.is_fresh" in d.message
        # The because chain cites the protocol reference.
        assert any("alex.py" in b.path for b in d.because)

    def test_comparison_flip_in_ttl_branch(self):
        diags = _run(_contract_project((
            "fresh = (t - validated_at[i]) < p0\n        elif kind == KIND_ALEX",
            "fresh = (t - validated_at[i]) <= p0\n        elif kind == KIND_ALEX",
        )))
        assert len(diags) == 1
        assert "KIND_TTL" in diags[0].message

    def test_dropped_max_ttl_clamp_in_stamp(self):
        diags = _run(_contract_project(("ttl = min(ttl, p2)", "ttl = p2")))
        # The clamp appears in every stamp block; each drifted site is
        # reported at its own line.
        assert len(diags) == 5
        assert all("_derive_expiry" in d.message for d in diags)
        assert len({d.line for d in diags}) == 5

    def test_and_to_or_in_leased_branch(self):
        diags = _run(_contract_project((
            "fresh = valid[i] and t - validated_at[i] < p0",
            "fresh = valid[i] or t - validated_at[i] < p0",
        )))
        assert len(diags) == 1
        assert "KIND_LEASED" in diags[0].message


class TestAnchors:
    def test_missing_freshness_anchor_is_reported(self):
        diags = _run(_contract_project((
            "# repro-fastpath-begin: freshness", "# (anchor removed)",
        )))
        assert any("repro-fastpath-begin" in d.message for d in diags)

    def test_missing_stamp_anchors_are_reported(self):
        diags = _run(_contract_project((
            "# repro-fastpath: cern-stamp", "# (anchor removed)",
        )))
        assert any("cern-stamp" in d.message for d in diags)

    def test_missing_protocol_module_is_reported(self):
        project = _contract_project()
        pruned = Project(
            [m for m in project.modules if "alex" not in m.name]
        )
        diags = list(FastpathDriftChecker().check_project(pruned))
        assert any(
            "KIND_ALEX" in d.message and "not among the linted files"
            in d.message
            for d in diags
        )
