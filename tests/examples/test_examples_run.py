"""Every example script runs to completion and prints its story.

The examples are the library's front door; a broken one is a bug.  Each
is executed in-process (imported as a module and its ``main`` called)
with reduced arguments where the script supports them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    """Execute an example script as __main__ with the given argv."""
    script = EXAMPLES_DIR / name
    assert script.exists(), script
    old_argv = sys.argv
    sys.argv = [str(script), *argv]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "invalidation" in out
        assert "stale rate" in out

    def test_campus_proxy(self, tmp_path, capsys):
        out = run_example(
            "campus_proxy.py", ["--log", str(tmp_path / "hcs.log")], capsys
        )
        assert "wrote" in out
        assert "alex(10%)" in out

    def test_tune_stale_rate(self, capsys):
        out = run_example(
            "tune_stale_rate.py", ["--scale", "0.1", "--budget", "0.05"],
            capsys,
        )
        assert "recommended threshold" in out

    def test_news_site(self, capsys):
        out = run_example("news_site.py", [], capsys)
        assert "expires" in out
        assert "112" in out   # one validation per page per edition

    def test_hierarchy_bias(self, capsys):
        out = run_example("hierarchy_bias.py", [], capsys)
        assert "c-partial" in out
        assert "never flatters" in out or "never" in out

    def test_self_tuning(self, capsys):
        out = run_example("self_tuning.py", [], capsys)
        assert "self-tuning" in out
        assert "learned per-type thresholds" in out

    def test_capacity_planning(self, capsys):
        out = run_example(
            "capacity_planning.py", ["--requests", "4000"], capsys
        )
        assert "unbounded" in out
        assert "lfu" in out
