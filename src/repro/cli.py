"""The ``repro`` command-line tool.

Four subcommands cover the workflows a downstream user has:

* ``repro synthesize`` — generate a synthetic campus/Worrell trace and
  write it to disk as an extended Common-Log-Format file.
* ``repro stats`` — compute Table-1-style mutability statistics from an
  extended CLF file (yours or a synthesized one).
* ``repro simulate`` — drive one consistency protocol over a trace file
  and report bandwidth / miss / stale / server-load numbers.
* ``repro sweep`` — sweep a protocol parameter over a trace file and
  print the trade-off table.
* ``repro lint`` — run the :mod:`repro.lint` static invariant analysis
  over a source tree (see docs/DEVELOPING.md for the checker codes).

Examples::

    repro synthesize hcs /tmp/hcs.log --seed 7
    repro stats /tmp/hcs.log
    repro simulate /tmp/hcs.log --protocol alex --parameter 10
    repro sweep /tmp/hcs.log --protocol ttl --workers 4

``sweep`` runs its points through the :mod:`repro.runtime` process-pool
engine: ``--workers N`` (or the ``REPRO_WORKERS`` environment variable)
fans them out with identical output; see ``docs/PERFORMANCE.md``.

The ``simulate``/``sweep`` commands reconstruct the origin server's
modification schedules from the trace's Last-Modified extension: a
modification is materialized at each observed Last-Modified transition.
Changes invisible to the log (never straddled by requests) cannot be
recovered — the same limitation the paper's own methodology has.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.report import format_table, pct
from repro.core.clock import hours
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.simulator import SimulatorMode
from repro.faults import FaultSpec, parse_faults
from repro.runtime import map_ordered
from repro.verify import checked_simulate, set_enabled
from repro.trace.reconstruct import server_from_trace, workload_from_trace
from repro.trace.records import Trace
from repro.trace.stats import mutability_from_trace
from repro.trace.synthesis import read_trace, trace_from_workload, write_trace
from repro.workload.campus import CAMPUS_SERVERS, CampusWorkload
from repro.workload.worrell import WorrellWorkload

_CAMPUS_BY_NAME = {spec.name.lower(): spec for spec in CAMPUS_SERVERS}

PROTOCOLS = (
    "alex", "ttl", "invalidation", "leased", "poll", "cern", "selftuning",
)


def build_protocol(name: str, parameter: float) -> ConsistencyProtocol:
    """Construct a protocol from its CLI name and parameter.

    The parameter means: Alex — update threshold in percent; TTL — hours;
    leased — the lease term in hours; CERN — the Last-Modified fraction;
    self-tuning — the initial threshold in percent.  Invalidation and
    poll ignore it.

    Raises:
        ValueError: for an unknown protocol name.
    """
    key = name.lower()
    if key == "alex":
        return AlexProtocol.from_percent(parameter)
    if key == "ttl":
        return TTLProtocol(hours(parameter))
    if key == "invalidation":
        return InvalidationProtocol()
    if key == "leased":
        return LeasedInvalidationProtocol(hours(parameter))
    if key == "poll":
        return PollEveryRequestProtocol()
    if key == "cern":
        return CERNPolicyProtocol(lm_fraction=parameter / 100.0)
    if key == "selftuning":
        return SelfTuningProtocol(initial_threshold=parameter / 100.0)
    raise ValueError(
        f"unknown protocol {name!r}; choose from {', '.join(PROTOCOLS)}"
    )


# -- subcommand implementations -----------------------------------------------


def cmd_synthesize(args: argparse.Namespace) -> int:
    """Generate a trace and write it as extended CLF."""
    name = args.workload.lower()
    if name in _CAMPUS_BY_NAME:
        workload = CampusWorkload(
            _CAMPUS_BY_NAME[name], seed=args.seed,
            request_scale=args.scale,
        ).build()
    elif name == "worrell":
        workload = WorrellWorkload(
            files=max(10, int(2085 * args.scale)),
            requests=max(100, int(100_000 * args.scale)),
            seed=args.seed,
        ).build()
    else:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{', '.join([*_CAMPUS_BY_NAME, 'worrell'])}",
              file=sys.stderr)
        return 2
    trace = trace_from_workload(workload)
    lines = write_trace(trace, args.output)
    print(f"wrote {lines} records ({workload.file_count} objects, "
          f"{workload.total_changes} modifications) to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print Table-1-style statistics for a trace file."""
    trace = read_trace(args.trace)
    stats = mutability_from_trace(trace)
    print(format_table(
        ("Server", "Files", "Requests", "% Remote", "Total Changes",
         "% Mutable", "% Very Mutable"),
        [stats.as_row()],
        title=f"observable mutability statistics for {args.trace}:",
    ))
    days = trace.duration / 86_400 if trace.duration else 0.0
    if days and stats.files:
        prob = stats.total_changes / (stats.files * days)
        print(f"\nper-file per-day observed change probability: "
              f"{100 * prob:.2f}% over {days:.1f} days")
    return 0


def _simulate_trace(
    trace: Trace,
    protocol: ConsistencyProtocol,
    mode: SimulatorMode,
    faults_spec: Optional[FaultSpec] = None,
):
    workload = workload_from_trace(trace)
    # Unanchored downtime/crash times in the spec resolve against the
    # reconstructed workload's duration.
    faults = (
        faults_spec.build(workload.duration) if faults_spec is not None
        else None
    )
    return checked_simulate(
        workload.server(), protocol, workload.requests, mode,
        end_time=workload.duration, faults=faults,
    )


def _parse_faults_arg(args: argparse.Namespace) -> Optional[FaultSpec]:
    """Parse ``--faults`` off a namespace (absent attribute = no faults).

    Raises:
        ValueError: for a malformed spec (message names the bad field).
    """
    text = getattr(args, "faults", None)
    return parse_faults(text) if text else None


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one protocol over a trace file and print its metrics."""
    if args.verify:
        set_enabled(True)
    trace = read_trace(args.trace)
    try:
        protocol = build_protocol(args.protocol, args.parameter)
        faults_spec = _parse_faults_arg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    mode = SimulatorMode(args.mode)
    result = _simulate_trace(trace, protocol, mode, faults_spec)
    print(format_table(
        ("protocol", "mode", "bandwidth MB", "miss rate", "stale rate",
         "server ops", "round trips/request"),
        [(
            result.protocol_name,
            result.mode,
            f"{result.total_megabytes:.3f}",
            pct(result.miss_rate),
            pct(result.stale_hit_rate),
            result.server_operations,
            f"{result.counters.mean_round_trips:.3f}",
        )],
        title=f"{args.trace}: {len(trace)} requests",
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep a protocol parameter over a trace file."""
    if args.verify:
        # Must happen before map_ordered forks its pool: workers inherit
        # the flag and each one oracle-checks its own sweep points.
        set_enabled(True)
    trace = read_trace(args.trace)
    if args.protocol.lower() == "alex":
        parameters = [float(p) for p in range(0, 101, args.step or 10)]
    elif args.protocol.lower() == "ttl":
        parameters = [float(p) for p in range(0, 501, args.step or 50)]
    else:
        print("sweep supports --protocol alex or ttl", file=sys.stderr)
        return 2
    try:
        faults_spec = _parse_faults_arg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    mode = SimulatorMode(args.mode)
    # One reconstruction serves every sweep point.
    server = server_from_trace(trace)
    requests = trace.requests()
    end = requests[-1][0] if requests else 0.0
    faults = faults_spec.build(end) if faults_spec is not None else None

    def run_point(parameter: float) -> tuple:
        result = checked_simulate(
            server, build_protocol(args.protocol, parameter), requests,
            mode, end_time=end, faults=faults,
        )
        return (
            parameter,
            f"{result.total_megabytes:.3f}",
            pct(result.miss_rate),
            pct(result.stale_hit_rate),
            result.server_operations,
        )

    # Sweep points are independent; fan them out across the engine's
    # process pool (serial for --workers 1, identical output either way).
    rows = map_ordered(run_point, parameters, workers=args.workers)
    inval = checked_simulate(server, InvalidationProtocol(), requests, mode,
                             end_time=end, faults=faults)
    rows.append(
        ("inval", f"{inval.total_megabytes:.3f}", pct(inval.miss_rate),
         pct(inval.stale_hit_rate), inval.server_operations)
    )
    unit = "threshold %" if args.protocol.lower() == "alex" else "TTL hours"
    print(format_table(
        (unit, "MB", "miss", "stale", "server ops"), rows,
        title=f"{args.protocol} sweep over {args.trace} ({mode.value} mode):",
    ))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Forward to the :mod:`repro.lint` CLI (``repro lint [...]``)."""
    from repro.lint.cli import main as lint_main

    forwarded = args.lint_args
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return lint_main(forwarded)


def make_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web cache-consistency simulation toolkit "
                    "(Gwertzman & Seltzer, USENIX 1996).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_syn = sub.add_parser("synthesize",
                           help="generate a synthetic trace file")
    p_syn.add_argument("workload",
                       help="das, fas, hcs, or worrell")
    p_syn.add_argument("output", type=Path, help="output .log path")
    p_syn.add_argument("--seed", type=int, default=0)
    p_syn.add_argument("--scale", type=float, default=1.0)
    p_syn.set_defaults(func=cmd_synthesize)

    p_stats = sub.add_parser("stats",
                             help="mutability statistics from a trace")
    p_stats.add_argument("trace", type=Path)
    p_stats.set_defaults(func=cmd_stats)

    p_sim = sub.add_parser("simulate",
                           help="run one protocol over a trace")
    p_sim.add_argument("trace", type=Path)
    p_sim.add_argument("--protocol", default="alex",
                       choices=list(PROTOCOLS))
    p_sim.add_argument("--parameter", type=float, default=10.0,
                       help="alex/selftuning: threshold %%; ttl/leased: "
                            "hours; cern: LM fraction %%")
    p_sim.add_argument("--mode", default="optimized",
                       choices=[m.value for m in SimulatorMode])
    p_sim.add_argument(
        "--verify", action="store_true",
        help="replay the run through the repro.verify consistency "
             "oracle and fail on any counter/bandwidth divergence",
    )
    p_sim.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject delivery faults, e.g. "
             "'loss=0.05,downtime=2h,retries=3' (see docs/FAULTS.md)",
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_sweep = sub.add_parser("sweep",
                             help="sweep alex/ttl parameters over a trace")
    p_sweep.add_argument("trace", type=Path)
    p_sweep.add_argument("--protocol", default="alex",
                         choices=["alex", "ttl"])
    p_sweep.add_argument("--step", type=int, default=None)
    p_sweep.add_argument("--mode", default="optimized",
                         choices=[m.value for m in SimulatorMode])
    p_sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for the sweep points (default: "
             "$REPRO_WORKERS, else 1 = serial; output is identical "
             "either way — see docs/PERFORMANCE.md)",
    )
    p_sweep.add_argument(
        "--verify", action="store_true",
        help="oracle-check every sweep point (workers inherit the flag; "
             "see docs/PROTOCOLS.md 'Invariants & verification')",
    )
    p_sweep.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject the same delivery faults into every sweep point "
             "(see docs/FAULTS.md)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_lint = sub.add_parser(
        "lint",
        help="run the static invariant linter (RPR001-RPR005 + baseline)",
    )
    p_lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER, metavar="...",
        help="arguments forwarded to repro-lint (try 'repro lint -- "
             "--list-codes')",
    )
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
