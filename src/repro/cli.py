"""The ``repro`` command-line tool.

The subcommands cover the workflows a downstream user has:

* ``repro synthesize`` — generate a synthetic campus/Worrell trace and
  write it to disk as an extended Common-Log-Format file.
* ``repro stats`` — compute Table-1-style mutability statistics from an
  extended CLF file (yours or a synthesized one).
* ``repro simulate`` — drive one consistency protocol over a trace file
  and report bandwidth / miss / stale / server-load numbers.
* ``repro sweep`` — sweep a protocol parameter over a trace file and
  print the trade-off table.
* ``repro profile`` — run a reduced-scale sweep with profiling on and
  print the engine phase breakdown plus per-protocol-hook self-time.
* ``repro metrics`` — render a ``--metrics`` JSON dump (pretty JSON or
  Prometheus 0.0.4 text exposition).
* ``repro lint`` — run the :mod:`repro.lint` static invariant analysis
  over a source tree (see docs/DEVELOPING.md for the checker codes).
* ``repro replay`` — replay a trace through the live asyncio
  origin+proxy pair (:mod:`repro.live`) on loopback sockets;
  ``--verify`` additionally simulates the same trace and fails unless
  every counter and bandwidth-ledger cell matches exactly
  (``docs/LIVE.md``).
* ``repro serve`` — boot the live origin and proxy on fixed ports and
  leave them running for ad-hoc exploration (curl, browsers).
* ``repro trace`` — merge the per-role JSONL trace files a traced live
  replay wrote (``repro replay --trace PATH``) into one validated
  causal timeline (schema ``repro.trace/2``), and analyze it:
  ``merge`` / ``summarize`` / ``grep`` / ``critical-path``
  (``docs/OBSERVABILITY.md``).

``simulate`` and ``sweep`` accept ``--trace PATH`` / ``--metrics PATH``
to capture a structured event trace and the merged metrics registry
(``docs/OBSERVABILITY.md``); both are byte-identical across worker
counts.  ``simulate``, ``sweep``, and ``profile`` also accept
``--engine fast|reference`` to pick the simulator engine
(``docs/FASTPATH.md``); output is byte-identical either way.

Examples::

    repro synthesize hcs /tmp/hcs.log --seed 7
    repro stats /tmp/hcs.log
    repro simulate /tmp/hcs.log --protocol alex --parameter 10
    repro sweep /tmp/hcs.log --protocol ttl --workers 4

``sweep`` runs its points through the :mod:`repro.runtime` process-pool
engine: ``--workers N`` (or the ``REPRO_WORKERS`` environment variable)
fans them out with identical output; see ``docs/PERFORMANCE.md``.

The ``simulate``/``sweep`` commands reconstruct the origin server's
modification schedules from the trace's Last-Modified extension: a
modification is materialized at each observed Last-Modified transition.
Changes invisible to the log (never straddled by requests) cannot be
recovered — the same limitation the paper's own methodology has.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.analysis.report import format_table, pct
from repro.core.protocols import InvalidationProtocol
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.protocols.factory import PROTOCOLS, build_protocol
from repro.core.simulator import SimulatorMode
from repro.fastpath import ENGINES, FAST, REFERENCE, resolve_engine, set_engine
from repro.faults import FaultSpec, parse_faults
from repro.obs import clock as obs_clock
from repro.obs import profile as obs_profile
from repro.obs import prom as obs_prom
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_tracing
from repro.runtime import map_ordered
from repro.verify import ConsistencyViolation, checked_simulate, set_enabled
from repro.verify.oracle import runs_verified
from repro.trace.reconstruct import server_from_trace, workload_from_trace
from repro.trace.records import Trace
from repro.trace.stats import mutability_from_trace
from repro.trace.synthesis import read_trace, trace_from_workload, write_trace
from repro.workload.campus import CAMPUS_SERVERS, CampusWorkload
from repro.workload.worrell import WorrellWorkload

_CAMPUS_BY_NAME = {spec.name.lower(): spec for spec in CAMPUS_SERVERS}



# -- observability plumbing ---------------------------------------------------


@contextmanager
def _observability(
    args: argparse.Namespace, *, ensure_registry: bool = False
) -> Iterator[None]:
    """Install the trace sink / metrics registry the flags ask for.

    ``--metrics PATH`` installs a fresh :class:`~repro.obs.MetricsRegistry`
    and dumps it as JSON on exit; ``--trace PATH`` installs a
    :class:`~repro.obs.TraceSink` and writes JSONL on exit.  Both are
    flushed even when the command fails — a trace of a failing run is
    exactly when you want one.  ``ensure_registry`` installs a registry
    without a dump file (the ``--verify`` accounting path uses it to
    merge ``verify.runs`` across pool workers).
    """
    metrics_path: Optional[Path] = getattr(args, "metrics_out", None)
    trace_path: Optional[Path] = getattr(args, "trace_out", None)
    need_registry = metrics_path is not None or (
        ensure_registry and obs_registry.active() is None
    )
    registry = obs_registry.MetricsRegistry() if need_registry else None
    sink = obs_tracing.TraceSink() if trace_path is not None else None
    previous_registry = (
        obs_registry.install(registry) if registry is not None else None
    )
    previous_sink = obs_tracing.install(sink) if sink is not None else None
    try:
        yield
    finally:
        if sink is not None:
            obs_tracing.install(previous_sink)
            lines = obs_tracing.write_jsonl(sink, trace_path)
            print(f"trace: wrote {lines} line(s) to {trace_path}",
                  file=sys.stderr)
        if registry is not None:
            obs_registry.install(previous_registry)
            if metrics_path is not None:
                metrics_path.write_text(
                    json.dumps(
                        registry.as_dict(), indent=2, sort_keys=True
                    ) + "\n",
                    encoding="utf-8",
                )
                print(f"metrics: wrote {metrics_path}", file=sys.stderr)


def _verified_since(registry_before: float, parent_before: int) -> int:
    """Runs the oracle verified since the recorded baselines.

    Prefers the merged ``verify.runs`` counter (covers pool workers,
    whose increments never reach the parent's in-process count); falls
    back to the per-process count when no registry is installed.
    """
    registry = obs_registry.active()
    if registry is not None:
        return int(registry.counter("verify.runs").value - registry_before)
    return runs_verified() - parent_before


def _print_oracle_failure(
    verified: int,
    faults_spec: Optional[FaultSpec],
    faults_text: Optional[str],
) -> None:
    """The ``--verify`` failure-path context (exit code 1 follows)."""
    print(
        f"oracle: {verified} run(s) verified before the divergence",
        file=sys.stderr,
    )
    if faults_spec is not None:
        print(
            f"oracle: fault spec in effect: {faults_text!r} "
            f"(retries={faults_spec.retries}, "
            f"loss_rate={faults_spec.loss_rate:g}, "
            f"delay={faults_spec.delay:g}s)",
            file=sys.stderr,
        )


def _add_engine_flag(
    parser: argparse.ArgumentParser, default: Optional[str] = None
) -> None:
    """The shared ``--engine`` selection flag.

    ``None`` (the usual default) leaves resolution to
    :func:`repro.fastpath.resolve_engine` — ``REPRO_ENGINE`` if set,
    else the fast engine.  ``repro profile`` defaults to ``reference``
    instead, because the per-hook self-time table only exists when the
    reference loop calls the protocol hooks.
    """
    parser.add_argument(
        "--engine", default=default, choices=list(ENGINES),
        help="simulator engine: 'fast' (batched repro.fastpath kernel, "
             "byte-identical output, automatic reference fallback for "
             "unsupported configurations) or 'reference' "
             "(repro.core.simulator throughout); default: $REPRO_ENGINE, "
             "else fast — see docs/FASTPATH.md"
             + (" (this subcommand defaults to reference)" if default
                else ""),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--metrics`` output flags."""
    parser.add_argument(
        "--trace", dest="trace_out", type=Path, default=None, metavar="PATH",
        help="write a structured JSONL trace of every simulator event "
             "and engine span to PATH (schema repro.trace/1; see "
             "docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--metrics", dest="metrics_out", type=Path, default=None,
        metavar="PATH",
        help="write the merged metrics registry as JSON to PATH "
             "(schema repro.metrics/1; render with 'repro metrics')",
    )


# -- subcommand implementations -----------------------------------------------


def cmd_synthesize(args: argparse.Namespace) -> int:
    """Generate a trace and write it as extended CLF."""
    name = args.workload.lower()
    if name in _CAMPUS_BY_NAME:
        workload = CampusWorkload(
            _CAMPUS_BY_NAME[name], seed=args.seed,
            request_scale=args.scale,
        ).build()
    elif name == "worrell":
        workload = WorrellWorkload(
            files=max(10, int(2085 * args.scale)),
            requests=max(100, int(100_000 * args.scale)),
            seed=args.seed,
        ).build()
    else:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{', '.join([*_CAMPUS_BY_NAME, 'worrell'])}",
              file=sys.stderr)
        return 2
    trace = trace_from_workload(workload)
    lines = write_trace(trace, args.output)
    print(f"wrote {lines} records ({workload.file_count} objects, "
          f"{workload.total_changes} modifications) to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print Table-1-style statistics for a trace file."""
    trace = read_trace(args.trace)
    stats = mutability_from_trace(trace)
    print(format_table(
        ("Server", "Files", "Requests", "% Remote", "Total Changes",
         "% Mutable", "% Very Mutable"),
        [stats.as_row()],
        title=f"observable mutability statistics for {args.trace}:",
    ))
    days = trace.duration / 86_400 if trace.duration else 0.0
    if days and stats.files:
        prob = stats.total_changes / (stats.files * days)
        print(f"\nper-file per-day observed change probability: "
              f"{100 * prob:.2f}% over {days:.1f} days")
    return 0


def _simulate_trace(
    trace: Trace,
    protocol: ConsistencyProtocol,
    mode: SimulatorMode,
    faults_spec: Optional[FaultSpec] = None,
):
    workload = workload_from_trace(trace)
    # Unanchored downtime/crash times in the spec resolve against the
    # reconstructed workload's duration.
    faults = (
        faults_spec.build(workload.duration) if faults_spec is not None
        else None
    )
    return checked_simulate(
        workload.server(), protocol, workload.requests, mode,
        end_time=workload.duration, faults=faults,
    )


def _parse_faults_arg(args: argparse.Namespace) -> Optional[FaultSpec]:
    """Parse ``--faults`` off a namespace (absent attribute = no faults).

    Raises:
        ValueError: for a malformed spec (message names the bad field).
    """
    text = getattr(args, "faults", None)
    return parse_faults(text) if text else None


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one protocol over a trace file and print its metrics."""
    if getattr(args, "engine", None):
        set_engine(args.engine)
    if args.verify:
        set_enabled(True)
    trace = read_trace(args.trace)
    try:
        protocol = build_protocol(args.protocol, args.parameter)
        faults_spec = _parse_faults_arg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    mode = SimulatorMode(args.mode)
    with _observability(args, ensure_registry=args.verify):
        verified_parent = runs_verified()
        registry = obs_registry.active()
        verified_base = (
            registry.counter("verify.runs").value
            if registry is not None else 0.0
        )
        try:
            result = _simulate_trace(trace, protocol, mode, faults_spec)
        except ConsistencyViolation as exc:
            print(exc, file=sys.stderr)
            _print_oracle_failure(
                _verified_since(verified_base, verified_parent),
                faults_spec, getattr(args, "faults", None),
            )
            return 1
        verified = _verified_since(verified_base, verified_parent)
    print(format_table(
        ("protocol", "mode", "bandwidth MB", "miss rate", "stale rate",
         "server ops", "round trips/request"),
        [(
            result.protocol_name,
            result.mode,
            f"{result.total_megabytes:.3f}",
            pct(result.miss_rate),
            pct(result.stale_hit_rate),
            result.server_operations,
            f"{result.counters.mean_round_trips:.3f}",
        )],
        title=f"{args.trace}: {len(trace)} requests",
    ))
    if args.verify:
        # stderr, like the trace/metrics notices: the result table on
        # stdout stays byte-identical with and without --verify.
        print(f"oracle: {verified} run(s) verified, zero divergence",
              file=sys.stderr)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep a protocol parameter over a trace file."""
    if getattr(args, "engine", None):
        # Must also precede the fork: set_engine mirrors the choice into
        # REPRO_ENGINE so pool workers resolve the same engine.
        set_engine(args.engine)
    if args.verify:
        # Must happen before map_ordered forks its pool: workers inherit
        # the flag and each one oracle-checks its own sweep points.
        set_enabled(True)
    trace = read_trace(args.trace)
    if args.protocol.lower() == "alex":
        parameters = [float(p) for p in range(0, 101, args.step or 10)]
    elif args.protocol.lower() == "ttl":
        parameters = [float(p) for p in range(0, 501, args.step or 50)]
    else:
        print("sweep supports --protocol alex or ttl", file=sys.stderr)
        return 2
    try:
        faults_spec = _parse_faults_arg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    mode = SimulatorMode(args.mode)
    # One reconstruction serves every sweep point.
    server = server_from_trace(trace)
    requests = trace.requests()
    end = requests[-1][0] if requests else 0.0
    faults = faults_spec.build(end) if faults_spec is not None else None

    def run_point(parameter: float) -> tuple:
        result = checked_simulate(
            server, build_protocol(args.protocol, parameter), requests,
            mode, end_time=end, faults=faults,
        )
        return (
            parameter,
            f"{result.total_megabytes:.3f}",
            pct(result.miss_rate),
            pct(result.stale_hit_rate),
            result.server_operations,
        )

    with _observability(args, ensure_registry=args.verify):
        verified_parent = runs_verified()
        registry = obs_registry.active()
        verified_base = (
            registry.counter("verify.runs").value
            if registry is not None else 0.0
        )
        try:
            # Sweep points are independent; fan them out across the
            # engine's process pool (serial for --workers 1, identical
            # output either way).
            rows = map_ordered(run_point, parameters, workers=args.workers)
            inval = checked_simulate(
                server, InvalidationProtocol(), requests, mode,
                end_time=end, faults=faults,
            )
        except ConsistencyViolation as exc:
            print(exc, file=sys.stderr)
            _print_oracle_failure(
                _verified_since(verified_base, verified_parent),
                faults_spec, getattr(args, "faults", None),
            )
            return 1
        verified = _verified_since(verified_base, verified_parent)
    rows.append(
        ("inval", f"{inval.total_megabytes:.3f}", pct(inval.miss_rate),
         pct(inval.stale_hit_rate), inval.server_operations)
    )
    unit = "threshold %" if args.protocol.lower() == "alex" else "TTL hours"
    print(format_table(
        (unit, "MB", "miss", "stale", "server ops"), rows,
        title=f"{args.protocol} sweep over {args.trace} ({mode.value} mode):",
    ))
    if args.verify:
        print(f"oracle: {verified} run(s) verified, zero divergence",
              file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a reduced-scale sweep: engine phases + protocol hook time."""
    from repro.analysis.sweep import sweep_protocol
    from repro.obs.profile import ProfiledProtocol
    from repro.workload.worrell import WorrellWorkload

    if getattr(args, "engine", None):
        set_engine(args.engine)
    engine = resolve_engine()
    if args.protocol.lower() == "alex":
        parameters = [float(p) for p in range(0, 101, args.step or 20)]
    elif args.protocol.lower() == "ttl":
        parameters = [float(p) for p in range(0, 501, args.step or 100)]
    else:
        print("profile supports --protocol alex or ttl", file=sys.stderr)
        return 2
    workload = WorrellWorkload(
        files=max(10, int(2085 * args.scale)),
        requests=max(100, int(100_000 * args.scale)),
        seed=args.seed,
    ).build()

    # Under the fast engine the protocol stays bare: the batched kernel
    # never calls the per-request hooks (there is nothing for a
    # ProfiledProtocol wrapper to time — and the wrapper would force a
    # reference fallback anyway).  The phase table shows the fast path's
    # own fastpath.compile / fastpath.simulate phases instead.
    def profiled_protocol(parameter: float) -> ConsistencyProtocol:
        protocol = build_protocol(args.protocol, parameter)
        if engine == FAST:
            return protocol
        return ProfiledProtocol(protocol)

    obs_profile.reset()
    obs_profile.enable()
    try:
        started = obs_clock.monotonic()
        sweep_protocol(
            [workload],
            profiled_protocol,
            parameters,
            SimulatorMode(args.mode),
            family=args.protocol,
            include_invalidation=False,
            workers=args.workers,
        )
        total_wall = obs_clock.monotonic() - started
    finally:
        obs_profile.disable()
    print(
        f"{args.protocol} sweep, {len(parameters)} grid point(s), "
        f"scale {args.scale:g}, seed {args.seed}, engine {engine}:"
    )
    print()
    print(obs_profile.render_report(total_wall))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a ``--metrics`` dump (JSON pretty-print or Prometheus)."""
    try:
        dump = json.loads(args.dump.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"{args.dump}: {exc}", file=sys.stderr)
        return 2
    if args.format == "prom":
        try:
            rendered = obs_prom.render(dump)
        except ValueError as exc:
            print(f"{args.dump}: {exc}", file=sys.stderr)
            return 2
        sys.stdout.write(rendered)
    else:
        if dump.get("schema") != obs_registry.SCHEMA:
            print(
                f"{args.dump}: not a {obs_registry.SCHEMA} dump "
                f"(schema={dump.get('schema')!r})",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(dump, indent=2, sort_keys=True))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Merge and analyze the per-role trace files of a traced live replay.

    All verbs start from the driver's trace file (``repro replay
    --trace PATH``) and locate the ``.proxy`` / ``.origin`` companions
    automatically.  ``merge`` prints the ``repro.trace/2`` timeline and
    exits 1 when a happens-before edge is violated; ``summarize``,
    ``grep``, and ``critical-path`` are read-only analyses over the
    merged timeline.
    """
    from repro.obs import timeline

    try:
        merged = timeline.merge(args.trace)
    except (OSError, ValueError) as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    violations = timeline.validate(merged)
    verb = args.trace_command
    if verb == "merge":
        if args.format == "json":
            merged["violations"] = violations
            print(json.dumps(merged, sort_keys=True))
        else:
            print(
                f"{len(merged['records'])} record(s) merged from "
                f"{len(merged['roles'])} role file(s):"
            )
            for proc, name in sorted(merged["roles"].items()):
                print(f"  {proc}: {name}")
        for violation in violations:
            print(f"trace: violation: {violation}", file=sys.stderr)
        return 1 if violations else 0
    if verb == "summarize":
        summary = timeline.summarize(merged)
        if args.format == "json":
            print(json.dumps(summary, sort_keys=True))
            return 0
        print(format_table(
            ("span", "count", "total s", "mean s", "max s"),
            [
                (
                    name,
                    entry["count"],
                    f"{entry['wall_total']:.6f}",
                    f"{entry['wall_mean']:.6f}",
                    f"{entry['wall_max']:.6f}",
                )
                for name, entry in sorted(summary["spans"].items())
            ],
            title=f"{args.trace}: {summary['exchanges']} exchange(s)",
        ))
        for kind, count in sorted(summary["marks"].items()):
            print(f"mark {kind}: {count}")
        print(f"retries: {summary['retries']}  "
              f"chaos injected: {summary['chaos_injected']}")
        ages = summary["hit_ages"]
        if ages["count"]:
            print(f"hit age-at-delivery (sim s): n={ages['count']} "
                  f"min={ages['min']:g} mean={ages['mean']:g} "
                  f"max={ages['max']:g}")
        return 0
    if verb == "grep":
        matched = timeline.grep(
            merged,
            trace=args.trace_id,
            object_id=args.object,
            kind=args.kind,
        )
        for record in matched:
            print(json.dumps(record, sort_keys=True))
        return 0
    assert verb == "critical-path"
    try:
        critical = timeline.critical_path(merged, trace=args.trace_id)
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(critical, sort_keys=True))
        return 0
    print(f"slowest exchange: trace {critical['trace']} "
          f"({critical['object']} at t={critical['t']}, "
          f"{critical['verdict']}) — {critical['wall']:.6f}s")
    for name, wall in sorted(critical["phases"].items()):
        print(f"  {name}: {wall:.6f}s")
    print(f"  unattributed: {critical['unattributed']:.6f}s")
    print(f"  (origin service, inside upstream: "
          f"{critical['origin_wall']:.6f}s)")
    print(f"  retries: {critical['retries']}  "
          f"chaos injected: {critical['chaos_injected']}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a trace through the live origin+proxy pair."""
    from repro.live import (
        LiveReplayError,
        crash_vs_sim,
        live_vs_sim,
        parse_chaos,
        run_crash_replay,
        run_replay,
    )

    trace = read_trace(args.trace)
    try:
        protocol = build_protocol(args.protocol, args.parameter)
        chaos = parse_chaos(args.chaos) if args.chaos else None
        faults_spec = _parse_faults_arg(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.crash_after is not None and args.journal is None:
        print("replay: --crash-after requires --journal", file=sys.stderr)
        return 2
    # For replay, --trace means cross-process causal tracing: the live
    # stack writes one repro.trace/1 file per role (driver + .proxy /
    # .origin companions; merge them with 'repro trace').  The ambient
    # single-process sink _observability installs would only ever see
    # the driver process, so the flag is rerouted before entering it.
    live_trace_path: Optional[Path] = getattr(args, "trace_out", None)
    args.trace_out = None
    if live_trace_path is not None and args.crash_after is not None:
        print(
            "replay: --trace is not supported with --crash-after (the "
            "out-of-process proxy keeps no trace sink)",
            file=sys.stderr,
        )
        return 2
    mode = SimulatorMode(args.mode)
    workload = workload_from_trace(trace)
    faults = (
        faults_spec.build(workload.duration)
        if faults_spec is not None else None
    )
    report = None
    with _observability(args):
        try:
            if args.crash_after is not None:
                if args.verify:
                    live_result, _sim_result, report = crash_vs_sim(
                        workload.server(),
                        args.protocol,
                        args.parameter,
                        workload.requests,
                        mode,
                        end_time=workload.duration,
                        journal_path=args.journal,
                        crash_after=args.crash_after,
                        connections=args.connections,
                        keepalive=args.keepalive,
                    )
                    result = live_result
                else:
                    live_report = asyncio.run(run_crash_replay(
                        workload.server(),
                        args.protocol,
                        args.parameter,
                        workload.requests,
                        mode,
                        end_time=workload.duration,
                        journal_path=args.journal,
                        crash_after=args.crash_after,
                        connections=args.connections,
                        keepalive=args.keepalive,
                    ))
                    result = live_report.result
            elif args.verify:
                live_result, _sim_result, report = live_vs_sim(
                    workload.server(),
                    lambda: build_protocol(args.protocol, args.parameter),
                    workload.requests,
                    mode,
                    end_time=workload.duration,
                    connections=args.connections,
                    keepalive=args.keepalive,
                    chaos=chaos,
                    faults=faults,
                    journal_path=args.journal,
                    trace_path=live_trace_path,
                )
                result = live_result
            else:
                live_report = asyncio.run(run_replay(
                    workload.server(), protocol, workload.requests, mode,
                    end_time=workload.duration,
                    connections=args.connections,
                    keepalive=args.keepalive,
                    chaos=chaos,
                    faults=faults,
                    journal_path=args.journal,
                    trace_path=live_trace_path,
                ))
                result = live_report.result
        except LiveReplayError as exc:
            print(f"replay: {exc}", file=sys.stderr)
            return 2
        except ConsistencyViolation as exc:
            print(exc, file=sys.stderr)
            return 1
    if live_trace_path is not None:
        from repro.obs.timeline import role_trace_paths

        names = ", ".join(
            str(p) for p in role_trace_paths(live_trace_path).values()
        )
        print(f"trace: wrote per-role files {names}", file=sys.stderr)
    print(format_table(
        ("protocol", "mode", "bandwidth MB", "miss rate", "stale rate",
         "server ops", "round trips/request"),
        [(
            result.protocol_name,
            result.mode,
            f"{result.total_megabytes:.3f}",
            pct(result.miss_rate),
            pct(result.stale_hit_rate),
            result.server_operations,
            f"{result.counters.mean_round_trips:.3f}",
        )],
        title=f"{args.trace}: {len(trace)} requests replayed live",
    ))
    if report is not None:
        events = (
            f" + {report.events_checked} events"
            if report.events_checked else ""
        )
        print(
            f"live-vs-sim: {report.counters_checked} counters + "
            f"{report.ledger_cells_checked} ledger cells"
            f"{events} identical",
            file=sys.stderr,
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the live origin and proxy and serve until interrupted."""
    from repro.live import LiveOrigin, LiveProxy

    trace = read_trace(args.trace)
    try:
        protocol = build_protocol(args.protocol, args.parameter)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    mode = SimulatorMode(args.mode)
    server = server_from_trace(trace)

    async def serve() -> None:
        origin = LiveOrigin(server)
        await origin.start(args.host, args.origin_port)
        proxy = LiveProxy(origin.host, origin.port, protocol, mode)
        await proxy.start(args.host, args.proxy_port)
        print(f"origin: http://{origin.host}:{origin.port}/ "
              f"({len(server.object_ids())} objects)")
        print(f"proxy:  http://{proxy.host}:{proxy.port}/ "
              f"({protocol.name}, {mode.value} mode)")
        print("control endpoints under /.well-known/repro/ "
              "(population, invalidations, stats, finish); Ctrl-C stops.")
        try:
            await asyncio.Event().wait()
        finally:
            await proxy.close()
            await origin.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Forward to the :mod:`repro.lint` CLI (``repro lint [...]``)."""
    from repro.lint.cli import main as lint_main

    forwarded = args.lint_args
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return lint_main(forwarded)


def make_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web cache-consistency simulation toolkit "
                    "(Gwertzman & Seltzer, USENIX 1996).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_syn = sub.add_parser("synthesize",
                           help="generate a synthetic trace file")
    p_syn.add_argument("workload",
                       help="das, fas, hcs, or worrell")
    p_syn.add_argument("output", type=Path, help="output .log path")
    p_syn.add_argument("--seed", type=int, default=0)
    p_syn.add_argument("--scale", type=float, default=1.0)
    p_syn.set_defaults(func=cmd_synthesize)

    p_stats = sub.add_parser("stats",
                             help="mutability statistics from a trace")
    p_stats.add_argument("trace", type=Path)
    p_stats.set_defaults(func=cmd_stats)

    p_sim = sub.add_parser("simulate",
                           help="run one protocol over a trace")
    p_sim.add_argument("trace", type=Path)
    p_sim.add_argument("--protocol", default="alex",
                       choices=list(PROTOCOLS))
    p_sim.add_argument("--parameter", type=float, default=10.0,
                       help="alex/selftuning: threshold %%; ttl/leased: "
                            "hours; cern: LM fraction %%")
    p_sim.add_argument("--mode", default="optimized",
                       choices=[m.value for m in SimulatorMode])
    p_sim.add_argument(
        "--verify", action="store_true",
        help="replay the run through the repro.verify consistency "
             "oracle and fail on any counter/bandwidth divergence",
    )
    p_sim.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject delivery faults, e.g. "
             "'loss=0.05,downtime=2h,retries=3' (see docs/FAULTS.md)",
    )
    _add_engine_flag(p_sim)
    _add_obs_flags(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_sweep = sub.add_parser("sweep",
                             help="sweep alex/ttl parameters over a trace")
    p_sweep.add_argument("trace", type=Path)
    p_sweep.add_argument("--protocol", default="alex",
                         choices=["alex", "ttl"])
    p_sweep.add_argument("--step", type=int, default=None)
    p_sweep.add_argument("--mode", default="optimized",
                         choices=[m.value for m in SimulatorMode])
    p_sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for the sweep points (default: "
             "$REPRO_WORKERS, else 1 = serial; output is identical "
             "either way — see docs/PERFORMANCE.md)",
    )
    p_sweep.add_argument(
        "--verify", action="store_true",
        help="oracle-check every sweep point (workers inherit the flag; "
             "see docs/PROTOCOLS.md 'Invariants & verification')",
    )
    p_sweep.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject the same delivery faults into every sweep point "
             "(see docs/FAULTS.md)",
    )
    _add_engine_flag(p_sweep)
    _add_obs_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_prof = sub.add_parser(
        "profile",
        help="profile a reduced-scale sweep: engine phase breakdown plus "
             "per-protocol-hook self-time",
    )
    p_prof.add_argument("--protocol", default="alex",
                        choices=["alex", "ttl"])
    p_prof.add_argument("--scale", type=float, default=0.05,
                        help="workload scale factor (default 0.05 — "
                             "profiling wants a quick run)")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--step", type=int, default=None,
                        help="grid step (default: 20 for alex, 100 for ttl)")
    p_prof.add_argument("--mode", default="optimized",
                        choices=[m.value for m in SimulatorMode])
    p_prof.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size; >1 exercises the fork/dispatch/harvest/"
             "reassembly phases, 1 the serial phase",
    )
    _add_engine_flag(p_prof, default=REFERENCE)
    p_prof.set_defaults(func=cmd_profile)

    p_met = sub.add_parser(
        "metrics",
        help="render a --metrics JSON dump (pretty JSON or Prometheus "
             "0.0.4 text exposition)",
    )
    p_met.add_argument("dump", type=Path, help="a repro.metrics/1 JSON file")
    p_met.add_argument("--format", default="json",
                       choices=["json", "prom"])
    p_met.set_defaults(func=cmd_metrics)

    p_trace = sub.add_parser(
        "trace",
        help="merge and analyze the per-role trace files a traced live "
             "replay wrote (docs/OBSERVABILITY.md)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    def _trace_verb(name: str, help_text: str) -> argparse.ArgumentParser:
        verb = trace_sub.add_parser(name, help=help_text)
        verb.add_argument(
            "trace", type=Path,
            help="the driver trace file from 'repro replay --trace' "
                 "(.proxy/.origin companions are located automatically)",
        )
        verb.add_argument("--format", default="json",
                          choices=["json", "text"])
        verb.set_defaults(func=cmd_trace)
        return verb

    _trace_verb(
        "merge",
        "print the merged repro.trace/2 timeline; exit 1 on any "
        "happens-before violation (send≤recv, commit≤reply)",
    )
    _trace_verb(
        "summarize",
        "span counts and wall times, mark counts, retry/chaos totals, "
        "and the HIT age-at-delivery distribution",
    )
    p_tgrep = _trace_verb(
        "grep", "filter merged records by trace id, object, and/or kind"
    )
    p_tcrit = _trace_verb(
        "critical-path",
        "decompose the slowest exchange (or --trace-id) into proxy "
        "phase spans",
    )
    for verb_parser in (p_tgrep, p_tcrit):
        verb_parser.add_argument(
            "--trace-id", default=None, metavar="ID",
            help="an exchange's propagated id, e.g. r17",
        )
    p_tgrep.add_argument(
        "--object", default=None, metavar="PATH",
        help="filter to records about one object, e.g. /a",
    )
    p_tgrep.add_argument(
        "--kind", default=None, metavar="NAME",
        help="filter to one mark kind / span name / event kind, e.g. "
             "live.trace.retry",
    )

    p_replay = sub.add_parser(
        "replay",
        help="replay a trace through the live asyncio origin+proxy pair "
             "on loopback sockets (docs/LIVE.md)",
    )
    p_replay.add_argument("trace", type=Path)
    p_replay.add_argument("--protocol", default="alex",
                          choices=list(PROTOCOLS))
    p_replay.add_argument("--parameter", type=float, default=10.0,
                          help="alex/selftuning: threshold %%; ttl/leased: "
                               "hours; cern: LM fraction %%")
    p_replay.add_argument("--mode", default="optimized",
                          choices=[m.value for m in SimulatorMode])
    p_replay.add_argument(
        "--verify", action="store_true",
        help="also simulate the same trace and fail unless every counter "
             "and bandwidth-ledger cell matches the live run exactly",
    )
    p_replay.add_argument(
        "--connections", type=int, default=1,
        help="concurrent driver connections (>1 switches the proxy to "
             "per-object locking and the oracle to per-object event "
             "multisets)",
    )
    p_replay.add_argument(
        "--keepalive", action="store_true",
        help="reuse driver connections across requests "
             "(Connection: keep-alive)",
    )
    p_replay.add_argument(
        "--chaos", metavar="SPEC",
        help="socket-level fault plan, e.g. "
             "'loss=0.2,reset=0.1,truncate=0.2,dribble=0.5,delay=0.005,"
             "seed=3,cap=3' (docs/FAULTS.md)",
    )
    p_replay.add_argument(
        "--faults", metavar="SPEC",
        help="invalidation-message fault plan shared with "
             "'repro simulate', e.g. 'downtime=2h@50h,delay=30s,seed=3' "
             "(serial replays only; docs/FAULTS.md)",
    )
    p_replay.add_argument(
        "--journal", type=Path,
        help="journal committed proxy transactions to this file "
             "(append-only JSONL; a restarted proxy re-warms from it)",
    )
    p_replay.add_argument(
        "--crash-after", type=int, metavar="N",
        help="run the proxy out of process, SIGKILL it after N completed "
             "requests, restart it from --journal, and reconcile",
    )
    _add_obs_flags(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_serve = sub.add_parser(
        "serve",
        help="boot the live origin+proxy on fixed ports for ad-hoc "
             "exploration (docs/LIVE.md)",
    )
    p_serve.add_argument("trace", type=Path,
                         help="trace file defining the served population")
    p_serve.add_argument("--protocol", default="alex",
                         choices=list(PROTOCOLS))
    p_serve.add_argument("--parameter", type=float, default=10.0)
    p_serve.add_argument("--mode", default="optimized",
                         choices=[m.value for m in SimulatorMode])
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--origin-port", type=int, default=8097,
                         help="origin port (default 8097; 0 = ephemeral)")
    p_serve.add_argument("--proxy-port", type=int, default=8098,
                         help="proxy port (default 8098; 0 = ephemeral)")
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="run the static invariant linter (RPR001-RPR006 + baseline)",
    )
    p_lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER, metavar="...",
        help="arguments forwarded to repro-lint (try 'repro lint -- "
             "--list-codes')",
    )
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
