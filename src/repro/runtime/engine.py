"""The process-pool sweep engine.

The unit of parallelism is one *task*: an independent computation (a
sweep point, an experiment id) whose result does not depend on any other
task.  :func:`map_ordered` runs a list of tasks either serially (the
``workers=1`` fallback, byte-identical to the historical single-process
code path) or on a ``ProcessPoolExecutor``, and reassembles results in
submission order either way.

Two design points keep the engine both general and deterministic:

* **Fork-based closure hand-off.**  Sweep tasks close over workloads and
  protocol factories that are not picklable (lambdas, memoized workload
  objects).  Instead of requiring picklable callables, the engine stores
  the ``(fn, items)`` pair in a module-level slot immediately before the
  pool starts; worker processes are *forked* and inherit the slot, so
  the only thing crossing the pipe is an integer index out and a result
  back.  On platforms without ``fork`` the engine degrades to the serial
  path — results are identical, only slower.
* **No nested pools.**  Worker processes are marked at startup; a
  ``map_ordered`` call inside a worker runs serially.  This is both a
  correctness measure (the parent's pool lock is held across the fork)
  and the oversubscription policy: parallelism is spent at the outermost
  level that requests it.

The engine is also **crash tolerant**.  A forked worker that dies
mid-task (OOM kill, segfault, a stray ``SIGKILL``) breaks the whole
``ProcessPoolExecutor``; the naive ``pool.map`` loop this engine used to
run would then hang or lose every in-flight result.  Instead, tasks are
submitted per-index and harvested as they complete, so a broken pool
costs only the tasks that had not finished: the engine rebuilds the pool
(at most :data:`_MAX_POOL_RESTARTS` times) and re-dispatches the undone
indices, then degrades to running any remainder serially in the parent.
Two consequences for task authors:

* tasks must be **pure** — a task interrupted by a crash is re-executed,
  so side effects may happen twice;
* per-task seeds must be derived from the task *index* (see
  :func:`derive_seed`), never from worker identity, so a re-dispatched
  task reproduces the exact result its first incarnation would have
  returned, whichever worker (or the parent) runs it.

Exceptions *raised by the task itself* are not retried — they propagate
to the caller unchanged, exactly as on the serial path.

Worker-count resolution precedence (highest wins):

1. an explicit ``workers=`` argument (the CLI ``--workers`` flag),
2. the :func:`default_workers` context / :func:`set_default_workers`,
3. the ``REPRO_WORKERS`` environment variable,
4. serial (``1``).

>>> resolve_workers(3)
3
>>> with default_workers(4):
...     resolve_workers()
4

:func:`derive_seed` gives every task a deterministic, well-separated
seed derived from the base seed and the task index (a SplitMix64 mix),
so stochastic stages stay reproducible regardless of which worker runs
which point:

>>> derive_seed(7, 3) == derive_seed(7, 3)
True
>>> derive_seed(7, 3) != derive_seed(7, 4)
True
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    TypeVar,
)

from repro.obs import clock as obs_clock
from repro.obs import collect as obs_collect
from repro.obs import profile as obs_profile
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

_default_workers: Optional[int] = None

#: True inside a pool worker process; forces nested maps serial.
_in_worker = False

#: The (fn, items) pair being mapped, inherited by forked workers.
_active_task: Optional[tuple[Callable[[Any], Any], Sequence[Any]]] = None

#: Serializes pool construction so ``_active_task`` is unambiguous.
_pool_lock = threading.Lock()

#: Pool rebuilds allowed after worker deaths before degrading to serial.
_MAX_POOL_RESTARTS = 2

_MASK64 = (1 << 64) - 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count under the resolution precedence.

    Args:
        workers: an explicit request (e.g. a ``--workers`` flag value);
            wins when not None.

    Raises:
        ValueError: when the ``REPRO_WORKERS`` environment variable is
            set but is not a positive integer.
    """
    if workers is not None:
        return max(1, int(workers))
    if _default_workers is not None:
        return max(1, _default_workers)
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
        return max(1, value)
    return 1


def set_default_workers(workers: Optional[int]) -> Optional[int]:
    """Set the process-wide default worker count; returns the previous one.

    ``None`` restores env-var/serial resolution.
    """
    global _default_workers
    previous = _default_workers
    _default_workers = workers
    return previous


@contextmanager
def default_workers(workers: Optional[int]) -> Iterator[None]:
    """Scope a default worker count (used by ``run_experiment``)."""
    previous = set_default_workers(workers)
    try:
        yield
    finally:
        set_default_workers(previous)


def derive_seed(base_seed: int, index: int) -> int:
    """A deterministic 63-bit seed for task ``index`` under ``base_seed``.

    SplitMix64 finalizer over ``base_seed`` advanced by the golden-ratio
    increment per index: adjacent indices land far apart, the mapping is
    stable across platforms and processes, and distinct (seed, index)
    pairs collide no more often than a random 63-bit draw.
    """
    z = (int(base_seed) + (index + 1) * 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & ((1 << 63) - 1)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _mark_worker() -> None:
    """Pool initializer: flag this process as a worker (no nested pools)."""
    global _in_worker
    _in_worker = True


def _observability_on() -> bool:
    """True when any obs consumer (registry, sink, profiler) is active."""
    return (
        obs_metrics.active() is not None
        or obs_trace.active() is not None
        or obs_profile.is_enabled()
    )


def _run_task(fn: Callable[[Any], Any], item: Any, index: int) -> Any:
    """One instrumented task execution (observability known to be on).

    The ``engine.tasks`` bump and the ``engine.task`` span land *after*
    the task's own emissions, so the serial path and a worker's captured
    payload produce the same record order.
    """
    started = obs_clock.monotonic()
    value = fn(item)
    obs_metrics.emit("engine.tasks")
    obs_trace.span(
        "engine.task",
        obs_clock.monotonic() - started,
        index=index,
        worker=os.getpid(),
    )
    return value


def _run_indexed(
    index: int,
) -> tuple[int, Any, Optional[dict[str, Any]]]:
    """Execute one task of the active map in a worker process.

    The third element is the task's observability payload (metric
    deltas, new trace records, profiling deltas) for the parent to merge
    in submission order — ``None`` when observability is off.
    """
    task = _active_task
    assert task is not None  # set before fork
    fn, items = task
    if not _observability_on():
        return index, fn(items[index]), None
    token = obs_collect.task_begin()
    value = _run_task(fn, items[index], index)
    return index, value, obs_collect.task_end(token)


def _pool_round(
    indices: Sequence[int], count: int
) -> tuple[dict[int, tuple[Any, Optional[dict[str, Any]]]], bool]:
    """One pool attempt over ``indices`` of the active map.

    Returns the ``(value, obs payload)`` pairs harvested this round (by
    index) and whether the pool broke — a worker process died, taking
    its in-flight tasks with it.  Successfully completed futures are
    harvested even when a later one is broken, so a crash costs only the
    unfinished tasks.

    Exceptions raised by the task function itself propagate.

    When profiling is enabled, pool construction is timed as the
    **fork** phase, task submission as **dispatch** (worker processes
    are actually forked lazily on first submit, so dispatch includes the
    forks themselves), and future collection as **harvest**.
    """
    harvested: dict[int, tuple[Any, Optional[dict[str, Any]]]] = {}
    broken = False
    context = multiprocessing.get_context("fork")
    with obs_profile.phase("fork"):
        pool = ProcessPoolExecutor(
            max_workers=min(count, len(indices)),
            mp_context=context,
            initializer=_mark_worker,
        )
    with pool:
        try:
            with obs_profile.phase("dispatch"):
                futures = [
                    pool.submit(_run_indexed, index) for index in indices
                ]
        except BrokenExecutor:
            return harvested, True
        with obs_profile.phase("harvest"):
            for future in as_completed(futures):
                try:
                    index, value, payload = future.result()
                except BrokenExecutor:
                    broken = True
                    continue
                harvested[index] = (value, payload)
    return harvested, broken


def map_ordered(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: Optional[int] = None,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results are always returned in the order of ``items`` (ordered
    reassembly), whichever worker finishes first.  With a resolved
    worker count of 1 — or fewer than two items, or inside a pool
    worker, or on a platform without ``fork`` — this *is* the list
    comprehension, so serial runs execute exactly the historical code
    path.

    ``fn`` may be any callable, including a closure over unpicklable
    state: workers are forked and inherit it (see the module docstring).
    Exceptions raised by ``fn`` propagate to the caller in both modes.

    A worker process that *dies* (rather than raises) breaks the pool;
    the unfinished tasks are re-dispatched to a fresh pool up to
    :data:`_MAX_POOL_RESTARTS` times, after which the remainder runs
    serially in the calling process.  Completed results are never
    discarded, but an interrupted task may execute more than once, so
    tasks must be pure (see the module docstring).

    >>> map_ordered(lambda x: x * x, [3, 1, 2])
    [9, 1, 4]
    """
    items = list(items)
    count = resolve_workers(workers)
    obs_on = _observability_on()
    if count <= 1 or len(items) <= 1 or _in_worker or not _fork_available():
        if not obs_on:
            return [fn(item) for item in items]
        map_started = obs_clock.monotonic()
        with obs_profile.phase("serial"):
            serial_results: list[R] = [
                _run_task(fn, item, index) for index, item in enumerate(items)
            ]
        obs_trace.span(
            "engine.map",
            obs_clock.monotonic() - map_started,
            tasks=len(items),
            workers=1,
        )
        return serial_results

    global _active_task
    map_started = obs_clock.monotonic() if obs_on else 0.0
    results: list[R] = [None] * len(items)  # type: ignore[list-item]
    payloads: dict[int, Optional[dict[str, Any]]] = {}
    remaining = list(range(len(items)))
    with _pool_lock:
        _active_task = (fn, items)
        try:
            restarts = 0
            while remaining:
                harvested, pool_broke = _pool_round(remaining, count)
                for index, (value, payload) in harvested.items():
                    results[index] = value
                    payloads[index] = payload
                remaining = [i for i in remaining if i not in harvested]
                if not pool_broke or not remaining:
                    break
                restarts += 1
                obs_metrics.emit("engine.pool_restarts")
                if restarts > _MAX_POOL_RESTARTS:
                    break  # persistent crasher: fall through to serial
        finally:
            _active_task = None
    # Ordered reassembly: apply each worker's observability payload in
    # submission (index) order, so the merged registry and the event-
    # record sequence match what the serial path produces directly.
    with obs_profile.phase("reassembly"):
        for index in sorted(payloads):
            obs_collect.merge(payloads[index])
    for index in remaining:
        if obs_on:
            obs_metrics.emit("engine.serial_fallback_tasks")
            results[index] = _run_task(fn, items[index], index)
        else:
            results[index] = fn(items[index])
    if obs_on:
        obs_trace.span(
            "engine.map",
            obs_clock.monotonic() - map_started,
            tasks=len(items),
            workers=count,
        )
    return results
