"""Run instrumentation: what did a sweep or experiment actually cost?

Every sweep executed by the engine produces a :class:`RunStats` record —
wall time, simulated requests, requests/sec, peak grid size, worker
count — attached to the :class:`~repro.analysis.sweep.SweepResult`, and
``run_experiment`` aggregates the sweeps it triggered into a per-report
record via the :func:`collecting` context.  ``python -m
repro.experiments`` prints the record after each report, and
``docs/PERFORMANCE.md`` explains how to read it.

Instrumentation never participates in result equality: two sweeps that
measured different wall times but produced the same points compare
equal, which is what the parallel-vs-serial equivalence tests assert.

>>> stats = RunStats(wall_seconds=2.0, simulated_requests=100_000,
...                  workers=4, grid_points=21, peak_grid_size=21)
>>> stats.requests_per_second
50000.0
>>> RunStats.combine([stats, stats]).simulated_requests
200000
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Sequence


@dataclass(frozen=True)
class RunStats:
    """Instrumentation for one engine-driven run.

    Attributes:
        wall_seconds: elapsed wall-clock time of the run.
        simulated_requests: client requests simulated by the run, summed
            over every sweep point, workload, and baseline.  Memoized
            sweeps re-used from cache contribute zero — the field counts
            work *performed*, not work *represented*.
        workers: resolved process-pool size the run was started with
            (1 = the serial fallback).
        grid_points: parameter points executed across all sweeps.
        peak_grid_size: the largest single parameter grid executed —
            the upper bound on useful sweep-level parallelism.
        verified_runs: simulations that were replayed through the
            ``repro.verify`` consistency oracle (0 when verification was
            off for the run).
        engine: the resolved simulator engine the run selected —
            ``"fast"`` (the :mod:`repro.fastpath` batched kernel, with
            automatic reference fallback per configuration) or
            ``"reference"`` (:mod:`repro.core.simulator` throughout).
    """

    wall_seconds: float
    simulated_requests: int
    workers: int = 1
    grid_points: int = 0
    peak_grid_size: int = 0
    verified_runs: int = 0
    engine: str = "fast"

    @property
    def requests_per_second(self) -> float:
        """Simulated-request throughput (0.0 for an unmeasurable run)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.simulated_requests / self.wall_seconds

    def render(self) -> str:
        """One report line, e.g. ``2.1s wall, 840,000 requests, ...``."""
        parts = [
            f"{self.wall_seconds:.1f}s wall",
            f"{self.simulated_requests:,} simulated requests",
            f"{self.requests_per_second:,.0f} req/s",
        ]
        if self.peak_grid_size:
            parts.append(f"peak grid {self.peak_grid_size}")
        parts.append(f"workers {self.workers}")
        parts.append(f"engine {self.engine}")
        if self.verified_runs:
            parts.append(f"{self.verified_runs} oracle-verified runs")
        return ", ".join(parts)

    def as_dict(self) -> dict:
        """JSON-compatible form, for CSV/benchmark tooling."""
        data = asdict(self)
        data["requests_per_second"] = self.requests_per_second
        return data

    @staticmethod
    def combine(
        runs: Sequence["RunStats"],
        *,
        wall_seconds: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> "RunStats":
        """Aggregate sweep-level records into one run-level record.

        Requests and grid points sum; peak grid size is the maximum.
        ``wall_seconds``/``workers`` default to the sum of the parts and
        the parts' maximum, but an enclosing run (which also spends wall
        time outside its sweeps) should pass its own measurements.

        Raises:
            ValueError: when ``runs`` is empty and no ``wall_seconds``
                override is given to anchor the record.
        """
        if not runs and wall_seconds is None:
            raise ValueError("cannot combine zero RunStats without wall_seconds")
        return RunStats(
            wall_seconds=(
                wall_seconds if wall_seconds is not None
                else sum(r.wall_seconds for r in runs)
            ),
            simulated_requests=sum(r.simulated_requests for r in runs),
            workers=(
                workers if workers is not None
                else max((r.workers for r in runs), default=1)
            ),
            grid_points=sum(r.grid_points for r in runs),
            peak_grid_size=max((r.peak_grid_size for r in runs), default=0),
            verified_runs=sum(r.verified_runs for r in runs),
            engine=runs[0].engine if runs else "fast",
        )


#: Stack of active collectors; :func:`record` appends to every level so
#: an experiment-level collector sees the sweeps run inside it even when
#: further contexts are nested deeper.
_collectors: list[list[RunStats]] = []


@contextmanager
def collecting() -> Iterator[list[RunStats]]:
    """Collect every :func:`record` call made inside the context."""
    bucket: list[RunStats] = []
    _collectors.append(bucket)
    try:
        yield bucket
    finally:
        _collectors.remove(bucket)


def record(stats: RunStats) -> None:
    """Report a completed run to all active collectors (if any)."""
    for bucket in _collectors:
        bucket.append(stats)
