"""Parallel execution and run instrumentation for the reproduction.

Every figure in the paper is a sweep over independent (protocol,
parameter) points — 21 Alex thresholds and 21 TTL intervals per
workload — and the experiment registry runs 14 independent experiments.
This package provides the machinery to fan that work out across
processes without changing a single output byte:

* :mod:`repro.runtime.engine` — a process-pool map with deterministic
  ordered reassembly, a serial fallback for ``workers=1``, worker-count
  resolution (``--workers`` flag > :func:`default_workers` context >
  ``REPRO_WORKERS`` env var > serial), and per-task seed derivation.
* :mod:`repro.runtime.stats` — :class:`RunStats` (wall time, simulated
  requests, requests/sec, peak grid size, worker count) plus the
  collector that aggregates per-sweep stats into per-experiment stats.

See ``docs/PERFORMANCE.md`` for the architecture, the determinism
guarantees, and measured serial-vs-parallel numbers.
"""

from repro.runtime.engine import (
    default_workers,
    derive_seed,
    map_ordered,
    resolve_workers,
    set_default_workers,
)
from repro.runtime.stats import RunStats, collecting, record

__all__ = [
    "RunStats",
    "collecting",
    "default_workers",
    "derive_seed",
    "map_ordered",
    "record",
    "resolve_workers",
    "set_default_workers",
]
