"""Deterministic fault injection for the consistency simulations.

The paper's invalidation result — perfect consistency at competitive
bandwidth — assumes every callback is delivered.  Gwertzman & Seltzer
flag the assumption themselves: invalidation "is not resilient in the
face of network partition or server crashes"; an unreachable cache keeps
serving a copy the server believes it has invalidated.  This package
turns that caveat into a measurable, reproducible input:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, composable fault
  model: per-message invalidation loss and delay, server downtime
  windows (notices arising or retried during an outage are abandoned —
  server state loss), and cache crash/restart with total state loss.
* :meth:`~repro.faults.plan.FaultPlan.compile` — the plan plus a
  modification feed becomes a time-ordered schedule of
  :class:`~repro.faults.plan.FaultAction` records.  Both the production
  simulator and the ``repro.verify`` spec model consume the *same*
  compiled schedule, so the oracle verifies fault *handling* while the
  schedule itself is part of the experiment configuration, like
  :class:`~repro.core.costs.MessageCosts`.
* :func:`~repro.faults.spec.parse_faults` — the CLI grammar behind
  ``--faults loss=0.05,downtime=2h`` on ``repro simulate|sweep``.

Every draw is a pure hash of ``(seed, message index, attempt)`` — see
:mod:`repro.faults.rng` — so a plan's schedule is identical across
processes, worker counts, and platforms.  With no plan installed the
simulator's behaviour is unchanged, and a plan with zero rates compiles
to a schedule whose replay is byte-identical to the fault-free path
(property-tested in ``tests/faults/``).

See ``docs/FAULTS.md`` for the fault model, the spec grammar, and the
recovery semantics (bounded retry with exponential backoff, and the
lease fallback in
:class:`~repro.core.protocols.invalidation.LeasedInvalidationProtocol`).
"""

from repro.faults.plan import (
    ATTEMPT_LOST,
    ATTEMPT_SENT,
    CRASH,
    DELIVER,
    DROP,
    DowntimeWindow,
    FaultAction,
    FaultPlan,
)
from repro.faults.rng import uniform01
from repro.faults.spec import FaultSpec, parse_faults

__all__ = [
    "ATTEMPT_LOST",
    "ATTEMPT_SENT",
    "CRASH",
    "DELIVER",
    "DROP",
    "DowntimeWindow",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "parse_faults",
    "uniform01",
]
