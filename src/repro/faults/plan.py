"""The fault plan and its compiled action schedule.

A :class:`FaultPlan` is configuration, not mechanism: it describes which
faults a run should experience (loss rate, delivery delay, server
downtime windows, cache crashes) and how hard the server fights back
(bounded retries with exponential backoff).  :meth:`FaultPlan.compile`
resolves the plan against a concrete modification feed into a
time-ordered tuple of :class:`FaultAction` records — the *schedule* —
which both the production simulator and the ``repro.verify`` spec model
then replay.  Compiling up front keeps the hot loop branch-free and
makes the schedule itself inspectable and property-testable.

Message semantics (documented in ``docs/FAULTS.md``):

* For each modification the server makes up to ``1 + retries``
  **attempts** to notify the cache; attempt *k* leaves the server at
  ``mod_time + backoff * (2**k - 1)``.
* An attempt whose send time falls inside a **downtime window** is never
  made — the crash loses the server's pending-notification state — and
  the notice is permanently abandoned (``DROP``).
* Otherwise the attempt is either **lost** in the network (an
  independent ``loss_rate`` draw per attempt; the message was sent and
  is charged, but never arrives) or **delivered** after ``delay``
  seconds.  Losing the final attempt also abandons the notice.
* **Cache crashes** wipe the cache's entire state at the given instants;
  a crash action scheduled at the same timestamp as a delivery sorts
  after it (the sort is stable and crashes are compiled last).

Whether an action has any effect is decided at replay time against the
live cache state (the object may have been evicted, crashed away, or
refetched since compile time); the generation guard on
:meth:`repro.core.cache.Cache.invalidate` ignores deliveries that a
refetch has already superseded.

>>> plan = FaultPlan()
>>> plan.is_null
True
>>> plan.compile(((5.0, "/a"),))
(FaultAction(time=5.0, kind='attempt_sent', object_id='/a', mod_time=5.0, attempt=0), FaultAction(time=5.0, kind='deliver', object_id='/a', mod_time=5.0, attempt=0))
>>> lossy = FaultPlan(loss_rate=1.0, retries=1, backoff=10.0)
>>> [a.kind for a in lossy.compile(((5.0, "/a"),))]
['attempt_lost', 'attempt_lost', 'drop']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.faults.rng import uniform01
from repro.obs import registry as obs_metrics

#: Action kinds, in the vocabulary of the schedule.
ATTEMPT_SENT = "attempt_sent"
ATTEMPT_LOST = "attempt_lost"
DELIVER = "deliver"
DROP = "drop"
CRASH = "crash"


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault event.

    Attributes:
        time: when the action takes effect, in simulation seconds.
        kind: one of :data:`ATTEMPT_SENT`, :data:`ATTEMPT_LOST`,
            :data:`DELIVER`, :data:`DROP`, :data:`CRASH`.
        object_id: the object the notice concerns (``""`` for a crash).
        mod_time: the modification timestamp the notice announces (for a
            crash, the crash instant).
        attempt: zero-based attempt number within the retry sequence.
    """

    time: float
    kind: str
    object_id: str
    mod_time: float
    attempt: int


@dataclass(frozen=True)
class DowntimeWindow:
    """A half-open interval ``[start, start + length)`` of server outage.

    Raises:
        ValueError: for a non-positive length.
    """

    start: float
    length: float

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ValueError(f"downtime length must be positive: {self.length}")

    def covers(self, t: float) -> bool:
        """True when instant ``t`` falls inside the outage."""
        return self.start <= t < self.start + self.length


def _action_time(action: FaultAction) -> float:
    return action.time


@dataclass(frozen=True)
class FaultPlan:
    """A composed, seeded description of the faults a run experiences.

    Attributes:
        loss_rate: probability each individual notification attempt is
            lost in the network (independent per attempt), in ``[0, 1]``.
        delay: network latency added to every successful delivery,
            in seconds.
        downtime: server outage windows; attempts falling inside one are
            abandoned outright (server-side state loss).
        cache_crashes: instants at which the cache loses all state.
        retries: how many times the server re-sends an unacknowledged
            notice after the first attempt (0 = the paper's fire-and-
            forget behaviour).
        backoff: base of the exponential retry backoff; attempt *k*
            leaves at ``mod_time + backoff * (2**k - 1)`` seconds.
        seed: keys every loss draw (see :mod:`repro.faults.rng`).

    Raises:
        ValueError: for out-of-range rates, a negative delay, negative
            retries, or a non-positive backoff with retries enabled.
    """

    loss_rate: float = 0.0
    delay: float = 0.0
    downtime: tuple[DowntimeWindow, ...] = ()
    cache_crashes: tuple[float, ...] = ()
    retries: int = 0
    backoff: float = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1]: {self.loss_rate}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative: {self.retries}")
        if self.retries > 0 and self.backoff <= 0.0:
            raise ValueError(
                f"backoff must be positive when retrying: {self.backoff}"
            )

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all.

        A null plan still compiles and replays — the schedule reduces to
        immediate sent+deliver pairs whose replay is byte-identical to
        the fault-free delivery loop (the property the zero-rate tests
        pin).
        """
        return (
            self.loss_rate == 0.0
            and self.delay == 0.0
            and not self.downtime
            and not self.cache_crashes
        )

    def server_down(self, t: float) -> bool:
        """True when any downtime window covers instant ``t``."""
        for window in self.downtime:
            if window.covers(t):
                return True
        return False

    def attempt_lost(self, message_index: int, attempt: int) -> bool:
        """The deterministic loss draw for one notification attempt."""
        if self.loss_rate <= 0.0:
            return False
        if self.loss_rate >= 1.0:
            return True
        return uniform01(self.seed, message_index, attempt) < self.loss_rate

    def compile(
        self,
        feed: Sequence[tuple[float, str]],
        start_time: float = 0.0,
    ) -> tuple[FaultAction, ...]:
        """Resolve the plan against a modification feed into a schedule.

        Args:
            feed: ``(mod_time, object_id)`` pairs sorted by time (the
                shape of :meth:`OriginServer.invalidation_feed`); pass
                an empty feed for protocols without callbacks (crash
                actions are still scheduled).
            start_time: modifications at or before this instant are
                skipped, mirroring the simulator's preload semantics.

        Returns:
            Actions sorted by time; ties keep compile order (attempt
            before its delivery, feed order across objects, crashes
            last), so replay is deterministic.
        """
        actions: list[FaultAction] = []
        for index, (mod_time, object_id) in enumerate(feed):
            if mod_time <= start_time:
                continue
            for attempt in range(self.retries + 1):
                send_time = mod_time + self.backoff * float((1 << attempt) - 1)
                if self.server_down(send_time):
                    actions.append(
                        FaultAction(send_time, DROP, object_id, mod_time, attempt)
                    )
                    break
                if self.attempt_lost(index, attempt):
                    actions.append(
                        FaultAction(
                            send_time, ATTEMPT_LOST, object_id, mod_time, attempt
                        )
                    )
                    if attempt == self.retries:
                        actions.append(
                            FaultAction(
                                send_time, DROP, object_id, mod_time, attempt
                            )
                        )
                    continue
                actions.append(
                    FaultAction(
                        send_time, ATTEMPT_SENT, object_id, mod_time, attempt
                    )
                )
                actions.append(
                    FaultAction(
                        send_time + self.delay,
                        DELIVER,
                        object_id,
                        mod_time,
                        attempt,
                    )
                )
                break
        for crash_time in self.cache_crashes:
            if crash_time > start_time:
                actions.append(
                    FaultAction(float(crash_time), CRASH, "", float(crash_time), 0)
                )
        actions.sort(key=_action_time)
        _publish_schedule_metrics(actions)
        return tuple(actions)


def _publish_schedule_metrics(actions: Sequence[FaultAction]) -> None:
    """Publish per-kind counts of a compiled schedule to the registry.

    Zero counts are skipped so a registry only ever holds counters that
    actually incremented — the same set a parallel run's delta-merge
    reconstructs.
    """
    if obs_metrics.active() is None:
        return
    kind_counts: dict[str, int] = {}
    for action in actions:
        kind_counts[action.kind] = kind_counts.get(action.kind, 0) + 1
    totals = {
        "faults.attempts": (
            kind_counts.get(ATTEMPT_SENT, 0) + kind_counts.get(ATTEMPT_LOST, 0)
        ),
        "faults.lost": kind_counts.get(ATTEMPT_LOST, 0),
        "faults.dropped": kind_counts.get(DROP, 0),
        "faults.delivered": kind_counts.get(DELIVER, 0),
        "faults.crashes": kind_counts.get(CRASH, 0),
    }
    for name, count in totals.items():
        if count:
            obs_metrics.emit(name, float(count))
