"""The ``--faults`` CLI grammar.

One comma-separated string composes a :class:`~repro.faults.plan.FaultPlan`::

    --faults loss=0.05,downtime=2h
    --faults loss=0.3,retries=3,backoff=5m,seed=7
    --faults downtime=2h@50h,crash=20h+40h,delay=30s

Fields (all optional, any order):

* ``loss=RATE`` — per-attempt network loss probability in ``[0, 1]``.
* ``delay=DUR`` — network latency on every successful delivery.
* ``downtime=DUR[@START]`` — one server outage of length ``DUR``;
  without ``@START`` the outage begins a quarter of the way into the
  run (resolved when the plan is built against a trace duration).
  Repeat windows with ``+``: ``downtime=2h@10h+1h@40h``.
* ``crash=TIME[+TIME...]`` — cache crash instants (state loss).
* ``retries=N`` / ``backoff=DUR`` — server retry policy for
  unacknowledged notices (exponential backoff, base ``backoff``).
* ``seed=N`` — keys the loss draws.

Durations take an optional unit suffix: ``s`` (default), ``m``, ``h``,
``d``.  :func:`parse_faults` validates the text into a
:class:`FaultSpec`; :meth:`FaultSpec.build` resolves duration-relative
defaults against a concrete run length and returns the plan.

>>> spec = parse_faults("loss=0.05,downtime=2h")
>>> plan = spec.build(duration=86400.0)
>>> plan.loss_rate
0.05
>>> plan.downtime[0].length
7200.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import DowntimeWindow, FaultPlan

_UNIT_SECONDS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

#: Fraction of the run at which an unanchored downtime window starts.
DEFAULT_DOWNTIME_FRACTION = 0.25


def _duration(text: str, field_name: str) -> float:
    """Parse ``"30"``, ``"30s"``, ``"5m"``, ``"2h"``, ``"1.5d"`` to seconds."""
    raw = text.strip()
    unit = 1.0
    if raw and raw[-1].lower() in _UNIT_SECONDS:
        unit = _UNIT_SECONDS[raw[-1].lower()]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"bad duration for {field_name!r}: {text!r} "
            "(expected e.g. 30s, 5m, 2h, 1.5d)"
        ) from None
    return value * unit


@dataclass(frozen=True)
class FaultSpec:
    """A parsed-but-unresolved ``--faults`` specification.

    Downtime windows without an explicit ``@START`` anchor need the run
    duration to place themselves; everything else is already concrete.
    :meth:`build` performs that resolution.
    """

    loss_rate: float = 0.0
    delay: float = 0.0
    #: (length, start-or-None) pairs; None anchors to the run duration.
    downtime: tuple[tuple[float, Optional[float]], ...] = ()
    cache_crashes: tuple[float, ...] = ()
    retries: int = 0
    backoff: float = 300.0
    seed: int = 0

    def build(self, duration: float) -> FaultPlan:
        """Resolve against a run length and return the concrete plan."""
        windows = tuple(
            DowntimeWindow(
                start=(
                    start
                    if start is not None
                    else duration * DEFAULT_DOWNTIME_FRACTION
                ),
                length=length,
            )
            for length, start in self.downtime
        )
        return FaultPlan(
            loss_rate=self.loss_rate,
            delay=self.delay,
            downtime=windows,
            cache_crashes=self.cache_crashes,
            retries=self.retries,
            backoff=self.backoff,
            seed=self.seed,
        )


def parse_faults(text: str) -> FaultSpec:
    """Parse a ``--faults`` string into a :class:`FaultSpec`.

    Raises:
        ValueError: for unknown fields, malformed values, or
            out-of-range rates (message names the offending field).
    """
    loss_rate = 0.0
    delay = 0.0
    downtime: list[tuple[float, Optional[float]]] = []
    crashes: list[float] = []
    retries = 0
    backoff = 300.0
    seed = 0
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(
                f"bad --faults field {chunk!r}: expected name=value"
            )
        name, _, value = chunk.partition("=")
        name = name.strip().lower()
        value = value.strip()
        if name == "loss":
            try:
                loss_rate = float(value)
            except ValueError:
                raise ValueError(f"bad loss rate: {value!r}") from None
            if not 0.0 <= loss_rate <= 1.0:
                raise ValueError(f"loss must be in [0, 1]: {value!r}")
        elif name == "delay":
            delay = _duration(value, "delay")
        elif name == "downtime":
            for part in value.split("+"):
                length_text, at, start_text = part.partition("@")
                length = _duration(length_text, "downtime")
                start = _duration(start_text, "downtime start") if at else None
                downtime.append((length, start))
        elif name == "crash":
            for part in value.split("+"):
                crashes.append(_duration(part, "crash"))
        elif name == "retries":
            try:
                retries = int(value)
            except ValueError:
                raise ValueError(f"bad retries count: {value!r}") from None
            if retries < 0:
                raise ValueError(f"retries must be non-negative: {value!r}")
        elif name == "backoff":
            backoff = _duration(value, "backoff")
        elif name == "seed":
            try:
                seed = int(value)
            except ValueError:
                raise ValueError(f"bad seed: {value!r}") from None
        else:
            raise ValueError(
                f"unknown --faults field {name!r}; expected one of "
                "loss, delay, downtime, crash, retries, backoff, seed"
            )
    return FaultSpec(
        loss_rate=loss_rate,
        delay=delay,
        downtime=tuple(downtime),
        cache_crashes=tuple(sorted(crashes)),
        retries=retries,
        backoff=backoff,
        seed=seed,
    )
