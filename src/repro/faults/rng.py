"""Deterministic draws for fault decisions.

Fault injection must not perturb any other random stream (the workload
generators own their seeded NumPy generators) and must produce the same
schedule whether a run executes serially, in a forked pool worker, or on
another platform.  So there is no RNG *object* at all: every decision is
a pure function of ``(seed, stream indices)`` through a SplitMix64 hash
chain — the same mixer :func:`repro.runtime.derive_seed` uses for task
seeds.

>>> uniform01(7, 3, 0) == uniform01(7, 3, 0)
True
>>> 0.0 <= uniform01(7, 3, 0) < 1.0
True
>>> uniform01(7, 3, 0) != uniform01(7, 3, 1)
True
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(state: int) -> int:
    """One SplitMix64 step: advance ``state`` and finalize to 64 bits."""
    z = (state + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def mix(seed: int, *streams: int) -> int:
    """Hash ``seed`` and any number of stream indices into 64 bits.

    Each additional stream index re-keys the chain, so
    ``mix(s, a, b)`` and ``mix(s, a, c)`` are statistically independent
    draws for ``b != c``.
    """
    value = splitmix64(seed & _MASK64)
    for stream in streams:
        value = splitmix64(value ^ (stream & _MASK64))
    return value


def uniform01(seed: int, *streams: int) -> float:
    """A uniform draw in ``[0, 1)`` keyed by ``(seed, *streams)``.

    Uses the top 53 bits of the mix, so the value is exactly
    representable and identical on every platform.
    """
    return (mix(seed, *streams) >> 11) * (1.0 / (1 << 53))
