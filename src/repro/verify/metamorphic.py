"""Metamorphic properties: relations between *runs*, not within one.

Where the oracle checks one run against the spec, these checks compare
whole runs against each other — properties that must hold whatever the
workload, straight from the paper:

* **invalidation ⇒ zero stale hits** — "the server notifies caches that
  their copies are no longer valid", so perfect consistency (§1).
* **optimized bytes ≤ base bytes** — the conditional-retrieval
  optimization can only remove body transfers, never add bytes
  (Figure 4 vs Figure 2).  Holds for protocols whose freshness decisions
  do not depend on validation outcomes (TTL, Alex, Expires,
  invalidation) — an adaptive protocol's decisions differ between
  modes, so the per-request dominance argument no longer applies.
* **poll-every-request ⇒ validations == requests** — Figure 8's
  threshold-0 pathology: every request checks with the server.
* **hit/miss closure** — every request is exactly one of hit or miss.

Each check runs the simulations it needs (through the oracle when
verification is enabled) and returns a :class:`PropertyResult`;
:func:`run_metamorphic_suite` bundles the whole list for one workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    InvalidationProtocol,
    PollEveryRequestProtocol,
    TTLProtocol,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.verify.oracle import checked_simulate


@dataclass(frozen=True)
class PropertyResult:
    """One metamorphic property's verdict."""

    name: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        status = "ok" if self.holds else "VIOLATED"
        return f"[{status}] {self.name}: {self.detail}"


def _run(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Sequence[tuple[float, str]],
    mode: SimulatorMode,
    costs: MessageCosts,
    end_time: Optional[float],
) -> SimulationResult:
    return checked_simulate(
        server, protocol, requests, mode, costs=costs, end_time=end_time
    )


def check_invalidation_zero_stale(
    server: OriginServer,
    requests: Sequence[tuple[float, str]],
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    end_time: Optional[float] = None,
) -> PropertyResult:
    """Invalidation protocol must never serve stale content."""
    result = _run(
        server, InvalidationProtocol(), requests,
        SimulatorMode.OPTIMIZED, costs, end_time,
    )
    stale = result.counters.stale_hits
    return PropertyResult(
        name="invalidation-zero-stale",
        holds=stale == 0,
        detail=f"stale_hits={stale} over {result.counters.requests} requests",
    )


def check_optimized_bytes_leq_base(
    server: OriginServer,
    requests: Sequence[tuple[float, str]],
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    end_time: Optional[float] = None,
) -> PropertyResult:
    """Optimized mode may never cost more bytes than base mode.

    Checked for the paper's three Figure-2/4 protocols (fixed-rule
    freshness, so both modes make identical decisions).
    """
    worst = ""
    holds = True
    for factory in (
        lambda: TTLProtocol(ttl=36_000.0),
        lambda: AlexProtocol.from_percent(10),
        lambda: InvalidationProtocol(),
    ):
        base = _run(
            server, factory(), requests, SimulatorMode.BASE, costs, end_time
        )
        optimized = _run(
            server, factory(), requests,
            SimulatorMode.OPTIMIZED, costs, end_time,
        )
        b, o = base.bandwidth.total_bytes, optimized.bandwidth.total_bytes
        if o > b:
            holds = False
            worst = f"{base.protocol_name}: optimized={o} > base={b}; "
        else:
            worst += f"{base.protocol_name}: {o} <= {b}; "
    return PropertyResult(
        name="optimized-bytes-leq-base", holds=holds, detail=worst.strip("; ")
    )


def check_poll_validates_every_request(
    server: OriginServer,
    requests: Sequence[tuple[float, str]],
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    end_time: Optional[float] = None,
) -> PropertyResult:
    """TTL=0 / poll-every-request: each cacheable request validates.

    With the paper's preloaded cache, every request for a cacheable
    object finds a (never fresh) entry and issues an If-Modified-Since;
    only dynamic objects bypass validation with a regeneration fetch.
    """
    result = _run(
        server, PollEveryRequestProtocol(), requests,
        SimulatorMode.OPTIMIZED, costs, end_time,
    )
    counters = result.counters
    dynamic = sum(
        1
        for _, oid in requests
        if not server.object(oid).cacheable
    )
    expected = counters.requests - dynamic
    return PropertyResult(
        name="poll-validates-every-request",
        holds=counters.validations == expected,
        detail=(
            f"validations={counters.validations} expected={expected} "
            f"({dynamic} dynamic)"
        ),
    )


def check_hit_miss_closure(
    server: OriginServer,
    requests: Sequence[tuple[float, str]],
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    end_time: Optional[float] = None,
) -> PropertyResult:
    """Every request resolves to exactly one of hit or miss, for every
    protocol family and both modes."""
    detail = []
    holds = True
    factories = (
        lambda: TTLProtocol(ttl=36_000.0),
        lambda: AlexProtocol.from_percent(10),
        lambda: InvalidationProtocol(),
    )
    for mode in (SimulatorMode.BASE, SimulatorMode.OPTIMIZED):
        for factory in factories:
            result = _run(server, factory(), requests, mode, costs, end_time)
            c = result.counters
            if c.hits + c.misses != c.requests:
                holds = False
                detail.append(
                    f"{result.protocol_name}[{mode.value}]: "
                    f"{c.hits}+{c.misses} != {c.requests}"
                )
    return PropertyResult(
        name="hit-miss-closure",
        holds=holds,
        detail="; ".join(detail) if detail else "hits + misses == requests "
        "for all protocols, both modes",
    )


def run_metamorphic_suite(
    server: OriginServer,
    requests: Iterable[tuple[float, str]],
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    end_time: Optional[float] = None,
) -> list[PropertyResult]:
    """Run every metamorphic check against one workload.

    Returns:
        One :class:`PropertyResult` per property; callers decide whether
        a violation is fatal (tests assert, the CLI prints).
    """
    request_list = list(requests)
    return [
        check_invalidation_zero_stale(
            server, request_list, costs=costs, end_time=end_time
        ),
        check_optimized_bytes_leq_base(
            server, request_list, costs=costs, end_time=end_time
        ),
        check_poll_validates_every_request(
            server, request_list, costs=costs, end_time=end_time
        ),
        check_hit_miss_closure(
            server, request_list, costs=costs, end_time=end_time
        ),
    ]
