"""The differential oracle: run the real simulator, replay the spec, diff.

:func:`verify_simulation` executes one run twice — once through the
production :class:`~repro.core.simulator.Simulation` (with an
:data:`~repro.core.simulator.EventObserver` recording every event) and
once through the brute-force :class:`~repro.verify.spec.SpecModel` — and
compares:

* the **event streams**, event-for-event (kind, time, object id);
* every :class:`~repro.core.metrics.ConsistencyCounters` field;
* every :class:`~repro.core.metrics.BandwidthLedger` cell
  (control bytes, body bytes, exchange counts, per category).

When the fast path supports the configuration, the oracle also replays
the run through :mod:`repro.fastpath` and holds it to the same standard
— exactly, with no float tolerance (see :func:`_check_fastpath`).

Any divergence raises :class:`ConsistencyViolation` carrying the full
diff.  :func:`checked_simulate` is the drop-in used by the experiment
pipeline: a plain :func:`~repro.fastpath.engine_simulate` (which routes
to the fast or reference engine) unless verification is enabled for the
process (``--verify`` flags call :func:`set_enabled`; the
``REPRO_VERIFY`` environment variable covers forked sweep workers,
which inherit the module state either way).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.cache import Cache
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import Simulation, SimulatorMode
from repro.fastpath import (
    diff_events as _fastpath_diff_events,
    diff_metrics as _fastpath_diff_metrics,
    diff_results as _fastpath_diff_results,
    engine_simulate,
    fast_simulate,
    unsupported_reason,
)
from repro.faults.plan import FaultPlan
from repro.obs import clock as obs_clock
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace
from repro.verify.spec import (
    _CATEGORIES,
    _COUNTER_NAMES,
    SpecModel,
    SpecOutcome,
    UnsupportedProtocolError,
    rule_for,
)

_TRUTHY = {"1", "true", "yes", "on"}

_enabled = os.environ.get("REPRO_VERIFY", "").strip().lower() in _TRUTHY


def set_enabled(flag: bool) -> None:
    """Turn process-wide verification on or off.

    Also mirrors the setting into ``REPRO_VERIFY`` so worker processes —
    forked *or* spawned — agree with the parent.
    """
    global _enabled
    _enabled = bool(flag)
    os.environ["REPRO_VERIFY"] = "1" if flag else "0"


def is_enabled() -> bool:
    """True when :func:`checked_simulate` runs the oracle."""
    return _enabled


_verified_count = 0


def runs_verified() -> int:
    """Simulations verified by *this process* since import.

    Forked pool workers inherit the current value and count on from
    there; their increments are not visible to the parent.  Callers that
    fan out (see ``repro.experiments.registry``) combine this local
    delta with the ``verified_runs`` instrumentation that pool-run
    sweeps carry back in their :class:`~repro.runtime.RunStats`.
    """
    return _verified_count


class ConsistencyViolation(AssertionError):
    """The simulator and the spec model disagreed.

    Attributes:
        report: the full :class:`OracleReport` with every divergence.
    """

    def __init__(self, report: "OracleReport") -> None:
        self.report = report
        lines = "\n  ".join(report.divergences[:20])
        more = len(report.divergences) - 20
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        super().__init__(
            f"oracle divergence for {report.protocol_name} "
            f"[{report.mode}]: {len(report.divergences)} difference(s)\n"
            f"  {lines}{suffix}"
        )


@dataclass
class OracleReport:
    """Outcome of one differential check."""

    protocol_name: str
    mode: str
    events_checked: int = 0
    counters_checked: int = 0
    ledger_cells_checked: int = 0
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when simulator and spec agreed on everything."""
        return not self.divergences


def _diff_events(
    actual: list[tuple[str, float, str]],
    expected: list[tuple[str, float, str]],
    report: OracleReport,
) -> None:
    limit = min(len(actual), len(expected))
    for i in range(limit):
        if actual[i] != expected[i]:
            report.divergences.append(
                f"event[{i}]: simulator={actual[i]!r} spec={expected[i]!r}"
            )
    if len(actual) != len(expected):
        report.divergences.append(
            f"event count: simulator={len(actual)} spec={len(expected)}"
        )
    report.events_checked = limit


def _diff_counters(
    result: SimulationResult, outcome: SpecOutcome, report: OracleReport
) -> None:
    for name in _COUNTER_NAMES:
        actual = getattr(result.counters, name)
        expected = outcome.counters[name]
        if isinstance(expected, float):
            same = math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-6)
        else:
            same = actual == expected
        if not same:
            report.divergences.append(
                f"counters.{name}: simulator={actual!r} spec={expected!r}"
            )
    report.counters_checked = len(_COUNTER_NAMES)


def _diff_ledger(
    result: SimulationResult, outcome: SpecOutcome, report: OracleReport
) -> None:
    ledger = result.bandwidth
    cells = (
        ("control_bytes", ledger.control_bytes, outcome.control_bytes),
        ("body_bytes", ledger.body_bytes, outcome.body_bytes),
        ("exchanges", ledger.exchanges, outcome.exchanges),
    )
    for label, actual_map, expected_map in cells:
        for category in _CATEGORIES:
            actual = actual_map[category]
            expected = expected_map[category]
            if actual != expected:
                report.divergences.append(
                    f"bandwidth.{label}[{category}]: "
                    f"simulator={actual} spec={expected}"
                )
            report.ledger_cells_checked += 1


def _check_fastpath(
    report: OracleReport,
    result: SimulationResult,
    events: list[tuple[str, float, str]],
    server: OriginServer,
    protocol: ConsistencyProtocol,
    request_list: list[tuple[float, str]],
    mode: SimulatorMode,
    *,
    costs: MessageCosts,
    preload: bool,
    start_time: float,
    end_time: Optional[float],
    charge_per_modification: bool,
    faults: Optional[FaultPlan],
) -> None:
    """Replay the run on the fast path and diff it against the reference.

    This is the third leg of the oracle: when :mod:`repro.fastpath`
    supports the configuration, the same run executes on the compiled
    arrays and must match the reference counter-for-counter,
    ledger-cell-for-ledger-cell, and event-for-event — *exactly* (no
    float tolerance; the contract in docs/FASTPATH.md).  Unsupported
    configurations (fault plans, adaptive protocols, eager variants)
    are skipped: there the fast path would have fallen back to the very
    simulator being verified.  Divergences are labelled ``fastpath.*``
    in the report.

    The metrics-equivalence clause rides along: the fast replay runs
    under a *scoped* fresh registry (so the kernel's batched flush lands
    there), a second reference run fills another fresh registry the
    historical per-observation way, and the two dumps must serialize
    byte-for-byte identically (engine bookkeeping names excluded; see
    :func:`repro.fastpath.diff_metrics`).  The ambient trace sink is
    suspended for both so the oracle's replays never duplicate the
    primary run's event stream.

    The supported protocols are stateless parameter holders, so reusing
    the caller's instance after the reference run is safe — the compiled
    kernel reads only its construction parameters.
    """
    if unsupported_reason(protocol, faults=faults) is not None:
        return
    fast_events: list[tuple[str, float, str]] = []
    fast_registry = obs_metrics.MetricsRegistry()
    ref_registry = obs_metrics.MetricsRegistry()
    previous_sink = obs_trace.install(None)
    try:
        with obs_metrics.installed(fast_registry):
            fast_result = fast_simulate(
                server,
                protocol,
                request_list,
                mode,
                costs=costs,
                preload=preload,
                start_time=start_time,
                end_time=end_time,
                charge_per_modification=charge_per_modification,
                observer=lambda kind, t, oid: fast_events.append(
                    (kind, t, oid)
                ),
            )
        with obs_metrics.installed(ref_registry):
            Simulation(
                server,
                protocol,
                mode,
                costs=costs,
                preload=preload,
                start_time=start_time,
                charge_per_modification=charge_per_modification,
                faults=faults,
            ).run(request_list, end_time=end_time)
    finally:
        obs_trace.install(previous_sink)
    report.divergences.extend(
        _fastpath_diff_results(fast_result, result)
        + _fastpath_diff_events(fast_events, events)
        + _fastpath_diff_metrics(
            fast_registry.as_dict(), ref_registry.as_dict()
        )
    )


def verify_simulation(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    preload: bool = True,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    faults: Optional[FaultPlan] = None,
) -> tuple[SimulationResult, OracleReport]:
    """Run one simulation under the oracle and return both outcomes.

    The ``protocol`` instance must be fresh (unused): adaptive protocols
    carry state, and the spec re-derives that state from the instance's
    construction parameters.  A ``faults`` plan is handed to both sides
    (it is configuration, like ``costs``): each compiles its own
    schedule from its own view of the modification feed, and the oracle
    then diffs the two replays of the faulty delivery — loss, retries,
    drops, crashes, and the ``fault_*`` event kinds included.

    Raises:
        ConsistencyViolation: on any counter, ledger, or event
            divergence.
        UnsupportedProtocolError: when no spec rule covers the protocol.
    """
    request_list = list(requests)
    rule = rule_for(protocol)
    check_started = obs_clock.monotonic()

    events: list[tuple[str, float, str]] = []
    sim = Simulation(
        server,
        protocol,
        mode,
        costs=costs,
        preload=preload,
        start_time=start_time,
        observer=lambda kind, t, oid: events.append((kind, t, oid)),
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    result = sim.run(request_list, end_time=end_time)

    spec = SpecModel(
        server,
        rule,
        mode,
        costs=costs,
        charge_per_modification=charge_per_modification,
        preload=preload,
        start_time=start_time,
        faults=faults,
    )
    outcome = spec.run(request_list, end_time=end_time)

    report = OracleReport(protocol_name=result.protocol_name, mode=result.mode)
    _diff_events(events, outcome.events, report)
    _diff_counters(result, outcome, report)
    _diff_ledger(result, outcome, report)
    _check_fastpath(
        report,
        result,
        events,
        server,
        protocol,
        request_list,
        mode,
        costs=costs,
        preload=preload,
        start_time=start_time,
        end_time=end_time,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    if not report.ok:
        raise ConsistencyViolation(report)
    global _verified_count
    _verified_count += 1
    obs_metrics.emit("verify.runs")
    obs_trace.span(
        "verify.run",
        obs_clock.monotonic() - check_started,
        protocol=report.protocol_name,
        events=report.events_checked,
    )
    return result, report


def checked_simulate(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    cache: Optional[Cache] = None,
    preload: bool = True,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    faults: Optional[FaultPlan] = None,
    force: bool = False,
) -> SimulationResult:
    """Drop-in for :func:`~repro.core.simulator.simulate` that
    self-checks against the spec when verification is enabled.

    Verification is skipped (:func:`~repro.fastpath.engine_simulate`
    runs, dispatching to the selected engine) when:

    * it is disabled and ``force`` is False;
    * a caller-supplied ``cache`` is in play — bounded capacity and
      pre-seeded state are outside the spec's scope;
    * the protocol class has no spec rule (custom subclasses).

    Raises:
        ConsistencyViolation: when verification runs and diverges.
    """
    if not (force or _enabled) or cache is not None:
        return engine_simulate(
            server,
            protocol,
            requests,
            mode,
            costs=costs,
            cache=cache,
            preload=preload,
            start_time=start_time,
            end_time=end_time,
            charge_per_modification=charge_per_modification,
            faults=faults,
        )
    try:
        rule_for(protocol)
    except UnsupportedProtocolError:
        return engine_simulate(
            server,
            protocol,
            requests,
            mode,
            costs=costs,
            preload=preload,
            start_time=start_time,
            end_time=end_time,
            charge_per_modification=charge_per_modification,
            faults=faults,
        )
    result, _report = verify_simulation(
        server,
        protocol,
        requests,
        mode,
        costs=costs,
        preload=preload,
        start_time=start_time,
        end_time=end_time,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
    return result
