"""The brute-force specification model.

:class:`SpecModel` re-derives, for every request, what the simulator
*should* have done — freshness, staleness, and message charges — working
only from the protocol definitions in the paper (§1 protocol
descriptions, §4.1 cost model).  It is intentionally naive:

* content versions and Last-Modified timestamps come from **linear
  scans** over the modification schedule, not the simulator's bisect
  fast path;
* byte charges are recomputed from ``costs.control_message`` and the
  object size, not taken from :class:`~repro.core.costs.MessageCosts`
  helper methods;
* protocol freshness rules are re-implemented here as small
  :class:`SpecRule` classes that share **no code** with
  :mod:`repro.core.protocols`.

The model emits the same event alphabet as the simulator's
:data:`~repro.core.simulator.EventObserver`
(:data:`repro.core.simulator.EVENT_KINDS`), so the oracle can diff the
two streams event-for-event.

Scope: a single unbounded cache (the paper's configuration — "valid
entries are never evicted").  Bounded caches and pluggable replacement
are outside the spec; :func:`repro.verify.oracle.checked_simulate`
bypasses verification for those runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ConsistencyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    SelfTuningProtocol,
    TTLProtocol,
)
from repro.core.server import OriginServer
from repro.core.simulator import SimulatorMode
from repro.faults.plan import (
    ATTEMPT_LOST,
    ATTEMPT_SENT,
    CRASH,
    DROP,
    FaultAction,
    FaultPlan,
)

#: Ledger categories, mirrored from the paper's §3 bandwidth breakdown.
_CATEGORIES = (
    "full_retrieval",
    "validation_304",
    "validation_200",
    "invalidation",
    "prefetch",
)


class UnsupportedProtocolError(TypeError):
    """Raised when no spec rule exists for a protocol class.

    The oracle only certifies protocols whose definitions it has
    independently re-implemented; a custom subclass must bring its own
    rule (or run unverified).
    """


# ---------------------------------------------------------------------------
# Naive schedule queries (linear scans on purpose — the simulator bisects).
# ---------------------------------------------------------------------------


def _version_at(times: tuple[float, ...], t: float) -> int:
    count = 0
    for mod_time in times:
        if mod_time <= t:
            count += 1
    return count


def _last_modified_at(created: float, times: tuple[float, ...], t: float) -> float:
    last = created
    for mod_time in times:
        if mod_time <= t:
            last = mod_time
    return last


def _next_change_after(times: tuple[float, ...], t: float) -> Optional[float]:
    for mod_time in times:
        if mod_time > t:
            return mod_time
    return None


# ---------------------------------------------------------------------------
# Spec entry state + protocol rules.
# ---------------------------------------------------------------------------


@dataclass
class SpecEntry:
    """The cache-entry state the spec tracks for one object."""

    version: int
    size: int
    file_type: str
    validated_at: float
    last_modified: float
    valid: bool = True
    server_expires: Optional[float] = None
    #: CERN-style absolute expiry derived at store time.
    derived_expiry: Optional[float] = None


class SpecRule:
    """One protocol's freshness definition, re-stated from the paper."""

    #: True for the invalidation protocol: the origin's modification feed
    #: is delivered as callbacks.
    wants_feed = False
    #: True for the eager (pre-optimization) invalidation variant.
    eager = False

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        raise NotImplementedError

    def on_store(self, entry: SpecEntry, now: float) -> None:
        """Invoked after a body transfer or a 304 refresh."""

    def on_validation(
        self, entry: SpecEntry, now: float, was_modified: bool
    ) -> None:
        """Invoked after an If-Modified-Since exchange (adaptive rules)."""


class _TTLRule(SpecRule):
    """§1: "When the TTL elapses, the data is considered invalid"."""

    def __init__(self, ttl: float) -> None:
        self.ttl = ttl

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        return now - entry.validated_at < self.ttl


class _ExpiresRule(_TTLRule):
    """HTTP Expires when the server sent one, else the default TTL."""

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        if entry.server_expires is not None:
            return now < entry.server_expires
        return now - entry.validated_at < self.ttl


class _AlexRule(SpecRule):
    """§1: invalid "when the time since last validation exceeds the
    update threshold times the object's age"."""

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        age = entry.validated_at - entry.last_modified
        if age <= 0.0:
            return False
        return now - entry.validated_at < self.threshold * age


class _InvalidationRule(SpecRule):
    """§1: fresh exactly until the server's callback clears the flag."""

    wants_feed = True

    def __init__(self, eager: bool) -> None:
        self.eager = eager

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        return entry.valid


class _LeasedInvalidationRule(SpecRule):
    """Hardened invalidation: the callback flag *and* a bounded lease —
    a copy is never served more than ``lease`` seconds past its last
    validation, so lost callbacks cannot cause unbounded staleness."""

    wants_feed = True

    def __init__(self, lease: float, eager: bool) -> None:
        self.lease = lease
        self.eager = eager

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        return entry.valid and now - entry.validated_at < self.lease


class _PollRule(SpecRule):
    """Figure 8's degenerate case: check with the server every request."""

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        return False


class _CERNRule(SpecRule):
    """§2: Expires header, else a fraction of Last-Modified age, else a
    default — all resolved to an absolute expiry at store time."""

    def __init__(
        self, lm_fraction: float, default_ttl: float, max_ttl: Optional[float]
    ) -> None:
        self.lm_fraction = lm_fraction
        self.default_ttl = default_ttl
        self.max_ttl = max_ttl

    def on_store(self, entry: SpecEntry, now: float) -> None:
        if entry.server_expires is not None:
            entry.derived_expiry = entry.server_expires
            return
        age = now - entry.last_modified
        ttl = self.lm_fraction * age if age > 0 else self.default_ttl
        if self.max_ttl is not None and ttl > self.max_ttl:
            ttl = self.max_ttl
        entry.derived_expiry = now + ttl

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        return entry.derived_expiry is not None and now < entry.derived_expiry


class _SelfTuningRule(SpecRule):
    """§5 future work: per-file-type Alex thresholds, MIMD-adapted."""

    def __init__(
        self,
        initial: float,
        minimum: float,
        maximum: float,
        increase: float,
        decrease: float,
    ) -> None:
        self.initial = initial
        self.minimum = minimum
        self.maximum = maximum
        self.increase = increase
        self.decrease = decrease
        self._thresholds: dict[str, float] = {}

    def _threshold(self, file_type: str) -> float:
        return self._thresholds.get(file_type, self.initial)

    def fresh(self, entry: SpecEntry, now: float) -> bool:
        age = entry.validated_at - entry.last_modified
        if age <= 0.0:
            return False
        return now - entry.validated_at < self._threshold(entry.file_type) * age

    def on_validation(
        self, entry: SpecEntry, now: float, was_modified: bool
    ) -> None:
        current = self._threshold(entry.file_type)
        if was_modified:
            updated = max(current * self.decrease, self.minimum)
        else:
            updated = min(current * self.increase, self.maximum)
        self._thresholds[entry.file_type] = updated


def rule_for(protocol: ConsistencyProtocol) -> SpecRule:
    """Build the independent spec rule for ``protocol``.

    Dispatch is on the *exact* class: a subclass may override freshness
    in ways the spec knows nothing about.

    Raises:
        UnsupportedProtocolError: for classes with no spec rule.
    """
    kind = type(protocol)
    if kind is ExpiresTTLProtocol:
        return _ExpiresRule(protocol.ttl)
    if kind is TTLProtocol:
        return _TTLRule(protocol.ttl)
    if kind is AlexProtocol:
        return _AlexRule(protocol.threshold)
    if kind is InvalidationProtocol:
        return _InvalidationRule(protocol.eager)
    if kind is LeasedInvalidationProtocol:
        return _LeasedInvalidationRule(protocol.lease, protocol.eager)
    if kind is PollEveryRequestProtocol:
        return _PollRule()
    if kind is CERNPolicyProtocol:
        return _CERNRule(
            protocol.lm_fraction, protocol.default_ttl, protocol.max_ttl
        )
    if kind is SelfTuningProtocol:
        return _SelfTuningRule(
            protocol.initial_threshold,
            protocol.min_threshold,
            protocol.max_threshold,
            protocol.increase_factor,
            protocol.decrease_factor,
        )
    raise UnsupportedProtocolError(
        f"no spec rule for protocol class {kind.__name__!r}"
    )


# ---------------------------------------------------------------------------
# The model itself.
# ---------------------------------------------------------------------------


@dataclass
class SpecOutcome:
    """Everything the spec predicts for one run."""

    events: list[tuple[str, float, str]]
    counters: dict[str, float]
    control_bytes: dict[str, int] = field(default_factory=dict)
    body_bytes: dict[str, int] = field(default_factory=dict)
    exchanges: dict[str, int] = field(default_factory=dict)


_COUNTER_NAMES = (
    "requests",
    "hits",
    "misses",
    "stale_hits",
    "stale_age_sum",
    "validations",
    "validations_not_modified",
    "full_retrievals",
    "invalidations_received",
    "prefetches",
    "server_gets",
    "server_ims_queries",
    "server_invalidations_sent",
)


class SpecModel:
    """Replay a request stream the slow, obviously-correct way.

    Args:
        server: the origin (queried only for object metadata and raw
            modification schedules).
        rule: the protocol's spec rule (see :func:`rule_for`).
        mode: base or optimized simulator semantics.
        costs: byte cost model; charges are recomputed from its
            ``control_message`` size and the object sizes.
        charge_per_modification: the §4.1 charging policy, mirroring
            :class:`repro.core.simulator.Simulation`.
        preload: whether the run starts from a fully preloaded cache.
        start_time: when the run begins.
        faults: the :class:`repro.faults.FaultPlan` the simulator ran
            under, if any.  The spec compiles the *same* plan against
            its own naively-rebuilt feed (the schedule is configuration,
            like ``costs``) and independently re-derives every charge,
            counter, and event the faulty delivery should produce.
    """

    def __init__(
        self,
        server: OriginServer,
        rule: SpecRule,
        mode: SimulatorMode = SimulatorMode.OPTIMIZED,
        *,
        costs: MessageCosts = DEFAULT_COSTS,
        charge_per_modification: bool = True,
        preload: bool = True,
        start_time: float = 0.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.server = server
        self.rule = rule
        self.mode = mode
        self.control = costs.control_message
        self.charge_per_modification = charge_per_modification
        self.start_time = start_time
        self.entries: dict[str, SpecEntry] = {}
        self.events: list[tuple[str, float, str]] = []
        self.counters: dict[str, float] = {name: 0 for name in _COUNTER_NAMES}
        self.counters["stale_age_sum"] = 0.0
        self.control_bytes = {c: 0 for c in _CATEGORIES}
        self.body_bytes = {c: 0 for c in _CATEGORIES}
        self.exchanges = {c: 0 for c in _CATEGORIES}
        # The modification feed, rebuilt naively from raw schedules.
        self._feed: list[tuple[float, str]] = []
        self._feed_idx = 0
        self._actions: tuple[FaultAction, ...] = ()
        self._action_idx = 0
        self._faulty = faults is not None
        if rule.wants_feed:
            for oid, history in server.histories().items():
                for mod_time in history.schedule.times:
                    self._feed.append((mod_time, oid))
            self._feed.sort()
            while (
                self._feed_idx < len(self._feed)
                and self._feed[self._feed_idx][0] <= start_time
            ):
                self._feed_idx += 1
        if faults is not None:
            # Same plan, independently-rebuilt feed: the compiled
            # schedule is identical to the simulator's by construction
            # (both feeds are the full modification set sorted by
            # (time, id)), and the fault loop replaces the plain one.
            self._actions = faults.compile(
                tuple(self._feed) if rule.wants_feed else (),
                start_time=start_time,
            )
        if preload:
            for oid, history in server.histories().items():
                if not history.obj.cacheable:
                    continue
                self._store(oid, start_time)

    # -- plumbing -------------------------------------------------------------

    def _charge(self, category: str, control: int, body: int) -> None:
        self.control_bytes[category] += control
        self.body_bytes[category] += body
        self.exchanges[category] += 1

    def _store(self, object_id: str, t: float) -> SpecEntry:
        history = self.server.history(object_id)
        obj = history.obj
        schedule = history.schedule
        entry = SpecEntry(
            version=_version_at(schedule.times, t),
            size=obj.size,
            file_type=obj.file_type,
            validated_at=t,
            last_modified=_last_modified_at(schedule.created, schedule.times, t),
            valid=True,
            server_expires=(
                t + obj.expires_after if obj.expires_after is not None else None
            ),
        )
        self.entries[object_id] = entry
        self.rule.on_store(entry, t)
        return entry

    def _full_fetch(self, object_id: str, t: float) -> None:
        size = self.server.object(object_id).size
        self._charge("full_retrieval", 2 * self.control, size)
        self.counters["full_retrievals"] += 1
        self.counters["server_gets"] += 1
        self.counters["misses"] += 1

    def _deliver_until(self, t: float) -> None:
        feed = self._feed
        idx = self._feed_idx
        while idx < len(feed) and feed[idx][0] <= t:
            mod_time, oid = feed[idx]
            idx += 1
            entry = self.entries.get(oid)
            if entry is None:
                continue
            went_invalid = entry.valid
            entry.valid = False
            if went_invalid or self.charge_per_modification:
                self.counters["invalidations_received"] += 1
                self.counters["server_invalidations_sent"] += 1
                self._charge("invalidation", self.control, 0)
                self.events.append(("invalidation", mod_time, oid))
            if self.rule.eager:
                size = self.server.object(oid).size
                self._charge("prefetch", 2 * self.control, size)
                self.counters["prefetches"] += 1
                self.counters["server_gets"] += 1
                self._store(oid, mod_time)
                self.events.append(("prefetch", mod_time, oid))
        self._feed_idx = idx

    def _process_actions_until(self, t: float) -> None:
        """Replay the compiled fault schedule up to ``t``, naively.

        Mirrors the semantics documented in :mod:`repro.faults.plan`
        without sharing the simulator's code: attempts that leave the
        server are charged (even if lost), deliveries invalidate unless
        a refetch superseded them, drops and crashes only emit their
        fault events.
        """
        actions = self._actions
        idx = self._action_idx
        while idx < len(actions) and actions[idx].time <= t:
            action = actions[idx]
            idx += 1
            if action.kind == CRASH:
                self.entries.clear()
                self.events.append(("fault_cache_crash", action.time, ""))
                continue
            entry = self.entries.get(action.object_id)
            if entry is None:
                continue
            if action.kind == ATTEMPT_SENT or action.kind == ATTEMPT_LOST:
                if entry.valid or self.charge_per_modification:
                    self.counters["server_invalidations_sent"] += 1
                    self._charge("invalidation", self.control, 0)
                    if action.kind == ATTEMPT_LOST:
                        self.events.append(
                            ("fault_invalidation_lost", action.time,
                             action.object_id)
                        )
            elif action.kind == DROP:
                if entry.valid:
                    self.events.append(
                        ("fault_invalidation_dropped", action.time,
                         action.object_id)
                    )
            else:  # deliver
                went_invalid = (
                    entry.valid and entry.last_modified < action.mod_time
                )
                if went_invalid:
                    entry.valid = False
                if went_invalid or self.charge_per_modification:
                    self.counters["invalidations_received"] += 1
                    if action.attempt > 0:
                        self.events.append(
                            ("fault_invalidation_recovered", action.time,
                             action.object_id)
                        )
                    self.events.append(
                        ("invalidation", action.time, action.object_id)
                    )
                if self.rule.eager:
                    size = self.server.object(action.object_id).size
                    self._charge("prefetch", 2 * self.control, size)
                    self.counters["prefetches"] += 1
                    self.counters["server_gets"] += 1
                    self._store(action.object_id, action.time)
                    self.events.append(
                        ("prefetch", action.time, action.object_id)
                    )
        self._action_idx = idx

    # -- the replay ------------------------------------------------------------

    def step(self, t: float, object_id: str) -> None:
        """Re-derive one request's outcome from first principles."""
        if self._faulty:
            self._process_actions_until(t)
        elif self._feed:
            self._deliver_until(t)
        self.counters["requests"] += 1
        history = self.server.history(object_id)
        obj = history.obj
        schedule = history.schedule

        if not obj.cacheable:
            self._full_fetch(object_id, t)
            self.events.append(("dynamic_fetch", t, object_id))
            return

        entry = self.entries.get(object_id)
        if entry is None:
            self._full_fetch(object_id, t)
            self._store(object_id, t)
            self.events.append(("miss", t, object_id))
            return

        if self.rule.fresh(entry, t):
            self.counters["hits"] += 1
            if entry.version < _version_at(schedule.times, t):
                self.counters["stale_hits"] += 1
                became_stale = _next_change_after(
                    schedule.times, entry.last_modified
                )
                if became_stale is not None:
                    self.counters["stale_age_sum"] += t - became_stale
                self.events.append(("stale_hit", t, object_id))
            else:
                self.events.append(("hit", t, object_id))
            return

        if self.mode is SimulatorMode.BASE:
            self._full_fetch(object_id, t)
            self._store(object_id, t)
            self.events.append(("miss", t, object_id))
            return

        # Optimized mode: If-Modified-Since exchange.
        self.counters["validations"] += 1
        self.counters["server_ims_queries"] += 1
        origin_lm = _last_modified_at(schedule.created, schedule.times, t)
        if origin_lm <= entry.last_modified:
            self._charge("validation_304", 2 * self.control, 0)
            self.counters["validations_not_modified"] += 1
            entry.validated_at = t
            entry.valid = True
            entry.server_expires = (
                t + obj.expires_after if obj.expires_after is not None else None
            )
            self.rule.on_store(entry, t)
            self.rule.on_validation(entry, t, was_modified=False)
            self.counters["hits"] += 1
            self.events.append(("validation_304", t, object_id))
            return
        self._charge("validation_200", 2 * self.control, obj.size)
        self.counters["misses"] += 1
        entry = self._store(object_id, t)
        self.rule.on_validation(entry, t, was_modified=True)
        self.events.append(("validation_200", t, object_id))

    def run(
        self,
        requests: Iterable[tuple[float, str]],
        end_time: Optional[float] = None,
    ) -> SpecOutcome:
        """Replay the full stream and return everything predicted."""
        for t, object_id in requests:
            self.step(t, object_id)
        if end_time is not None:
            if self._faulty:
                self._process_actions_until(end_time)
            elif self._feed:
                self._deliver_until(end_time)
        return SpecOutcome(
            events=self.events,
            counters=self.counters,
            control_bytes=self.control_bytes,
            body_bytes=self.body_bytes,
            exchanges=self.exchanges,
        )
