"""Differential verification for the simulator (`the consistency oracle`).

The paper's argument is carried entirely by counters — stale hits,
invalidation messages, "a cache miss is recorded only when a file
actually needs to be transferred" — so this package cross-checks the
production simulator against an independent, deliberately naive
re-implementation of the protocol definitions:

* :mod:`repro.verify.spec` — the :class:`SpecModel`, a brute-force
  per-request recomputation of freshness, staleness and message charges
  straight from the protocol definitions (linear scans, no caching, no
  shared code with the simulator's hot path).
* :mod:`repro.verify.oracle` — replays a run's
  :data:`~repro.core.simulator.EventObserver` stream event-for-event
  against the spec and diffs every counter and bandwidth ledger entry;
  :func:`checked_simulate` is a drop-in for
  :func:`~repro.core.simulator.simulate` that self-checks when
  verification is enabled (``--verify`` / ``REPRO_VERIFY=1``).
* :mod:`repro.verify.metamorphic` — cross-run properties that must hold
  whatever the workload (invalidation ⇒ zero stale hits, optimized
  bytes ≤ base bytes, poll-every-request ⇒ validations == requests,
  hit/miss closure).

See docs/PROTOCOLS.md § "Invariants & verification" for usage.
"""

from repro.verify.metamorphic import (
    PropertyResult,
    check_hit_miss_closure,
    check_invalidation_zero_stale,
    check_optimized_bytes_leq_base,
    check_poll_validates_every_request,
    run_metamorphic_suite,
)
from repro.verify.oracle import (
    ConsistencyViolation,
    OracleReport,
    checked_simulate,
    is_enabled,
    set_enabled,
    verify_simulation,
)
from repro.verify.spec import SpecModel, UnsupportedProtocolError, rule_for

__all__ = [
    "ConsistencyViolation",
    "OracleReport",
    "PropertyResult",
    "SpecModel",
    "UnsupportedProtocolError",
    "check_hit_miss_closure",
    "check_invalidation_zero_stale",
    "check_optimized_bytes_leq_base",
    "check_poll_validates_every_request",
    "checked_simulate",
    "is_enabled",
    "rule_for",
    "run_metamorphic_suite",
    "set_enabled",
    "verify_simulation",
]
