"""Prometheus text exposition (format 0.0.4) for registry dumps.

``repro metrics DUMP.json --format prom`` renders a ``--metrics`` dump
so external scrapers (or a human with ``curl`` muscle memory) can
consume a long sweep's registry without bespoke parsing.  The renderer
follows the Prometheus 0.0.4 text format:

* metric names are the dotted repro names with every non-alphanumeric
  character mapped to ``_`` and a ``repro_`` prefix
  (``sim.event.stale_hit`` -> ``repro_sim_event_stale_hit``);
* counters and gauges are single samples with ``# HELP`` / ``# TYPE``
  headers;
* histograms emit cumulative ``_bucket{le="..."}`` samples (including
  the ``le="+Inf"`` bucket), plus ``_sum`` and ``_count``.

Output ordering is the dump's sorted-name ordering, so rendering is
deterministic — the golden-file test in ``tests/obs/test_prom.py``
pins it byte-for-byte.
"""

from __future__ import annotations

import re
from typing import Any

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Content type a scrape endpoint would declare for this output.
CONTENT_TYPE = "text/plain; version=0.0.4"


def metric_name(name: str) -> str:
    """The sanitized, ``repro_``-prefixed Prometheus metric name."""
    return "repro_" + _NAME_RE.sub("_", name)


def _format_value(value: float) -> str:
    """Render integral floats as integers, per the usual exposition style."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """A ``le`` label value (trailing-zero-free but unambiguous)."""
    text = f"{bound:g}"
    return text


def render(dump: dict[str, Any]) -> str:
    """Render a :meth:`~repro.obs.registry.MetricsRegistry.as_dict` dump.

    Raises:
        ValueError: when the dump is not a ``repro.metrics/1`` document.
    """
    if dump.get("schema") != "repro.metrics/1":
        raise ValueError(
            f"not a repro.metrics/1 dump (schema={dump.get('schema')!r})"
        )
    lines: list[str] = []
    for name in sorted(dump.get("counters", {})):
        prom = metric_name(name)
        lines.append(f"# HELP {prom} repro counter {name}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_format_value(dump['counters'][name])}")
    for name in sorted(dump.get("gauges", {})):
        prom = metric_name(name)
        lines.append(f"# HELP {prom} repro gauge {name}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(dump['gauges'][name])}")
    for name in sorted(dump.get("histograms", {})):
        hist = dump["histograms"][name]
        prom = metric_name(name)
        lines.append(f"# HELP {prom} repro histogram {name}")
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, bucket in zip(hist["bounds"], hist["counts"]):
            cumulative += bucket
            lines.append(
                f'{prom}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{prom}_sum {_format_value(hist['total'])}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""
