"""The structured trace sink and the simulator observer tee.

A :class:`TraceSink` buffers structured records in memory and writes
them as JSONL on :func:`write_jsonl`.  Two record shapes exist, both
with a stable schema (``docs/OBSERVABILITY.md``):

* **event** — one simulator observer event, teed off the existing
  :data:`repro.core.simulator.EventObserver` stream (all event kinds,
  the four ``fault_*`` kinds included)::

      {"type": "event", "kind": "stale_hit", "t": 1234.5, "id": "/a"}

* **span** — one timed engine-level region (per-grid-point task timing,
  worker id, pool restarts, verify time)::

      {"type": "span", "name": "engine.task", "wall": 0.0123,
       "meta": {"index": 3, "worker": 71234}}

* **mark** — one instantaneous cross-process causal point (the live
  mode's trace propagation; see ``docs/OBSERVABILITY.md`` and
  :mod:`repro.obs.timeline`).  ``trace`` is the exchange's propagated
  trace id (``X-Repro-Trace``), ``clk`` a reading of
  :func:`repro.obs.clock.monotonic` — on Linux ``CLOCK_MONOTONIC`` is
  system-wide, so marks from the driver, proxy, and origin processes
  order on one axis::

      {"type": "mark", "kind": "live.trace.send", "trace": "r17",
       "clk": 1042.317}

Event records are deterministic — a serial and a parallel run of the
same sweep produce the *same event sequence* (the engine merges each
worker's buffered records in submission order).  Span records carry
wall-clock measurements and process ids, so they vary run to run; trace
consumers that diff runs filter on ``type == "event"``.

The tee is installed per process via :func:`install` and consulted once
per :class:`~repro.core.simulator.Simulation` construction through
:func:`instrumented_observer`; with no sink and no metrics registry the
simulator's observer path is exactly the historical one (byte-identical
outputs, pinned by ``tests/obs/test_tracing_inert.py``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

from repro.obs import registry as _metrics

#: Trace-schema identifier written into the JSONL header record.
SCHEMA = "repro.trace/1"

#: Observer callback signature (mirrors repro.core.simulator.EventObserver;
#: not imported to keep ``repro.obs`` free of core dependencies).
Observer = Callable[[str, float, str], None]

#: Simulator event kind -> the counter the tee publishes it under.
#: Must stay in bijection with ``repro.core.simulator.EVENT_KINDS``
#: (asserted by ``tests/obs/test_trace.py``); every value is declared in
#: :data:`repro.obs.names.METRIC_NAMES`.
EVENT_METRICS: dict[str, str] = {
    "hit": "sim.event.hit",
    "stale_hit": "sim.event.stale_hit",
    "miss": "sim.event.miss",
    "validation_304": "sim.event.validation_304",
    "validation_200": "sim.event.validation_200",
    "invalidation": "sim.event.invalidation",
    "prefetch": "sim.event.prefetch",
    "dynamic_fetch": "sim.event.dynamic_fetch",
    "fault_invalidation_lost": "sim.event.fault_invalidation_lost",
    "fault_invalidation_dropped": "sim.event.fault_invalidation_dropped",
    "fault_invalidation_recovered": "sim.event.fault_invalidation_recovered",
    "fault_cache_crash": "sim.event.fault_cache_crash",
}


class TraceSink:
    """An in-memory buffer of trace records, flushed to JSONL at the end.

    Buffering (rather than streaming) is what makes worker capture
    possible: a forked worker appends to its inherited sink, the engine
    ships the per-task slice back, and the parent re-appends the slices
    in submission order.

    Args:
        proc: optional role label (``"driver"`` / ``"proxy"`` /
            ``"origin"``) written into the JSONL header; the timeline
            merger stamps it onto every merged record.
    """

    def __init__(self, proc: Optional[str] = None) -> None:
        self.proc = proc
        self.records: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.records)

    def event(self, kind: str, t: float, object_id: str) -> None:
        """Record one simulator observer event."""
        self.records.append(
            {"type": "event", "kind": kind, "t": t, "id": object_id}
        )

    def span(
        self, name: str, wall: float, meta: Optional[dict[str, Any]] = None
    ) -> None:
        """Record one timed region (``wall`` in host seconds)."""
        record: dict[str, Any] = {"type": "span", "name": name, "wall": wall}
        if meta:
            record["meta"] = meta
        self.records.append(record)

    def mark(
        self, kind: str, trace: Optional[str], clk: float, **meta: Any
    ) -> None:
        """Record one causal point (``clk`` from ``obs.clock.monotonic``).

        ``trace`` is the propagated ``X-Repro-Trace`` id, or ``None``
        for points outside any client exchange (control pulls, restore).
        """
        record: dict[str, Any] = {
            "type": "mark", "kind": kind, "trace": trace, "clk": clk,
        }
        if meta:
            record["meta"] = meta
        self.records.append(record)

    def marks(self) -> list[dict[str, Any]]:
        """Only the mark records (the causal-point subset)."""
        return [r for r in self.records if r["type"] == "mark"]

    def events(self) -> list[dict[str, Any]]:
        """Only the deterministic event records (run-diffable subset)."""
        return [r for r in self.records if r["type"] == "event"]


# -- the process-wide sink ----------------------------------------------------

_sink: Optional[TraceSink] = None


def install(sink: Optional[TraceSink]) -> Optional[TraceSink]:
    """Install the process-wide trace sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


def active() -> Optional[TraceSink]:
    """The installed sink, or None when tracing is off."""
    return _sink


@contextmanager
def installed(sink: TraceSink) -> Iterator[TraceSink]:
    """Scope a sink installation (tests and the CLI use this)."""
    previous = install(sink)
    try:
        yield sink
    finally:
        install(previous)


def span(name: str, wall: float, **meta: Any) -> None:
    """Record a span on the active sink — a no-op when tracing is off."""
    sink = _sink
    if sink is not None:
        sink.span(name, wall, meta or None)


def instrumented_observer(
    observer: Optional[Observer],
) -> Optional[Observer]:
    """Tee a simulator observer through the active sink and registry.

    With neither a sink nor a metrics registry installed this returns
    ``observer`` unchanged (``None`` included) — the simulator keeps its
    historical zero-instrumentation path.  Otherwise the returned
    callable records the event (sink), bumps the matching
    ``sim.event.*`` counter (registry), and forwards to ``observer``
    verbatim, so oracle recording and user observers see exactly the
    stream they would without tracing.
    """
    sink = _sink
    metrics_on = _metrics.active() is not None
    if sink is None and not metrics_on:
        return observer
    event_metrics = EVENT_METRICS

    def tee(kind: str, t: float, object_id: str) -> None:
        current_sink = _sink
        if current_sink is not None:
            current_sink.event(kind, t, object_id)
        registry = _metrics.active()
        if registry is not None:
            metric = event_metrics.get(kind)
            if metric is not None:
                registry.counter(metric).add(1.0)
        if observer is not None:
            observer(kind, t, object_id)

    return tee


def sink_observer(
    sink: TraceSink, observer: Optional[Observer]
) -> Observer:
    """An observer that records each event into ``sink`` and forwards.

    The fast engine uses this to reproduce the reference tee's sink
    stream without the per-event counter bumps — those arrive in one
    batched flush instead (see
    :class:`repro.fastpath.kernels.MetricsBatch`).
    """

    def tee(kind: str, t: float, object_id: str) -> None:
        sink.event(kind, t, object_id)
        if observer is not None:
            observer(kind, t, object_id)

    return tee


def write_jsonl(sink: TraceSink, path: Union[str, Path]) -> int:
    """Write the sink's records to ``path`` as JSONL; returns line count.

    The first line is a header record carrying the schema id (and the
    sink's ``proc`` label when set); every record is serialized with
    sorted keys so dumps are stable.
    """
    target = Path(path)
    header: dict[str, Any] = {"type": "header", "schema": SCHEMA}
    if sink.proc is not None:
        header["proc"] = sink.proc
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(record, sort_keys=True) for record in sink.records
    )
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def load_jsonl(
    path: Union[str, Path],
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a trace written by :func:`write_jsonl`: ``(header, records)``.

    Torn-line tolerant, mirroring the live journal's loader: a process
    killed mid-write leaves at most one incomplete trailing line, so
    parsing stops at the first line that fails to decode and everything
    before it is returned.  (Nothing valid can follow a torn line.)

    Raises:
        ValueError: when the file is empty or lacks the schema header.
    """
    raw = Path(path).read_text(encoding="utf-8").splitlines()
    if not raw:
        raise ValueError(f"{path}: empty trace file")
    try:
        header = json.loads(raw[0])
    except ValueError as exc:
        raise ValueError(f"{path}: missing {SCHEMA} header record") from exc
    if (
        not isinstance(header, dict)
        or header.get("type") != "header"
        or header.get("schema") != SCHEMA
    ):
        raise ValueError(f"{path}: missing {SCHEMA} header record")
    records: list[dict[str, Any]] = []
    for line in raw[1:]:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            break
        if not isinstance(record, dict):
            break
        records.append(record)
    return header, records


def read_jsonl(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Read a trace written by :func:`write_jsonl` (header excluded).

    Torn-line tolerant; see :func:`load_jsonl`.

    Raises:
        ValueError: when the file lacks the schema header.
    """
    return load_jsonl(path)[1]
