"""The one audited wall-clock entry point.

Everything under ``repro.*`` that needs to *measure* real elapsed time
(run instrumentation, engine phase timers, the bench emitter) calls
:func:`monotonic` — never ``time.perf_counter`` / ``time.time``
directly.  The RPR001 determinism checker forbids wall-clock reads
across the scoped packages (``repro.obs`` included); the two
suppressions in this module are the *only* sanctioned ones, so an audit
of host-time usage is a read of this file.

Simulated time is a different thing entirely: it comes from the request
stream and ``repro.core.clock``, and must never be mixed with values
from here (RPR002 guards the arithmetic).
"""

from __future__ import annotations

import time
from datetime import date


def monotonic() -> float:
    """Seconds from a monotonic high-resolution host clock.

    Differences of two reads measure elapsed wall time; the absolute
    value is meaningless.  This is the single audited wall-clock read
    for all of ``repro`` (see the module docstring).
    """
    return time.perf_counter()  # repro: noqa[RPR001]


def date_stamp() -> str:
    """Today's date as ``YYYY-MM-DD`` (for ``BENCH_<date>.json`` names).

    The only sanctioned calendar read in the tree; benchmark artifacts
    are the one place output legitimately depends on the host date.
    """
    return date.today().isoformat()  # repro: noqa[RPR001]
