"""The benchmark emitter: ``make bench`` -> ``BENCH_<date>.json``.

Runs every registered experiment at reduced scale (the same computation
the ``benchmarks/`` suite verifies) and writes one machine-readable
perf-trajectory sample: total wall time, simulated requests/sec, peak
grid size, and per-experiment timings.  Committing one sample per perf
PR gives every future optimization a before/after baseline — the
ROADMAP's "fast as the hardware allows" goal needs a recorded
trajectory to be falsifiable.

Usage::

    python -m repro.obs.bench                       # BENCH_<date>.json
    python -m repro.obs.bench --scale 0.1 --workers 4 --out .
    python -m repro.obs.bench --baseline benchmarks/BENCH_baseline.json

With ``--baseline`` the run additionally compares its requests/sec
against the committed seed baseline and exits non-zero when throughput
regressed by more than ``--max-regression`` (default 30%) — the CI
bench smoke job runs exactly this.  The committed baseline is a
*conservative floor* (see docs/OBSERVABILITY.md, "Bench baseline
policy"), refreshed via ``make bench-baseline`` when hardware or the
engine changes the regime.

Every document also records which simulator ``engine`` produced it
(``fast`` or ``reference``; see docs/FASTPATH.md) and a
``speedup_vs_reference`` ratio measured on one sample workload timed
under *both* engines (detail in ``speedup_sample``).  ``--min-speedup
RATIO`` turns the ratio into a gate: exit non-zero when the fast engine
fails to beat the reference by at least RATIO.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs import clock

#: Bench-document schema identifier.
SCHEMA = "repro.bench/1"

#: Keys every bench document must carry (schema validation).
REQUIRED_KEYS = (
    "schema",
    "generated",
    "scale",
    "seed",
    "workers",
    "engine",
    "wall_seconds",
    "simulated_requests",
    "requests_per_second",
    "speedup_vs_reference",
    "peak_grid_size",
    "experiments",
)

#: Keys every per-experiment entry must carry.
EXPERIMENT_KEYS = (
    "id",
    "wall_seconds",
    "simulated_requests",
    "requests_per_second",
    "grid_points",
    "peak_grid_size",
    "all_passed",
)


def validate(document: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid bench sample."""
    if document.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} document (schema={document.get('schema')!r})"
        )
    missing = [key for key in REQUIRED_KEYS if key not in document]
    if missing:
        raise ValueError(f"bench document missing keys: {missing}")
    if not isinstance(document["experiments"], list):
        raise ValueError("bench document 'experiments' must be a list")
    for entry in document["experiments"]:
        entry_missing = [key for key in EXPERIMENT_KEYS if key not in entry]
        if entry_missing:
            raise ValueError(
                f"bench experiment entry missing keys: {entry_missing}"
            )


def measure_speedup(
    scale: float = 0.25, seed: int = 0, repeats: int = 2
) -> dict[str, Any]:
    """Time one sample simulation under both engines; report the ratio.

    The sample is a Worrell workload under Alex at a 10% threshold —
    the fast path's bread-and-butter configuration.  Each engine runs
    ``repeats`` times and keeps its best (minimum) wall time, so a
    single scheduler hiccup cannot fake a regression.  The returned
    detail dict lands in the bench document under ``speedup_sample``;
    the ratio (reference seconds / fast seconds) is the document's
    top-level ``speedup_vs_reference``.
    """
    from repro.core.protocols import AlexProtocol
    from repro.core.simulator import simulate
    from repro.fastpath import fast_simulate
    from repro.workload.worrell import WorrellWorkload

    workload = WorrellWorkload(
        files=max(10, int(2085 * scale)),
        requests=max(100, int(100_000 * scale)),
        seed=seed,
    ).build()
    server = workload.server()
    requests = workload.requests
    duration = workload.duration

    def best_of(run) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            started = clock.monotonic()
            run()
            best = min(best, clock.monotonic() - started)
        return best

    fast_seconds = best_of(lambda: fast_simulate(
        server, AlexProtocol.from_percent(10.0), requests,
        end_time=duration,
    ))
    reference_seconds = best_of(lambda: simulate(
        server, AlexProtocol.from_percent(10.0), requests,
        end_time=duration,
    ))
    count = len(requests)
    return {
        "workload": "worrell/alex-10pct",
        "requests": count,
        "fast_seconds": round(fast_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "fast_requests_per_second": (
            round(count / fast_seconds, 1) if fast_seconds > 0 else 0.0
        ),
        "reference_requests_per_second": (
            round(count / reference_seconds, 1)
            if reference_seconds > 0 else 0.0
        ),
        "speedup": (
            round(reference_seconds / fast_seconds, 2)
            if fast_seconds > 0 else 0.0
        ),
    }


def run_bench(
    scale: float = 0.25,
    seed: int = 0,
    workers: Optional[int] = None,
    stamp: Optional[str] = None,
) -> dict[str, Any]:
    """Run every experiment at ``scale`` and build the bench document."""
    # Imported here (not at module top) so ``repro.obs`` never depends on
    # the experiment layer at import time.
    from repro.experiments import common
    from repro.experiments.registry import all_ids, run_experiment
    from repro.fastpath import resolve_engine
    from repro.runtime import resolve_workers

    common.clear_caches()
    resolved = resolve_workers(workers)
    entries: list[dict[str, Any]] = []
    started = clock.monotonic()
    for experiment_id in all_ids():
        report = run_experiment(
            experiment_id, scale=scale, seed=seed, workers=resolved
        )
        stats = report.stats
        assert stats is not None  # run_experiment always attaches stats
        entries.append(
            {
                "id": experiment_id,
                "wall_seconds": round(stats.wall_seconds, 4),
                "simulated_requests": stats.simulated_requests,
                "requests_per_second": round(stats.requests_per_second, 1),
                "grid_points": stats.grid_points,
                "peak_grid_size": stats.peak_grid_size,
                "all_passed": report.all_passed,
            }
        )
    wall = clock.monotonic() - started
    simulated = sum(e["simulated_requests"] for e in entries)
    speedup_sample = measure_speedup(scale=scale, seed=seed)
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "generated": stamp if stamp is not None else clock.date_stamp(),
        "scale": scale,
        "seed": seed,
        "workers": resolved,
        "engine": resolve_engine(),
        "wall_seconds": round(wall, 4),
        "simulated_requests": simulated,
        "requests_per_second": round(simulated / wall, 1) if wall > 0 else 0.0,
        "speedup_vs_reference": speedup_sample["speedup"],
        "speedup_sample": speedup_sample,
        "peak_grid_size": max(
            (e["peak_grid_size"] for e in entries), default=0
        ),
        "experiments": entries,
    }
    validate(document)
    return document


def check_baseline(
    document: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.30,
) -> list[str]:
    """Regression findings of ``document`` against ``baseline`` (empty=ok).

    Only overall requests/sec is gated: per-experiment wall times are
    too noisy on shared runners for a hard gate, but they ride along in
    the artifact for human comparison.
    """
    validate(baseline)
    findings: list[str] = []
    floor = baseline["requests_per_second"] * (1.0 - max_regression)
    measured = document["requests_per_second"]
    if measured < floor:
        findings.append(
            f"requests/sec regressed: measured {measured:,.0f} < floor "
            f"{floor:,.0f} ({baseline['requests_per_second']:,.0f} baseline "
            f"- {100 * max_regression:.0f}% tolerance)"
        )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.obs.bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the experiment suite at reduced scale and emit a "
                    "BENCH_<date>.json perf-trajectory sample.",
    )
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (default 0.25, the "
                             "smallest at which every shape check holds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None, metavar="N")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_<date>.json (default .)")
    parser.add_argument("--stamp", default=None, metavar="YYYY-MM-DD",
                        help="override the date stamp (tests use this)")
    parser.add_argument("--baseline", type=Path, default=None, metavar="PATH",
                        help="committed baseline BENCH json to gate against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed requests/sec drop vs the baseline "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="RATIO",
                        help="fail unless the fast engine beats the "
                             "reference engine by at least RATIO on the "
                             "speedup sample (e.g. 1.0 = at least as "
                             "fast; the CI smoke gate)")
    args = parser.parse_args(argv)

    document = run_bench(
        scale=args.scale, seed=args.seed, workers=args.workers,
        stamp=args.stamp,
    )
    target = args.out / f"BENCH_{document['generated']}.json"
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"bench: {document['simulated_requests']:,} simulated requests in "
        f"{document['wall_seconds']:.1f}s "
        f"({document['requests_per_second']:,.0f} req/s, "
        f"workers {document['workers']}, engine {document['engine']}) "
        f"-> {target}"
    )
    sample = document["speedup_sample"]
    print(
        f"bench: fast path {document['speedup_vs_reference']:.2f}x "
        f"reference on {sample['workload']} "
        f"({sample['fast_requests_per_second']:,.0f} vs "
        f"{sample['reference_requests_per_second']:,.0f} req/s, "
        f"{sample['requests']:,} requests, best of 2)"
    )

    status = 0
    if (
        args.min_speedup is not None
        and document["speedup_vs_reference"] < args.min_speedup
    ):
        print(
            f"bench: fast-path speedup {document['speedup_vs_reference']:.2f}x "
            f"below required {args.min_speedup:g}x",
            file=sys.stderr,
        )
        status = 1
    failed = [e["id"] for e in document["experiments"] if not e["all_passed"]]
    if failed:
        print(f"bench: shape checks failed for: {', '.join(failed)}",
              file=sys.stderr)
        status = 1
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        findings = check_baseline(
            document, baseline, max_regression=args.max_regression
        )
        for finding in findings:
            print(f"bench: {finding}", file=sys.stderr)
        if findings:
            status = 1
        else:
            print(
                f"bench: within {100 * args.max_regression:.0f}% of baseline "
                f"({baseline['requests_per_second']:,.0f} req/s)"
            )
    return status


if __name__ == "__main__":
    sys.exit(main())
