"""The benchmark emitter: ``make bench`` -> ``BENCH_<date>.json``.

Runs every registered experiment at reduced scale (the same computation
the ``benchmarks/`` suite verifies) and writes one machine-readable
perf-trajectory sample: total wall time, simulated requests/sec, peak
grid size, and per-experiment timings.  Committing one sample per perf
PR gives every future optimization a before/after baseline — the
ROADMAP's "fast as the hardware allows" goal needs a recorded
trajectory to be falsifiable.

Usage::

    python -m repro.obs.bench                       # BENCH_<date>.json
    python -m repro.obs.bench --scale 0.1 --workers 4 --out .
    python -m repro.obs.bench --baseline benchmarks/BENCH_baseline.json

With ``--baseline`` the run additionally compares its requests/sec
against the committed seed baseline and exits non-zero when throughput
regressed by more than ``--max-regression`` (default 30%) — the CI
bench smoke job runs exactly this.  The committed baseline is a
*conservative floor* (see docs/OBSERVABILITY.md, "Bench baseline
policy"), refreshed via ``make bench-baseline`` when hardware or the
engine changes the regime.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs import clock

#: Bench-document schema identifier.
SCHEMA = "repro.bench/1"

#: Keys every bench document must carry (schema validation).
REQUIRED_KEYS = (
    "schema",
    "generated",
    "scale",
    "seed",
    "workers",
    "wall_seconds",
    "simulated_requests",
    "requests_per_second",
    "peak_grid_size",
    "experiments",
)

#: Keys every per-experiment entry must carry.
EXPERIMENT_KEYS = (
    "id",
    "wall_seconds",
    "simulated_requests",
    "requests_per_second",
    "grid_points",
    "peak_grid_size",
    "all_passed",
)


def validate(document: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid bench sample."""
    if document.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} document (schema={document.get('schema')!r})"
        )
    missing = [key for key in REQUIRED_KEYS if key not in document]
    if missing:
        raise ValueError(f"bench document missing keys: {missing}")
    if not isinstance(document["experiments"], list):
        raise ValueError("bench document 'experiments' must be a list")
    for entry in document["experiments"]:
        entry_missing = [key for key in EXPERIMENT_KEYS if key not in entry]
        if entry_missing:
            raise ValueError(
                f"bench experiment entry missing keys: {entry_missing}"
            )


def run_bench(
    scale: float = 0.25,
    seed: int = 0,
    workers: Optional[int] = None,
    stamp: Optional[str] = None,
) -> dict[str, Any]:
    """Run every experiment at ``scale`` and build the bench document."""
    # Imported here (not at module top) so ``repro.obs`` never depends on
    # the experiment layer at import time.
    from repro.experiments import common
    from repro.experiments.registry import all_ids, run_experiment
    from repro.runtime import resolve_workers

    common.clear_caches()
    resolved = resolve_workers(workers)
    entries: list[dict[str, Any]] = []
    started = clock.monotonic()
    for experiment_id in all_ids():
        report = run_experiment(
            experiment_id, scale=scale, seed=seed, workers=resolved
        )
        stats = report.stats
        assert stats is not None  # run_experiment always attaches stats
        entries.append(
            {
                "id": experiment_id,
                "wall_seconds": round(stats.wall_seconds, 4),
                "simulated_requests": stats.simulated_requests,
                "requests_per_second": round(stats.requests_per_second, 1),
                "grid_points": stats.grid_points,
                "peak_grid_size": stats.peak_grid_size,
                "all_passed": report.all_passed,
            }
        )
    wall = clock.monotonic() - started
    simulated = sum(e["simulated_requests"] for e in entries)
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "generated": stamp if stamp is not None else clock.date_stamp(),
        "scale": scale,
        "seed": seed,
        "workers": resolved,
        "wall_seconds": round(wall, 4),
        "simulated_requests": simulated,
        "requests_per_second": round(simulated / wall, 1) if wall > 0 else 0.0,
        "peak_grid_size": max(
            (e["peak_grid_size"] for e in entries), default=0
        ),
        "experiments": entries,
    }
    validate(document)
    return document


def check_baseline(
    document: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.30,
) -> list[str]:
    """Regression findings of ``document`` against ``baseline`` (empty=ok).

    Only overall requests/sec is gated: per-experiment wall times are
    too noisy on shared runners for a hard gate, but they ride along in
    the artifact for human comparison.
    """
    validate(baseline)
    findings: list[str] = []
    floor = baseline["requests_per_second"] * (1.0 - max_regression)
    measured = document["requests_per_second"]
    if measured < floor:
        findings.append(
            f"requests/sec regressed: measured {measured:,.0f} < floor "
            f"{floor:,.0f} ({baseline['requests_per_second']:,.0f} baseline "
            f"- {100 * max_regression:.0f}% tolerance)"
        )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.obs.bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the experiment suite at reduced scale and emit a "
                    "BENCH_<date>.json perf-trajectory sample.",
    )
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (default 0.25, the "
                             "smallest at which every shape check holds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None, metavar="N")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for BENCH_<date>.json (default .)")
    parser.add_argument("--stamp", default=None, metavar="YYYY-MM-DD",
                        help="override the date stamp (tests use this)")
    parser.add_argument("--baseline", type=Path, default=None, metavar="PATH",
                        help="committed baseline BENCH json to gate against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed requests/sec drop vs the baseline "
                             "(default 0.30 = 30%%)")
    args = parser.parse_args(argv)

    document = run_bench(
        scale=args.scale, seed=args.seed, workers=args.workers,
        stamp=args.stamp,
    )
    target = args.out / f"BENCH_{document['generated']}.json"
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"bench: {document['simulated_requests']:,} simulated requests in "
        f"{document['wall_seconds']:.1f}s "
        f"({document['requests_per_second']:,.0f} req/s, "
        f"workers {document['workers']}) -> {target}"
    )

    status = 0
    failed = [e["id"] for e in document["experiments"] if not e["all_passed"]]
    if failed:
        print(f"bench: shape checks failed for: {', '.join(failed)}",
              file=sys.stderr)
        status = 1
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        findings = check_baseline(
            document, baseline, max_regression=args.max_regression
        )
        for finding in findings:
            print(f"bench: {finding}", file=sys.stderr)
        if findings:
            status = 1
        else:
            print(
                f"bench: within {100 * args.max_regression:.0f}% of baseline "
                f"({baseline['requests_per_second']:,.0f} req/s)"
            )
    return status


if __name__ == "__main__":
    sys.exit(main())
