"""Profiling hooks: engine phase timers and protocol hook self-time.

The sweep engine's work divides into four phases — **fork** (process
pool construction), **dispatch** (task submission), **harvest**
(collecting completed futures), and **reassembly** (ordered merge of
results and per-worker observability payloads); the serial path is one
**serial** phase.  When profiling is enabled (:func:`enable`), the
engine brackets each phase with :func:`phase` and the accumulated
per-phase wall time is rendered by ``repro profile``.

:class:`ProfiledProtocol` wraps any consistency protocol and times its
three hooks (``is_fresh``, ``on_stored``, ``on_validation_result``),
producing the flat self-time table per protocol hook.  The wrapper is
transparent — same freshness answers, same attribute surface — so
simulation output is unchanged (the profiled run is *measured*, never
*perturbed*, beyond the clock reads themselves).

All state is module-level and per-process; the engine ships worker
deltas back through :mod:`repro.obs.collect` and merges them by simple
addition (profiling totals are sums, so merge order is irrelevant).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs import clock

#: Engine phase names, in execution order (the report renders this order).
ENGINE_PHASES: tuple[str, ...] = (
    "fork", "dispatch", "harvest", "reassembly", "serial",
    "fastpath.compile", "fastpath.simulate",
)

_enabled = False
_phase_seconds: dict[str, float] = {}
_hook_calls: dict[str, int] = {}
_hook_seconds: dict[str, float] = {}


def enable() -> None:
    """Turn phase/hook timing on for this process (and future forks)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn profiling off."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """True when the engine should time its phases."""
    return _enabled


def reset() -> None:
    """Clear all accumulated timings (keeps the enabled flag)."""
    _phase_seconds.clear()
    _hook_calls.clear()
    _hook_seconds.clear()


def add_phase(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` of wall time into phase ``name``."""
    _phase_seconds[name] = _phase_seconds.get(name, 0.0) + seconds


def add_hook(name: str, seconds: float) -> None:
    """Accumulate one timed call of protocol hook ``name``."""
    _hook_calls[name] = _hook_calls.get(name, 0) + 1
    _hook_seconds[name] = _hook_seconds.get(name, 0.0) + seconds


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a region as engine phase ``name`` (no-op when disabled)."""
    if not _enabled:
        yield
        return
    started = clock.monotonic()
    try:
        yield
    finally:
        add_phase(name, clock.monotonic() - started)


# -- capture & merge (for forked workers, via repro.obs.collect) -------------


def snapshot() -> dict[str, Any]:
    """Current totals, for :func:`delta`."""
    return {
        "phases": dict(_phase_seconds),
        "hook_calls": dict(_hook_calls),
        "hook_seconds": dict(_hook_seconds),
    }


def delta(since: dict[str, Any]) -> dict[str, Any]:
    """Timings accumulated after ``since`` (picklable payload)."""
    return {
        "phases": {
            name: total - since["phases"].get(name, 0.0)
            for name, total in _phase_seconds.items()
            if total != since["phases"].get(name, 0.0)
        },
        "hook_calls": {
            name: calls - since["hook_calls"].get(name, 0)
            for name, calls in _hook_calls.items()
            if calls != since["hook_calls"].get(name, 0)
        },
        "hook_seconds": {
            name: total - since["hook_seconds"].get(name, 0.0)
            for name, total in _hook_seconds.items()
            if total != since["hook_seconds"].get(name, 0.0)
        },
    }


def merge(payload: dict[str, Any]) -> None:
    """Fold a worker's :func:`delta` payload into this process's totals."""
    for name, seconds in payload["phases"].items():
        add_phase(name, seconds)
    for name, calls in payload["hook_calls"].items():
        _hook_calls[name] = _hook_calls.get(name, 0) + calls
    for name, seconds in payload["hook_seconds"].items():
        _hook_seconds[name] = _hook_seconds.get(name, 0.0) + seconds


# -- the protocol-hook profiler ----------------------------------------------


class ProfiledProtocol:
    """Times every hook call of a wrapped consistency protocol.

    Duck-typed on purpose (no ``repro.core`` import here): the wrapper
    forwards ``name``/``wants_invalidations``/``eager`` and any other
    attribute to the wrapped instance, so the simulator cannot tell the
    difference.  Self-times are keyed ``<family>.<hook>`` where
    ``<family>`` is the wrapped protocol's class name.
    """

    def __init__(self, inner: Any) -> None:
        self._inner = inner
        self._prefix = type(inner).__name__

    @property
    def name(self) -> str:
        return str(self._inner.name)

    @property
    def wants_invalidations(self) -> bool:
        return bool(self._inner.wants_invalidations)

    def is_fresh(self, entry: Any, now: float) -> bool:
        started = clock.monotonic()
        try:
            return bool(self._inner.is_fresh(entry, now))
        finally:
            add_hook(
                f"{self._prefix}.is_fresh", clock.monotonic() - started
            )

    def on_stored(self, entry: Any, now: float) -> None:
        started = clock.monotonic()
        try:
            self._inner.on_stored(entry, now)
        finally:
            add_hook(
                f"{self._prefix}.on_stored", clock.monotonic() - started
            )

    def on_validation_result(
        self, entry: Any, now: float, was_modified: bool
    ) -> None:
        started = clock.monotonic()
        try:
            self._inner.on_validation_result(entry, now, was_modified)
        finally:
            add_hook(
                f"{self._prefix}.on_validation_result",
                clock.monotonic() - started,
            )

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"<ProfiledProtocol {self._inner!r}>"


# -- reporting ----------------------------------------------------------------


def phase_breakdown() -> list[tuple[str, float]]:
    """(phase, seconds) rows in :data:`ENGINE_PHASES` order, then extras."""
    rows = [
        (name, _phase_seconds[name])
        for name in ENGINE_PHASES
        if name in _phase_seconds
    ]
    rows.extend(
        (name, seconds)
        for name, seconds in sorted(_phase_seconds.items())
        if name not in ENGINE_PHASES
    )
    return rows


def hook_table() -> list[tuple[str, int, float]]:
    """(hook, calls, self seconds) rows, sorted by self time descending."""
    return sorted(
        (
            (name, _hook_calls.get(name, 0), seconds)
            for name, seconds in _hook_seconds.items()
        ),
        key=lambda row: (-row[2], row[0]),
    )


def render_report(total_wall: Optional[float] = None) -> str:
    """The ``repro profile`` output: phase breakdown + hook self-time."""
    lines = ["engine phase breakdown:"]
    phases = phase_breakdown()
    phase_total = sum(seconds for _, seconds in phases)
    denominator = total_wall if total_wall else phase_total
    if not phases:
        lines.append("  (no phases recorded — was profiling enabled?)")
    for name, seconds in phases:
        share = 100.0 * seconds / denominator if denominator > 0.0 else 0.0
        lines.append(f"  {name:<12} {seconds:>9.4f}s  {share:>5.1f}%")
    if total_wall is not None:
        lines.append(f"  {'total wall':<12} {total_wall:>9.4f}s")
    hooks = hook_table()
    lines.append("")
    lines.append("protocol hook self-time:")
    if not hooks:
        lines.append("  (no hooks timed — wrap protocols in "
                      "ProfiledProtocol)")
    for name, calls, seconds in hooks:
        lines.append(f"  {name:<36} {calls:>9} calls  {seconds:>9.4f}s")
    return "\n".join(lines)
