"""Merging per-role live traces into one causal timeline.

A traced live replay (``run_replay(trace_path=...)``) writes three
``repro.trace/1`` JSONL files — driver, proxy, origin — each a private,
append-ordered view of the same run.  This module joins them into a
single **merged timeline** (schema ``repro.trace/2``): every record is
stamped with its role (``proc``) and the whole set is ordered on the
one axis all three processes share, the ``clk`` reading of
:func:`repro.obs.clock.monotonic` (``CLOCK_MONOTONIC`` is system-wide
on Linux, so readings from different processes on one host compare
directly).

The merged timeline is *validated*, not just sorted: for every trace id
the driver's earliest ``live.trace.send`` mark must not follow the
proxy's earliest ``live.trace.recv`` mark, and the proxy's
``live.trace.commit`` span must not follow its earliest
``live.trace.reply`` span — commit-before-reply is the journaling
discipline the whole crash-consistency story rests on, and here it is
checked from the outside, per exchange, including chaos-retry replays
of an already-committed reply.

Analysis helpers (:func:`summarize`, :func:`grep`,
:func:`critical_path`) back the ``repro trace`` CLI subcommand; all
return plain dicts/lists that serialize to stable JSON with
``sort_keys=True``.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs import clock as obs_clock
from repro.obs import trace as obs_trace

#: Merged-timeline schema identifier (``repro.trace/1`` is the
#: per-process file schema; ``/2`` is the cross-process merge).
SCHEMA = "repro.trace/2"

#: Role order used to break clk ties deterministically: causally, a
#: driver record "happens" no later than a proxy record with the same
#: clk reading, which happens no later than an origin one on the send
#: path (the reverse holds on the reply path, but a tie needs *some*
#: deterministic order and the forward direction is the common case).
ROLE_RANK = {"driver": 0, "proxy": 1, "origin": 2}

#: Proxy-side phase spans that partition an exchange's wall time for
#: :func:`critical_path`.  ``live.trace.origin`` is deliberately absent:
#: it nests inside ``live.trace.upstream`` (the origin's service time is
#: part of the proxy's fetch wait) and would double-count.
PROXY_PHASES = (
    "live.trace.parse",
    "live.trace.decision",
    "live.trace.upstream",
    "live.trace.commit",
    "live.trace.reply",
)


def role_trace_paths(path: Union[str, Path]) -> dict[str, Path]:
    """The three per-role file paths derived from a driver trace path.

    ``TRACE.jsonl`` → ``{driver: TRACE.jsonl, proxy: TRACE.proxy.jsonl,
    origin: TRACE.origin.jsonl}``.  A suffix-less path gets ``.jsonl``
    companions appended.
    """
    base = Path(path)
    suffix = base.suffix or ".jsonl"
    stem = base.name[: -len(base.suffix)] if base.suffix else base.name
    return {
        "driver": base,
        "proxy": base.with_name(f"{stem}.proxy{suffix}"),
        "origin": base.with_name(f"{stem}.origin{suffix}"),
    }


def _clk(record: dict[str, Any]) -> Optional[float]:
    """The record's monotonic clock reading, wherever it lives.

    Marks carry ``clk`` top-level; live spans carry it in ``meta``;
    event records (and engine spans) have none.
    """
    clk = record.get("clk")
    if clk is None:
        meta = record.get("meta")
        if isinstance(meta, dict):
            clk = meta.get("clk")
    return float(clk) if isinstance(clk, (int, float)) else None


def merge(path: Union[str, Path]) -> dict[str, Any]:
    """Merge the per-role trace files for one live replay.

    ``path`` is the driver's trace file; proxy/origin companions are
    located via :func:`role_trace_paths`.  A missing companion is
    tolerated (its role is simply absent from ``roles``) — the driver
    file itself is required.

    Returns:
        ``{"schema": "repro.trace/2", "roles": {role: filename},
        "records": [...]}`` where every record carries a ``proc`` field
        and the list is ordered by ``clk`` (unclocked records first, in
        file order), ties broken by :data:`ROLE_RANK` then file order.

    Raises:
        ValueError: when the driver file is missing or any present file
            lacks the ``repro.trace/1`` header.
    """
    merge_started = obs_clock.monotonic()
    paths = role_trace_paths(path)
    if not paths["driver"].exists():
        raise ValueError(f"{paths['driver']}: driver trace file not found")
    roles: dict[str, str] = {}
    keyed: list[tuple[float, int, int, dict[str, Any]]] = []
    seq = 0
    for role in ("driver", "proxy", "origin"):
        role_path = paths[role]
        if not role_path.exists():
            continue
        header, records = obs_trace.load_jsonl(role_path)
        proc = header.get("proc", role)
        roles[proc] = role_path.name
        for record in records:
            clk = _clk(record)
            stamped = dict(record)
            stamped["proc"] = proc
            keyed.append(
                (
                    -math.inf if clk is None else clk,
                    ROLE_RANK.get(proc, len(ROLE_RANK)),
                    seq,
                    stamped,
                )
            )
            seq += 1
    keyed.sort(key=lambda item: item[:3])
    merged = [record for _, _, _, record in keyed]
    obs_trace.span(
        "trace.merge",
        obs_clock.monotonic() - merge_started,
        records=len(merged),
        roles=len(roles),
    )
    return {"schema": SCHEMA, "roles": roles, "records": merged}


def validate(timeline: dict[str, Any]) -> list[str]:
    """Check the merged timeline's happens-before edges.

    Two rules, per trace id:

    * the driver's earliest ``live.trace.send`` mark must precede (≤)
      the proxy's earliest ``live.trace.recv`` mark — a message is sent
      before it is received;
    * the proxy's ``live.trace.commit`` span must precede (≤) its
      earliest ``live.trace.reply`` span — commit-before-reply, the
      journaling discipline; retried exchanges replay the committed
      reply, so *every* reply for an id follows the one commit.

    Returns:
        Human-readable violation strings — empty for a healthy trace.
    """
    inf = math.inf
    sends: dict[str, float] = {}
    recvs: dict[str, float] = {}
    commits: dict[str, float] = {}
    replies: dict[str, float] = {}
    for record in timeline["records"]:
        proc = record.get("proc")
        clk = _clk(record)
        if clk is None:
            continue
        if record.get("type") == "mark":
            tid = record.get("trace")
            if not isinstance(tid, str):
                continue
            kind = record.get("kind")
            if proc == "driver" and kind == "live.trace.send":
                sends[tid] = min(sends.get(tid, inf), clk)
            elif proc == "proxy" and kind == "live.trace.recv":
                recvs[tid] = min(recvs.get(tid, inf), clk)
        elif record.get("type") == "span" and proc == "proxy":
            meta = record.get("meta")
            tid = meta.get("trace") if isinstance(meta, dict) else None
            if not isinstance(tid, str):
                continue
            name = record.get("name")
            if name == "live.trace.commit":
                commits[tid] = min(commits.get(tid, inf), clk)
            elif name == "live.trace.reply":
                replies[tid] = min(replies.get(tid, inf), clk)
    violations: list[str] = []
    for tid, recv_clk in sorted(recvs.items()):
        send_clk = sends.get(tid)
        if send_clk is None:
            violations.append(
                f"trace {tid}: proxy recv without any driver send"
            )
        elif send_clk > recv_clk:
            violations.append(
                f"trace {tid}: driver send (clk={send_clk!r}) after "
                f"proxy recv (clk={recv_clk!r})"
            )
    for tid, reply_clk in sorted(replies.items()):
        commit_clk = commits.get(tid)
        if commit_clk is not None and commit_clk > reply_clk:
            violations.append(
                f"trace {tid}: commit (clk={commit_clk!r}) after reply "
                f"(clk={reply_clk!r})"
            )
    return violations


def summarize(timeline: dict[str, Any]) -> dict[str, Any]:
    """Aggregate a merged timeline into run-level numbers.

    The ``retries`` / ``chaos_injected`` counts are mark counts, and
    marks are emitted in the *same branch* as the matching
    ``live.retries`` / ``live.chaos.injected`` counter bumps — so these
    numbers must equal the run's :class:`MetricsRegistry` totals
    exactly (pinned by ``tests/live/test_trace_live.py``).

    ``hit_ages`` is the age-at-delivery distribution (simulation
    seconds since last modification) over live cache HITs, taken from
    ``live.trace.decision`` span metadata.
    """
    spans: dict[str, dict[str, Any]] = {}
    marks: dict[str, int] = {}
    events = 0
    ages: list[float] = []
    for record in timeline["records"]:
        kind = record.get("type")
        if kind == "span":
            name = str(record.get("name"))
            wall = float(record.get("wall", 0.0))
            entry = spans.setdefault(
                name, {"count": 0, "wall_total": 0.0, "wall_max": 0.0}
            )
            entry["count"] += 1
            entry["wall_total"] += wall
            entry["wall_max"] = max(entry["wall_max"], wall)
            meta = record.get("meta")
            if (
                name == "live.trace.decision"
                and isinstance(meta, dict)
                and isinstance(meta.get("age"), (int, float))
            ):
                ages.append(float(meta["age"]))
        elif kind == "mark":
            name = str(record.get("kind"))
            marks[name] = marks.get(name, 0) + 1
        elif kind == "event":
            events += 1
    for entry in spans.values():
        entry["wall_mean"] = entry["wall_total"] / entry["count"]
    hit_ages: dict[str, Any] = {"count": len(ages)}
    if ages:
        hit_ages.update(
            min=min(ages), mean=sum(ages) / len(ages), max=max(ages)
        )
    exchange = spans.get("live.trace.exchange")
    return {
        "schema": "repro.trace.summary/1",
        "spans": spans,
        "marks": marks,
        "events": events,
        "exchanges": exchange["count"] if exchange else 0,
        "retries": marks.get("live.trace.retry", 0),
        "chaos_injected": marks.get("live.trace.chaos", 0),
        "hit_ages": hit_ages,
    }


def _trace_of(record: dict[str, Any]) -> Optional[str]:
    if record.get("type") == "mark":
        tid = record.get("trace")
    else:
        meta = record.get("meta")
        tid = meta.get("trace") if isinstance(meta, dict) else None
    return tid if isinstance(tid, str) else None


def _object_of(record: dict[str, Any]) -> Optional[str]:
    if record.get("type") == "event":
        oid = record.get("id")
    else:
        meta = record.get("meta")
        oid = meta.get("object") if isinstance(meta, dict) else None
    return oid if isinstance(oid, str) else None


def _kind_of(record: dict[str, Any]) -> Optional[str]:
    name = (
        record.get("name")
        if record.get("type") == "span"
        else record.get("kind")
    )
    return name if isinstance(name, str) else None


def grep(
    timeline: dict[str, Any],
    *,
    trace: Optional[str] = None,
    object_id: Optional[str] = None,
    kind: Optional[str] = None,
) -> list[dict[str, Any]]:
    """Filter merged records by trace id, object, and/or kind.

    ``kind`` matches a mark's ``kind``, a span's ``name``, or an
    event's ``kind``.  Filters compose conjunctively; order is the
    timeline's (causal) order.
    """
    out: list[dict[str, Any]] = []
    for record in timeline["records"]:
        if trace is not None and _trace_of(record) != trace:
            continue
        if object_id is not None and _object_of(record) != object_id:
            continue
        if kind is not None and _kind_of(record) != kind:
            continue
        out.append(record)
    return out


def critical_path(
    timeline: dict[str, Any], trace: Optional[str] = None
) -> dict[str, Any]:
    """Decompose one exchange's wall time into proxy-side phases.

    With no ``trace`` id, picks the slowest ``live.trace.exchange``
    span in the timeline.  Phase walls are sums over that trace id (a
    retried exchange replays the reply, so e.g. ``live.trace.reply``
    may aggregate several writes).  ``unattributed`` is the exchange
    wall not covered by any proxy phase — relay hops, socket setup,
    scheduling.  Caveat: ``live.trace.parse`` measures request arrival
    to parsed, so on a keep-alive connection it includes idle time
    between requests and the decomposition is only an upper bound.

    Raises:
        ValueError: when the timeline has no exchange spans, or the
            requested trace id has none.
    """
    exchanges = [
        record
        for record in timeline["records"]
        if record.get("type") == "span"
        and record.get("name") == "live.trace.exchange"
    ]
    if trace is not None:
        exchanges = [r for r in exchanges if _trace_of(r) == trace]
    if not exchanges:
        wanted = "any exchange" if trace is None else f"trace {trace!r}"
        raise ValueError(f"timeline has no live.trace.exchange span for {wanted}")
    slowest = max(exchanges, key=lambda r: float(r.get("wall", 0.0)))
    tid = _trace_of(slowest)
    meta = slowest.get("meta") or {}
    wall = float(slowest.get("wall", 0.0))

    phases = {name: 0.0 for name in PROXY_PHASES}
    origin_wall = 0.0
    retries = 0
    chaos = 0
    for record in timeline["records"]:
        if _trace_of(record) != tid:
            continue
        if record.get("type") == "span":
            name = record.get("name")
            if name in phases:
                phases[str(name)] += float(record.get("wall", 0.0))
            elif name == "live.trace.origin":
                origin_wall += float(record.get("wall", 0.0))
        elif record.get("type") == "mark":
            if record.get("kind") == "live.trace.retry":
                retries += 1
            elif record.get("kind") == "live.trace.chaos":
                chaos += 1
    return {
        "schema": "repro.trace.critical/1",
        "trace": tid,
        "object": meta.get("object"),
        "t": meta.get("t"),
        "verdict": meta.get("verdict"),
        "wall": wall,
        "phases": phases,
        "origin_wall": origin_wall,
        "retries": retries,
        "chaos_injected": chaos,
        "unattributed": max(0.0, wall - sum(phases.values())),
    }


__all__ = [
    "SCHEMA",
    "critical_path",
    "grep",
    "merge",
    "role_trace_paths",
    "summarize",
    "validate",
]
