"""The engine <-> observability bridge: per-task capture and ordered merge.

Forked pool workers inherit the parent's installed metrics registry,
trace sink, and profiling state at fork time.  Anything a worker
publishes lands in *its* copy; the parent never sees it unless it is
shipped back.  This module defines the capture protocol the sweep
engine runs around every task:

1. worker: ``token = task_begin()`` — snapshot the registry, note the
   sink length, snapshot profiling totals (``None`` when everything is
   off, making the whole protocol a no-op);
2. worker: run the task, then ``payload = task_end(token)`` — a small
   picklable dict of metric deltas, new trace records, and profiling
   deltas;
3. parent: ``merge(payload)`` — applied in **submission order** across
   tasks, so the merged registry and event-record sequence are
   identical to what the serial path produces directly.

Counters and histograms merge by addition (order-free); gauges merge
last-write-wins, which the ordered merge makes deterministic; trace
records merge by concatenation, which is exactly why order matters.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs import profile, registry, trace

#: Opaque capture token: (registry snapshot, sink length, profile snapshot).
Token = tuple[Optional[dict[str, Any]], int, Optional[dict[str, Any]]]


def task_begin() -> Optional[Token]:
    """Open a capture region; ``None`` when observability is fully off."""
    active_registry = registry.active()
    sink = trace.active()
    profiling = profile.is_enabled()
    if active_registry is None and sink is None and not profiling:
        return None
    return (
        active_registry.snapshot() if active_registry is not None else None,
        len(sink.records) if sink is not None else 0,
        profile.snapshot() if profiling else None,
    )


def task_end(token: Optional[Token]) -> Optional[dict[str, Any]]:
    """Close a capture region; returns the picklable payload (or None)."""
    if token is None:
        return None
    registry_snapshot, sink_length, profile_snapshot = token
    payload: dict[str, Any] = {}
    active_registry = registry.active()
    if active_registry is not None and registry_snapshot is not None:
        metrics_delta = active_registry.delta(registry_snapshot)
        if any(metrics_delta.values()):
            payload["metrics"] = metrics_delta
    sink = trace.active()
    if sink is not None:
        new_records = sink.records[sink_length:]
        if new_records:
            payload["trace"] = new_records
    if profile_snapshot is not None:
        profile_delta = profile.delta(profile_snapshot)
        if any(profile_delta.values()):
            payload["profile"] = profile_delta
    return payload or None


def merge(payload: Optional[dict[str, Any]]) -> None:
    """Apply one task's payload to this process's registry/sink/profile.

    The engine calls this once per task, in submission order.
    """
    if payload is None:
        return
    metrics_delta = payload.get("metrics")
    if metrics_delta is not None:
        active_registry = registry.active()
        if active_registry is not None:
            active_registry.merge(metrics_delta)
    trace_records = payload.get("trace")
    if trace_records is not None:
        sink = trace.active()
        if sink is not None:
            sink.records.extend(trace_records)
    profile_delta = payload.get("profile")
    if profile_delta is not None:
        profile.merge(profile_delta)
