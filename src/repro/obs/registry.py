"""The metrics registry: counters, gauges, and fixed-bin histograms.

One :class:`MetricsRegistry` per process collects everything the
instrumented layers publish — the simulator's observer tee, ``Cache``,
``OriginServer``, the protocols, the fault layer, the sweep engine, and
the oracle.  Publication goes through the module-level handle
(:func:`emit` / :func:`observe` / :func:`set_gauge`): when no registry
is installed each call is a single global load and a ``None`` test, so
instrumented hot paths cost nothing measurable in the default
(disabled) configuration.

Determinism is the design constraint.  Histograms use *fixed*
log-spaced bucket bounds keyed by metric name
(:data:`repro.obs.names.HISTOGRAM_BINS`), so any two registries that
observed the same values hold identical bins; and the
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.delta` /
:meth:`MetricsRegistry.merge` triple lets the sweep engine capture each
forked worker's per-task contribution and re-apply the deltas in
submission order — a parallel run's merged registry is byte-identical
to the serial run's (``tests/obs/test_parallel_equivalence.py`` pins
this).

>>> reg = MetricsRegistry()
>>> with installed(reg):
...     emit("cache.stores")
...     emit("cache.stores", 2.0)
...     observe("sim.transfer_bytes", 512.0)
>>> reg.as_dict()["counters"]["cache.stores"]
3.0
>>> emit("cache.stores")  # no registry installed: a cheap no-op
>>> reg.as_dict()["counters"]["cache.stores"]
3.0
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.names import DEFAULT_BINS, HISTOGRAM_BINS

#: Dump-schema identifier written by :meth:`MetricsRegistry.as_dict`.
SCHEMA = "repro.metrics/1"


def _accumulate(partials: list[float], value: float) -> None:
    """Shewchuk exact accumulation (the ``math.fsum`` inner loop).

    Keeps ``partials`` summing *exactly* to every value accumulated so
    far, so histogram totals are independent of observation grouping —
    a per-worker delta merged into the parent yields the same rounded
    total the serial path computes directly.
    """
    i = 0
    for partial in partials:
        if abs(value) < abs(partial):
            value, partial = partial, value
        high = value + partial
        low = partial - (high - value)
        if low:
            partials[i] = low
            i += 1
        value = high
    partials[i:] = [value]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram with log-spaced upper bounds.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; values
    above the last bound land in the overflow bucket
    (``bucket_counts[-1]``, one longer than ``bounds``).  Bounds are
    fixed per metric name, which is what makes merged output
    deterministic.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "partials", "count")

    def __init__(
        self, name: str, bounds: Optional[tuple[float, ...]] = None
    ) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = (
            bounds if bounds is not None
            else HISTOGRAM_BINS.get(name, DEFAULT_BINS)
        )
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        # Exact running sum as Shewchuk partials: ``total`` is the
        # correctly-rounded sum of every observation, whatever order or
        # grouping (worker deltas) they arrived in.
        self.partials: list[float] = []
        self.count = 0

    @property
    def total(self) -> float:
        """Correctly-rounded sum of all observations."""
        return math.fsum(self.partials)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        _accumulate(self.partials, value)
        self.count += 1


class MetricsRegistry:
    """All metrics of one process (or one merged run)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- publication ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on demand)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- output --------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible dump, keys sorted (the ``--metrics`` schema)."""
        return {
            "schema": SCHEMA,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].bucket_counts),
                    "total": self._histograms[name].total,
                    "count": self._histograms[name].count,
                }
                for name in sorted(self._histograms)
            },
        }

    # -- capture & merge (the engine's per-worker protocol) ------------------

    def snapshot(self) -> dict[str, Any]:
        """A cheap copy of current values, for :meth:`delta`."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: (list(h.bucket_counts), list(h.partials), h.count)
                for n, h in self._histograms.items()
            },
        }

    def delta(self, since: dict[str, Any]) -> dict[str, Any]:
        """What was published after ``since`` (a picklable payload).

        Counter payloads carry the increments, gauge payloads the new
        values of gauges that were (re)set, histogram payloads the
        per-bucket count increments plus the *exact* total increment
        (as Shewchuk partials) and the count increment.
        """
        counters: dict[str, float] = {}
        base_counters = since["counters"]
        for name, metric in self._counters.items():
            diff = metric.value - base_counters.get(name, 0.0)
            if diff != 0.0:
                counters[name] = diff
        gauges: dict[str, float] = {}
        base_gauges = since["gauges"]
        for name, gauge_metric in self._gauges.items():
            if (
                name not in base_gauges
                or gauge_metric.value != base_gauges[name]
            ):
                gauges[name] = gauge_metric.value
        histograms: dict[str, Any] = {}
        base_hists = since["histograms"]
        for name, hist in self._histograms.items():
            old_counts, old_partials, old_count = base_hists.get(
                name, ([0] * len(hist.bucket_counts), [], 0)
            )
            grew = hist.count - old_count
            if grew:
                # Exact total increment: new partials minus old partials,
                # itself kept as partials so merging stays exact.
                diff_partials = list(hist.partials)
                for partial in old_partials:
                    _accumulate(diff_partials, -partial)
                histograms[name] = (
                    list(hist.bounds),
                    [
                        new - old
                        for new, old in zip(hist.bucket_counts, old_counts)
                    ],
                    diff_partials,
                    grew,
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, payload: dict[str, Any]) -> None:
        """Apply a :meth:`delta` payload (ordered merge is the caller's
        job; the engine applies worker payloads in submission order)."""
        for name, diff in payload["counters"].items():
            self.counter(name).add(diff)
        for name, value in payload["gauges"].items():
            self.gauge(name).set(value)
        for name, (bounds, counts, partials, grew) in payload[
            "histograms"
        ].items():
            hist = self.histogram(name)
            if list(hist.bounds) != list(bounds):
                raise ValueError(
                    f"histogram {name!r} bin mismatch: cannot merge "
                    f"{bounds!r} into {hist.bounds!r}"
                )
            for i, bucket_diff in enumerate(counts):
                hist.bucket_counts[i] += bucket_diff
            for partial in partials:
                _accumulate(hist.partials, partial)
            hist.count += grew


# -- the process-wide handle --------------------------------------------------

_registry: Optional[MetricsRegistry] = None


def install(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install the process-wide registry; returns the previous one.

    ``None`` disables metrics collection (the default)."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or None when metrics are off."""
    return _registry


@contextmanager
def installed(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope a registry installation (tests and the CLI use this)."""
    previous = install(registry)
    try:
        yield registry
    finally:
        install(previous)


def emit(name: str, value: float = 1.0) -> None:
    """Add ``value`` to counter ``name`` — a no-op when metrics are off."""
    registry = _registry
    if registry is not None:
        registry.counter(name).add(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` in histogram ``name`` — no-op when metrics are off."""
    registry = _registry
    if registry is not None:
        registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` — a no-op when metrics are off."""
    registry = _registry
    if registry is not None:
        registry.gauge(name).set(value)
