"""The observability alphabet: every metric and span name, in one place.

The RPR006 lint checker (``repro.lint.checkers.obsnames``) enforces two
directions of agreement between this module and the instrumentation
sites spread across the tree:

* every string literal passed to :func:`repro.obs.registry.emit` /
  ``observe`` / ``set_gauge`` or recorded as a span must be declared in
  :data:`METRIC_NAMES` / :data:`SPAN_NAMES` here;
* every declared name must actually be used somewhere, so the alphabet
  cannot silently drift into dead entries.

Names are dotted, lowercase, and stable — they are part of the trace
and metrics-dump schema (``docs/OBSERVABILITY.md``), and the Prometheus
exposition derives its sanitized identifiers from them.

Histogram bins are *fixed and log-spaced* per histogram name
(:data:`HISTOGRAM_BINS`): two registries that observed the same values
always hold the same bin counts, so per-worker registries merge
deterministically whatever the worker count.
"""

from __future__ import annotations

#: Counter and histogram names the instrumentation may publish.
#: ``sim.event.*`` counters are derived from the simulator's observer
#: stream by the :func:`repro.obs.trace.instrumented_observer` tee — one
#: per :data:`repro.core.simulator.EVENT_KINDS` member.
METRIC_NAMES: tuple[str, ...] = (
    # -- simulator observer-event counters (tee-derived) ---------------
    "sim.event.hit",
    "sim.event.stale_hit",
    "sim.event.miss",
    "sim.event.validation_304",
    "sim.event.validation_200",
    "sim.event.invalidation",
    "sim.event.prefetch",
    "sim.event.dynamic_fetch",
    "sim.event.fault_invalidation_lost",
    "sim.event.fault_invalidation_dropped",
    "sim.event.fault_invalidation_recovered",
    "sim.event.fault_cache_crash",
    # -- simulator distributions (histograms) --------------------------
    "sim.stale_age_seconds",
    "sim.transfer_bytes",
    # -- cache / origin server -----------------------------------------
    "cache.stores",
    "cache.evictions",
    "cache.invalidated",
    "cache.crash_drops",
    "server.gets",
    "server.ims_queries",
    # -- protocols ------------------------------------------------------
    "protocol.refresh_window_seconds",
    # -- fault layer (counted off the compiled schedule) ---------------
    "faults.attempts",
    "faults.lost",
    "faults.dropped",
    "faults.delivered",
    "faults.crashes",
    # -- sweep / engine / oracle ---------------------------------------
    "sweep.grid_points",
    "engine.tasks",
    "engine.pool_restarts",
    "engine.serial_fallback_tasks",
    "engine.fastpath_runs",
    "engine.fastpath_fallbacks",
    "fastpath.metrics_flush",
    "verify.runs",
    # -- live origin/proxy mode (repro.live) ----------------------------
    "live.requests",
    "live.wire_bytes",
    "live.connection_errors",
    "live.chaos.injected",
    "live.retries",
)

#: Span names the trace sink may record (timed regions, not counters).
#: The ``live.trace.*`` spans are the per-exchange phases of the live
#: causal trace (``docs/OBSERVABILITY.md``): parse / decision /
#: upstream / commit / reply on the proxy, origin service time on the
#: origin, and the whole client exchange on the driver.
SPAN_NAMES: tuple[str, ...] = (
    "engine.map",
    "engine.task",
    "fastpath.run",
    "live.replay",
    "live.restore",
    "live.trace.commit",
    "live.trace.decision",
    "live.trace.exchange",
    "live.trace.origin",
    "live.trace.parse",
    "live.trace.reply",
    "live.trace.upstream",
    "live.warmup",
    "sweep.run",
    "trace.merge",
    "verify.run",
)

#: Mark kinds the trace sink may record — instantaneous causal points
#: of the live mode's cross-process trace (``repro.obs.timeline``
#: orders and validates them).  RPR006 checks ``mark()`` call literals
#: against this alphabet exactly as it does metrics and spans.
TRACE_MARK_NAMES: tuple[str, ...] = (
    "live.trace.chaos",
    "live.trace.done",
    "live.trace.recv",
    "live.trace.restore",
    "live.trace.retry",
    "live.trace.send",
)


def log_bins(
    low: float, high: float, per_decade: int = 3
) -> tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds.

    ``per_decade`` bounds per factor of ten, from ``low`` up to the
    first bound >= ``high``.  Bounds are rounded to 6 significant
    digits so the tuple is reproducible and readable in dumps; values
    above the last bound land in the implicit overflow bucket.

    >>> log_bins(1.0, 100.0, per_decade=1)
    (1.0, 10.0, 100.0)
    """
    if low <= 0.0 or high <= low:
        raise ValueError(f"need 0 < low < high, got {low!r}, {high!r}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    bounds: list[float] = []
    k = 0
    while True:
        value = low * 10.0 ** (k / per_decade)
        value = float(f"{value:.6g}")
        bounds.append(value)
        if value >= high:
            break
        k += 1
    return tuple(bounds)


#: Bucket upper bounds per histogram name.  Names missing here fall
#: back to :data:`DEFAULT_BINS`.
HISTOGRAM_BINS: dict[str, tuple[float, ...]] = {
    # stale ages: one second .. ~4 months, 3 buckets per decade.
    "sim.stale_age_seconds": log_bins(1.0, 1.0e7),
    # transfer sizes: 1 byte .. 100 MB.
    "sim.transfer_bytes": log_bins(1.0, 1.0e8),
    # protocol refresh windows (TTL / Alex threshold*age), seconds.
    "protocol.refresh_window_seconds": log_bins(1.0, 1.0e8),
    # live per-exchange socket bytes: one header .. 100 MB bodies.
    "live.wire_bytes": log_bins(1.0, 1.0e8),
}

#: Fallback bounds for histograms without a dedicated entry.
DEFAULT_BINS: tuple[float, ...] = log_bins(1.0, 1.0e6)


def is_metric(name: str) -> bool:
    """True when ``name`` is a declared metric name."""
    return name in _METRIC_SET


def is_span(name: str) -> bool:
    """True when ``name`` is a declared span name."""
    return name in _SPAN_SET


def is_mark(name: str) -> bool:
    """True when ``name`` is a declared trace-mark kind."""
    return name in _MARK_SET


_METRIC_SET = frozenset(METRIC_NAMES)
_SPAN_SET = frozenset(SPAN_NAMES)
_MARK_SET = frozenset(TRACE_MARK_NAMES)
