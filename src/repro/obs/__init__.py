"""repro.obs — unified tracing, metrics, and profiling.

One observability layer for the whole reproduction:

* :mod:`repro.obs.registry` — counters/gauges/histograms with fixed
  log-spaced bins, published through zero-overhead-when-disabled module
  handles (:func:`emit` / :func:`observe` / :func:`set_gauge`);
* :mod:`repro.obs.trace` — the structured JSONL trace sink teeing the
  simulator observer stream plus engine-level spans;
* :mod:`repro.obs.profile` — engine phase timers and per-protocol-hook
  self-time (``repro profile``);
* :mod:`repro.obs.clock` — the single audited wall-clock entry point
  (the only ``# repro: noqa[RPR001]`` site in the package);
* :mod:`repro.obs.names` — the declared alphabet of every metric and
  span name, enforced project-wide by lint code RPR006;
* :mod:`repro.obs.collect` — the per-worker capture/merge protocol the
  sweep engine uses to keep parallel runs equivalent to serial ones.

``repro.obs.bench`` (the ``make bench`` emitter) is deliberately *not*
imported here: it drives the experiment layer, which itself imports
``repro.obs`` — importing it at package level would create a cycle.

Everything here is observer-side only: ``repro.obs`` never imports
``repro.core``, so core stays importable without the instrumentation
layer and the layering is one-directional.
"""

from __future__ import annotations

from repro.obs import clock, collect, names, profile, registry, trace
from repro.obs.registry import (
    MetricsRegistry,
    emit,
    observe,
    set_gauge,
)
from repro.obs.trace import TraceSink, instrumented_observer, span

__all__ = [
    "MetricsRegistry",
    "TraceSink",
    "clock",
    "collect",
    "emit",
    "instrumented_observer",
    "names",
    "observe",
    "profile",
    "registry",
    "set_gauge",
    "span",
    "trace",
]
