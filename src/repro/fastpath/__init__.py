"""``repro.fastpath`` — the batched, array-backed simulator engine.

A drop-in fast implementation of the simulator inner loop: per-object
Python objects become parallel arrays of ints/floats, the invalidation
feed merges with the request stream through one cursor, and freshness
decisions run as compiled batch predicates — at byte-identical output
to :mod:`repro.core.simulator`, which remains the oracle reference.

The equivalence contract (what "byte-identical" covers, and how it is
enforced) is documented in docs/FASTPATH.md; docs/PERFORMANCE.md shows
the measured speedups.  Engine selection (``--engine fast|reference``,
``REPRO_ENGINE``) and automatic reference fallback live in
:mod:`repro.fastpath.dispatch`.
"""

from repro.fastpath.arrays import (
    CacheState,
    CompiledServer,
    compile_server,
    encode_requests,
    initial_state,
)
from repro.fastpath.contract import (
    COUNTER_FIELDS,
    diff_events,
    diff_metrics,
    diff_results,
)
from repro.fastpath.dispatch import (
    ENGINE_ENV_VAR,
    ENGINES,
    FAST,
    REFERENCE,
    UnsupportedFastPathError,
    compile_protocol,
    engine_simulate,
    fast_simulate,
    resolve_engine,
    set_engine,
    unsupported_reason,
)

__all__ = [
    "CacheState",
    "CompiledServer",
    "COUNTER_FIELDS",
    "ENGINE_ENV_VAR",
    "ENGINES",
    "FAST",
    "REFERENCE",
    "UnsupportedFastPathError",
    "compile_protocol",
    "compile_server",
    "diff_events",
    "diff_metrics",
    "diff_results",
    "encode_requests",
    "engine_simulate",
    "fast_simulate",
    "initial_state",
    "resolve_engine",
    "set_engine",
    "unsupported_reason",
]
