"""The equivalence contract, executable: diff a fast run against reference.

docs/FASTPATH.md states the contract in prose; this module is its
checkable form, used by the ``repro.verify`` oracle's fast-path
cross-check and by the byte-identity test suites.  Equality here is
*exact* — integer counters compare with ``==`` and so do floats
(``stale_age_sum``, ``duration``): the kernel mirrors the reference's
arithmetic expression-for-expression precisely so that no tolerance is
needed.
"""

from __future__ import annotations

from repro.core.metrics import _CATEGORIES
from repro.core.results import SimulationResult

#: Every ConsistencyCounters field, in declaration order.
COUNTER_FIELDS: tuple[str, ...] = (
    "requests",
    "hits",
    "misses",
    "stale_hits",
    "stale_age_sum",
    "validations",
    "validations_not_modified",
    "full_retrievals",
    "invalidations_received",
    "prefetches",
    "server_gets",
    "server_ims_queries",
    "server_invalidations_sent",
)


def diff_results(
    fast: SimulationResult,
    reference: SimulationResult,
    *,
    label: str = "fastpath",
) -> list[str]:
    """Every exact difference between two results (empty = identical).

    Covers the full contract surface: identity fields, all 13 counters,
    all 15 ledger cells, and the duration.
    """
    lines: list[str] = []
    for attr in ("protocol_name", "mode", "duration"):
        fast_value = getattr(fast, attr)
        ref_value = getattr(reference, attr)
        if fast_value != ref_value:
            lines.append(
                f"{label}.{attr}: fast={fast_value!r} "
                f"reference={ref_value!r}"
            )
    for name in COUNTER_FIELDS:
        fast_value = getattr(fast.counters, name)
        ref_value = getattr(reference.counters, name)
        if fast_value != ref_value:
            lines.append(
                f"{label}.counters.{name}: fast={fast_value!r} "
                f"reference={ref_value!r}"
            )
    cells = (
        ("control_bytes", fast.bandwidth.control_bytes,
         reference.bandwidth.control_bytes),
        ("body_bytes", fast.bandwidth.body_bytes,
         reference.bandwidth.body_bytes),
        ("exchanges", fast.bandwidth.exchanges,
         reference.bandwidth.exchanges),
    )
    for cell_label, fast_map, ref_map in cells:
        for category in _CATEGORIES:
            if fast_map[category] != ref_map[category]:
                lines.append(
                    f"{label}.bandwidth.{cell_label}[{category}]: "
                    f"fast={fast_map[category]} "
                    f"reference={ref_map[category]}"
                )
    return lines


def diff_events(
    fast: list[tuple[str, float, str]],
    reference: list[tuple[str, float, str]],
    *,
    label: str = "fastpath",
    limit: int = 20,
) -> list[str]:
    """Event-stream differences, event-for-event (empty = identical)."""
    lines: list[str] = []
    for i in range(min(len(fast), len(reference))):
        if fast[i] != reference[i]:
            lines.append(
                f"{label}.event[{i}]: fast={fast[i]!r} "
                f"reference={reference[i]!r}"
            )
            if len(lines) >= limit:
                break
    if len(fast) != len(reference):
        lines.append(
            f"{label}.event count: fast={len(fast)} "
            f"reference={len(reference)}"
        )
    return lines
