"""The equivalence contract, executable: diff a fast run against reference.

docs/FASTPATH.md states the contract in prose; this module is its
checkable form, used by the ``repro.verify`` oracle's fast-path
cross-check and by the byte-identity test suites.  Equality here is
*exact* — integer counters compare with ``==`` and so do floats
(``stale_age_sum``, ``duration``): the kernel mirrors the reference's
arithmetic expression-for-expression precisely so that no tolerance is
needed.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.metrics import _CATEGORIES
from repro.core.results import SimulationResult

#: Metric-name prefixes excluded from :func:`diff_metrics` — engine
#: bookkeeping describes *which* engine ran, not what the run did.
ENGINE_METRIC_PREFIXES: tuple[str, ...] = ("engine.", "fastpath.")

#: Every ConsistencyCounters field, in declaration order.
COUNTER_FIELDS: tuple[str, ...] = (
    "requests",
    "hits",
    "misses",
    "stale_hits",
    "stale_age_sum",
    "validations",
    "validations_not_modified",
    "full_retrievals",
    "invalidations_received",
    "prefetches",
    "server_gets",
    "server_ims_queries",
    "server_invalidations_sent",
)


def diff_results(
    fast: SimulationResult,
    reference: SimulationResult,
    *,
    label: str = "fastpath",
) -> list[str]:
    """Every exact difference between two results (empty = identical).

    Covers the full contract surface: identity fields, all 13 counters,
    all 15 ledger cells, and the duration.
    """
    lines: list[str] = []
    for attr in ("protocol_name", "mode", "duration"):
        fast_value = getattr(fast, attr)
        ref_value = getattr(reference, attr)
        if fast_value != ref_value:
            lines.append(
                f"{label}.{attr}: fast={fast_value!r} "
                f"reference={ref_value!r}"
            )
    for name in COUNTER_FIELDS:
        fast_value = getattr(fast.counters, name)
        ref_value = getattr(reference.counters, name)
        if fast_value != ref_value:
            lines.append(
                f"{label}.counters.{name}: fast={fast_value!r} "
                f"reference={ref_value!r}"
            )
    cells = (
        ("control_bytes", fast.bandwidth.control_bytes,
         reference.bandwidth.control_bytes),
        ("body_bytes", fast.bandwidth.body_bytes,
         reference.bandwidth.body_bytes),
        ("exchanges", fast.bandwidth.exchanges,
         reference.bandwidth.exchanges),
    )
    for cell_label, fast_map, ref_map in cells:
        for category in _CATEGORIES:
            if fast_map[category] != ref_map[category]:
                lines.append(
                    f"{label}.bandwidth.{cell_label}[{category}]: "
                    f"fast={fast_map[category]} "
                    f"reference={ref_map[category]}"
                )
    return lines


def diff_events(
    fast: list[tuple[str, float, str]],
    reference: list[tuple[str, float, str]],
    *,
    label: str = "fastpath",
    limit: int = 20,
) -> list[str]:
    """Event-stream differences, event-for-event (empty = identical)."""
    lines: list[str] = []
    for i in range(min(len(fast), len(reference))):
        if fast[i] != reference[i]:
            lines.append(
                f"{label}.event[{i}]: fast={fast[i]!r} "
                f"reference={reference[i]!r}"
            )
            if len(lines) >= limit:
                break
    if len(fast) != len(reference):
        lines.append(
            f"{label}.event count: fast={len(fast)} "
            f"reference={len(reference)}"
        )
    return lines


def _strip_engine_metrics(dump: dict[str, Any]) -> dict[str, Any]:
    prefixes = ENGINE_METRIC_PREFIXES
    return {
        section: {
            name: value
            for name, value in dump.get(section, {}).items()
            if not name.startswith(prefixes)
        }
        for section in ("counters", "gauges", "histograms")
    }


def diff_metrics(
    fast: dict[str, Any],
    reference: dict[str, Any],
    *,
    label: str = "fastpath.metrics",
) -> list[str]:
    """Byte-level differences between two registry dumps (empty = none).

    ``fast`` and ``reference`` are
    :meth:`~repro.obs.registry.MetricsRegistry.as_dict` dumps of two
    registries that each scoped one run — the kernel's batched flush on
    one side, the reference loop's per-observation publication on the
    other.  Equality is *byte* equality of the JSON serialization
    (so ``-0.0`` vs ``0.0`` or a missing lazily-created key counts as a
    divergence), after dropping :data:`ENGINE_METRIC_PREFIXES` names.
    """
    lines: list[str] = []
    fast_filtered = _strip_engine_metrics(fast)
    ref_filtered = _strip_engine_metrics(reference)
    for section in ("counters", "gauges", "histograms"):
        fast_map = fast_filtered[section]
        ref_map = ref_filtered[section]
        for name in sorted(set(fast_map) | set(ref_map)):
            fast_json = json.dumps(fast_map.get(name), sort_keys=True)
            ref_json = json.dumps(ref_map.get(name), sort_keys=True)
            if fast_json != ref_json:
                lines.append(
                    f"{label}.{section}[{name}]: fast={fast_json} "
                    f"reference={ref_json}"
                )
    return lines
