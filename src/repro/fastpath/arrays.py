"""Array compilation: origin servers and request streams as flat arrays.

The reference simulator walks a graph of Python objects per request —
``Cache`` → ``CacheEntry``, ``OriginServer`` → ``ObjectHistory`` →
``ModificationSchedule`` — paying an attribute lookup or a method call
for every hop.  The fast path compiles that graph *once* per server
into parallel arrays indexed by a dense object index:

* population arrays (:class:`CompiledServer`) — sizes, cacheability,
  creation times, Expires lifetimes, and every modification schedule
  flattened into one sorted ``mod_times`` array with per-object
  ``[mod_lo, mod_lo + mod_count)`` slices, so "version at time t" is
  a single bounded :func:`bisect.bisect_right`;
* cache-state arrays (:class:`CacheState`) — the mutable per-entry
  fields the protocols consult (``validated_at``, ``last_modified``,
  ``valid``, generation, Expires stamps), replacing ``CacheEntry``;
* the invalidation feed as a pair of parallel arrays, merged with the
  request stream by one cursor instead of per-request tuple peeks.

Compilation is cached per server instance (weak-keyed, so a dropped
server frees its arrays): a 21-point sweep over one workload compiles
once and reuses the arrays for every grid point.

Equivalence note (docs/FASTPATH.md): the compiled feed is the server's
own :meth:`~repro.core.server.OriginServer.invalidation_feed` mapped to
object indices — same tuple, same ``(time, id)`` sort — and request
encoding replays the reference simulator's own validation, raising the
identical ``ValueError`` for out-of-order streams and
:class:`~repro.core.server.UnknownObjectError` for unknown ids (the
fast path raises before any event is observed; the reference raises
mid-stream — see the contract's error-parity clause).
"""

from __future__ import annotations

import weakref
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable

from repro.core.server import OriginServer, UnknownObjectError


@dataclass(frozen=True)
class CompiledServer:
    """One origin server flattened into parallel arrays.

    All lists are indexed by the dense object index assigned in the
    server's insertion order (the order :meth:`Cache.preload_from`
    walks), so preload-time behaviour needs no id lookups at all.
    """

    ids: list[str]
    index: dict[str, int]
    sizes: list[int]
    cacheable: list[bool]
    created: list[float]
    #: Expires lifetime per object; meaningful only where ``has_expires``.
    expires_after: list[float]
    has_expires: list[bool]
    #: Every modification schedule, flattened; object ``i`` owns the
    #: ascending slice ``mod_times[mod_lo[i] : mod_lo[i] + mod_count[i]]``.
    mod_times: list[float]
    mod_lo: list[int]
    mod_count: list[int]
    #: The invalidation feed (modification events time-ordered with the
    #: reference's ``(time, id)`` tie-break), as parallel arrays.
    feed_times: list[float]
    feed_obj: list[int]


_COMPILED: "weakref.WeakKeyDictionary[OriginServer, CompiledServer]" = (
    weakref.WeakKeyDictionary()
)


def compile_server(server: OriginServer) -> CompiledServer:
    """Compile (or fetch the cached compilation of) ``server``."""
    compiled = _COMPILED.get(server)
    if compiled is None:
        compiled = _compile(server)
        _COMPILED[server] = compiled
    return compiled


def _compile(server: OriginServer) -> CompiledServer:
    ids: list[str] = []
    index: dict[str, int] = {}
    sizes: list[int] = []
    cacheable: list[bool] = []
    created: list[float] = []
    expires_after: list[float] = []
    has_expires: list[bool] = []
    mod_times: list[float] = []
    mod_lo: list[int] = []
    mod_count: list[int] = []
    for oid, history in server.histories().items():
        obj = history.obj
        index[oid] = len(ids)
        ids.append(oid)
        sizes.append(obj.size)
        cacheable.append(obj.cacheable)
        created.append(history.schedule.created)
        if obj.expires_after is not None:
            expires_after.append(obj.expires_after)
            has_expires.append(True)
        else:
            expires_after.append(0.0)
            has_expires.append(False)
        times = history.schedule.times
        mod_lo.append(len(mod_times))
        mod_count.append(len(times))
        mod_times.extend(times)
    feed_times: list[float] = []
    feed_obj: list[int] = []
    for t, oid in server.invalidation_feed():
        feed_times.append(t)
        feed_obj.append(index[oid])
    return CompiledServer(
        ids=ids,
        index=index,
        sizes=sizes,
        cacheable=cacheable,
        created=created,
        expires_after=expires_after,
        has_expires=has_expires,
        mod_times=mod_times,
        mod_lo=mod_lo,
        mod_count=mod_count,
        feed_times=feed_times,
        feed_obj=feed_obj,
    )


class CacheState:
    """The proxy cache as parallel arrays (one slot per server object).

    Mirrors exactly the :class:`~repro.core.cache.CacheEntry` fields the
    supported protocols and the simulator consult.  ``expires_at`` is
    the CERN policy's store-time stamp; other protocols ignore it.
    """

    __slots__ = (
        "resident",
        "valid",
        "version",
        "validated_at",
        "last_modified",
        "has_server_expires",
        "server_expires",
        "expires_at",
    )

    def __init__(self, count: int) -> None:
        self.resident = [False] * count
        self.valid = [False] * count
        self.version = [0] * count
        self.validated_at = [0.0] * count
        self.last_modified = [0.0] * count
        self.has_server_expires = [False] * count
        self.server_expires = [0.0] * count
        self.expires_at = [0.0] * count


def initial_state(
    compiled: CompiledServer, start_time: float, preload: bool
) -> CacheState:
    """Cache-state arrays as of ``start_time``.

    With ``preload`` (the paper's configuration) every cacheable object
    enters resident and valid, stamped validated at ``start_time`` with
    the origin's Last-Modified at that instant — exactly what
    :meth:`Cache.preload_from` builds.  CERN's store-time expiry stamp
    is applied by the kernel (it depends on protocol parameters).
    """
    count = len(compiled.ids)
    state = CacheState(count)
    if not preload:
        return state
    mod_times = compiled.mod_times
    for i in range(count):
        if not compiled.cacheable[i]:
            continue
        lo = compiled.mod_lo[i]
        version = bisect_right(
            mod_times, start_time, lo, lo + compiled.mod_count[i]
        ) - lo
        state.resident[i] = True
        state.valid[i] = True
        state.version[i] = version
        state.validated_at[i] = start_time
        state.last_modified[i] = (
            compiled.created[i] if version == 0 else mod_times[lo + version - 1]
        )
        if compiled.has_expires[i]:
            state.has_server_expires[i] = True
            state.server_expires[i] = start_time + compiled.expires_after[i]
    return state


def encode_requests(
    compiled: CompiledServer,
    requests: Iterable[tuple[float, str]],
    start_time: float,
) -> tuple[list[float], list[int]]:
    """The request stream as parallel (times, object-index) arrays.

    Validation replays the reference :meth:`Simulation.step` checks with
    identical exception types and messages.

    Raises:
        ValueError: when the stream is not time-ordered (the reference
            simulator's message, byte for byte).
        UnknownObjectError: when a request names an object the server
            does not hold.
    """
    times: list[float] = []
    objs: list[int] = []
    index = compiled.index
    now: float = float(start_time)
    for t, oid in requests:
        if t < now:
            raise ValueError(
                f"request at {t!r} precedes current time {now!r}; "
                "request streams must be time-ordered"
            )
        now = t
        obj = index.get(oid)
        if obj is None:
            raise UnknownObjectError(oid)
        times.append(t)
        objs.append(obj)
    return times, objs
