"""The batched simulation kernel: one flat loop over compiled arrays.

This module is the fast path's inner loop.  It replays exactly the
reference :class:`repro.core.simulator.Simulation` semantics — the same
branch structure, the same arithmetic *expressions* in the same
evaluation order (so float results are bit-identical), the same charge
and counter increments, and the same observer event stream — but over
the parallel arrays of :mod:`repro.fastpath.arrays` instead of the
object graph, with every hot name bound to a local.

Freshness decisions are batch predicates over the state arrays,
dispatched on a compiled integer protocol kind instead of a virtual
``is_fresh`` call; each formula below is a transliteration of the
corresponding ``repro.core.protocols`` method (docs/FASTPATH.md maps
them line by line).  The invalidation feed is pre-merged: a single
cursor over the compiled ``(feed_times, feed_obj)`` arrays advances
whenever the next request time passes the next feed time, replacing the
per-request feed peeks of the reference loop.

Anything this kernel does not model (fault plans, adaptive protocols,
eager prefetch pushes, bounded caches) is refused upstream by
:func:`repro.fastpath.dispatch.unsupported_reason` and routed to the
reference engine — the kernel never approximates.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Optional

from repro.core.costs import MessageCosts
from repro.core.metrics import (
    FULL_RETRIEVAL,
    INVALIDATION,
    VALIDATION_200,
    VALIDATION_304,
    BandwidthLedger,
    ConsistencyCounters,
)
from repro.core.results import SimulationResult
from repro.core.simulator import EventObserver
from repro.fastpath.arrays import CacheState, CompiledServer
from repro.obs.names import DEFAULT_BINS, HISTOGRAM_BINS
from repro.obs.registry import MetricsRegistry, _accumulate

#: Compiled protocol kinds (see ``dispatch.compile_protocol``).
KIND_TTL = 0
KIND_EXPIRES = 1
KIND_ALEX = 2
KIND_POLL = 3
KIND_INVALIDATION = 4
KIND_LEASED = 5
KIND_CERN = 6

_INFINITY = float("inf")


def _bins(name: str) -> tuple[float, ...]:
    return HISTOGRAM_BINS.get(name, DEFAULT_BINS)


class MetricsBatch:
    """Per-run metric deltas, accumulated flat and flushed once.

    The reference loop publishes ``cache.*`` / ``server.*`` / ``sim.*``
    metrics from inside the hot path; the kernel instead tallies the
    same increments and observations into plain locals during the fused
    loop and lands them here.  :meth:`flush` applies the whole run as a
    single :meth:`~repro.obs.registry.MetricsRegistry.merge` payload —
    counters as whole-run totals (n unit increments sum to exactly
    ``float(n)``), histograms as ``(bounds, bucket counts, Shewchuk
    partials, count)``, the exact shape
    :meth:`~repro.obs.registry.MetricsRegistry.delta` produces — so the
    merged registry is byte-identical to one the reference engine filled
    observation by observation (the docs/FASTPATH.md equivalence rule,
    enforced by ``contract.diff_metrics``).

    Zero counters and empty histograms are never recorded: lazily
    created metric keys must match the reference's dump exactly.
    """

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Any] = {}

    def count(self, name: str, n: int) -> None:
        """Record a whole-run counter total (skipped when zero)."""
        if n:
            self.counters[name] = float(n)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...],
        bucket_counts: list[int],
        partials: list[float],
        count: int,
    ) -> None:
        """Record a whole-run histogram delta (skipped when empty)."""
        if count:
            self.histograms[name] = (list(bounds), bucket_counts,
                                     partials, count)

    def flush(self, registry: MetricsRegistry) -> None:
        """Apply the batched deltas through the exact merge path."""
        registry.merge(
            {
                "counters": self.counters,
                "gauges": {},
                "histograms": self.histograms,
            }
        )


def run_kernel(
    compiled: CompiledServer,
    state: CacheState,
    req_times: list[float],
    req_objs: list[int],
    *,
    kind: int,
    p0: float = 0.0,
    p1: float = 0.0,
    p2: float = 0.0,
    has_p2: bool = False,
    base_mode: bool,
    costs: MessageCosts,
    charge_per_modification: bool,
    preload: bool,
    start_time: float,
    end_time: Optional[float],
    protocol_name: str,
    mode_value: str,
    observer: Optional[EventObserver] = None,
    batch: Optional[MetricsBatch] = None,
) -> SimulationResult:
    """Drive the full request stream through the array interpreter.

    Parameter meanings per kind: TTL/Expires — ``p0`` is the (default)
    TTL; Alex — ``p0`` is the threshold fraction; leased — ``p0`` is the
    lease; CERN — ``p0``/``p1``/``p2`` are lm_fraction / default_ttl /
    max_ttl (``has_p2`` = a max_ttl clamp is configured).

    When ``batch`` is given, the loop additionally tallies every metric
    the reference engine would have published (``cache.stores``,
    ``server.gets``, ``sim.transfer_bytes``, the ``sim.event.*`` family,
    ...) into flat locals, landing the totals in the batch for a single
    post-run flush.

    Raises:
        ValueError: when ``end_time`` precedes the last request (the
            reference's message, byte for byte).
        AssertionError: if the counter invariants fail (same terminal
            check the reference ``finish`` runs).
    """
    br = bisect_right
    ids = compiled.ids
    sizes = compiled.sizes
    cacheable = compiled.cacheable
    obj_created = compiled.created
    expires_after = compiled.expires_after
    has_expires = compiled.has_expires
    mod_times = compiled.mod_times
    mod_lo = compiled.mod_lo
    mod_count = compiled.mod_count

    resident = state.resident
    valid = state.valid
    version = state.version
    validated_at = state.validated_at
    last_modified = state.last_modified
    has_sx = state.has_server_expires
    sx = state.server_expires
    expires_at = state.expires_at

    is_cern = kind == KIND_CERN
    wants_feed = kind == KIND_INVALIDATION or kind == KIND_LEASED

    if is_cern and preload:
        # Preload calls protocol.on_stored(entry, start_time) for every
        # entry, which for CERN stamps the store-time expiry
        # (_derive_expiry with now = start_time).
        for i in range(len(ids)):
            if not resident[i]:
                continue
            # repro-fastpath: cern-stamp
            if has_sx[i]:
                expires_at[i] = sx[i]
            else:
                age = start_time - last_modified[i]
                ttl = p0 * age if age > 0 else p1
                if has_p2:
                    ttl = min(ttl, p2)
                expires_at[i] = start_time + ttl

    feed_times: list[float] = compiled.feed_times if wants_feed else []
    feed_obj = compiled.feed_obj
    feed_len = len(feed_times)
    # Modifications that predate the run are skipped: preloaded entries
    # already reflect them (the reference's start-time fast-forward).
    feed_idx = br(feed_times, start_time, 0, feed_len)
    next_feed = feed_times[feed_idx] if feed_idx < feed_len else _INFINITY

    control_message, _ = costs.invalidation_notice()
    full_control, _ = costs.full_retrieval(0)
    per_modification = charge_per_modification
    notify = observer

    requests = 0
    hits = 0
    misses = 0
    stale_hits = 0
    stale_age_sum = 0.0
    validations = 0
    validations_not_modified = 0
    full_retrievals = 0
    invalidations_received = 0
    server_gets = 0
    server_ims_queries = 0
    server_invalidations_sent = 0

    ctl_full = 0
    body_full = 0
    ex_full = 0
    ctl_304 = 0
    ex_304 = 0
    ctl_200 = 0
    body_200 = 0
    ex_200 = 0
    ctl_inv = 0
    ex_inv = 0

    # -- batched metric accumulation (leg of docs/FASTPATH.md's
    # metrics-equivalence rule): tally what the reference engine would
    # have published, flush once post-run via MetricsBatch.merge.
    collect = batch is not None
    bl = bisect_left
    acc = _accumulate
    n_dynamic = 0
    n_store_miss = 0
    n_went_invalid = 0
    n_preloaded = resident.count(True) if collect else 0
    tb_bounds = _bins("sim.transfer_bytes")
    tb_counts = [0] * (len(tb_bounds) + 1)
    tb_partials: list[float] = []
    tb_n = 0
    sa_bounds = _bins("sim.stale_age_seconds")
    sa_counts = [0] * (len(sa_bounds) + 1)
    sa_partials: list[float] = []
    sa_n = 0
    rw_bounds = _bins("protocol.refresh_window_seconds")
    rw_counts = [0] * (len(rw_bounds) + 1)
    rw_partials: list[float] = []
    rw_n = 0
    # Only TTL/Expires/Alex observe a refresh window in on_stored.
    rw_kind = collect and (
        kind == KIND_TTL or kind == KIND_EXPIRES or kind == KIND_ALEX
    )
    if rw_kind and preload:
        # Preload runs protocol.on_stored(entry, start_time) per entry.
        st = float(start_time)
        for j in range(len(ids)):
            if not resident[j]:
                continue
            if kind == KIND_TTL:
                rw_val = p0
            elif kind == KIND_EXPIRES:
                rw_val = sx[j] - st if has_sx[j] else (st + p0) - st
            else:
                rw_val = p0 * max(st - last_modified[j], 0.0)
            rw_counts[bl(rw_bounds, rw_val)] += 1
            acc(rw_partials, rw_val)
            rw_n += 1

    now = float(start_time)
    for t, i in zip(req_times, req_objs):
        now = t
        # -- deliver pending invalidation callbacks -----------------------
        while next_feed <= t:
            mi = feed_obj[feed_idx]
            mod_time = next_feed
            feed_idx += 1
            next_feed = (
                feed_times[feed_idx] if feed_idx < feed_len else _INFINITY
            )
            if not resident[mi]:
                continue
            if valid[mi]:
                valid[mi] = False
                went_invalid = True
                n_went_invalid += 1
            else:
                went_invalid = False
            if went_invalid or per_modification:
                invalidations_received += 1
                server_invalidations_sent += 1
                ctl_inv += control_message
                ex_inv += 1
                if notify is not None:
                    notify("invalidation", mod_time, ids[mi])
        requests += 1

        if not cacheable[i]:
            # Dynamic content: full fetch on every request, never stored.
            ctl_full += full_control
            body_full += sizes[i]
            ex_full += 1
            full_retrievals += 1
            server_gets += 1
            misses += 1
            n_dynamic += 1
            if collect:
                tb_val = float(sizes[i])
                tb_counts[bl(tb_bounds, tb_val)] += 1
                acc(tb_partials, tb_val)
                tb_n += 1
            if notify is not None:
                notify("dynamic_fetch", t, ids[i])
            continue

        if not resident[i]:
            # Cold miss: full fetch + store.
            lo = mod_lo[i]
            vt = br(mod_times, t, lo, lo + mod_count[i]) - lo
            ctl_full += full_control
            body_full += sizes[i]
            ex_full += 1
            full_retrievals += 1
            server_gets += 1
            misses += 1
            resident[i] = True
            valid[i] = True
            version[i] = vt
            validated_at[i] = t
            lm = obj_created[i] if vt == 0 else mod_times[lo + vt - 1]
            last_modified[i] = lm
            if has_expires[i]:
                has_sx[i] = True
                sx[i] = t + expires_after[i]
            else:
                has_sx[i] = False
            # repro-fastpath: cern-stamp
            if is_cern:
                if has_sx[i]:
                    expires_at[i] = sx[i]
                else:
                    age = t - lm
                    ttl = p0 * age if age > 0 else p1
                    if has_p2:
                        ttl = min(ttl, p2)
                    expires_at[i] = t + ttl
            n_store_miss += 1
            if collect:
                tb_val = float(sizes[i])
                tb_counts[bl(tb_bounds, tb_val)] += 1
                acc(tb_partials, tb_val)
                tb_n += 1
                if rw_kind:
                    if kind == KIND_TTL:
                        rw_val = p0
                    elif kind == KIND_EXPIRES:
                        rw_val = sx[i] - t if has_sx[i] else (t + p0) - t
                    else:
                        rw_val = p0 * max(t - lm, 0.0)
                    rw_counts[bl(rw_bounds, rw_val)] += 1
                    acc(rw_partials, rw_val)
                    rw_n += 1
            if notify is not None:
                notify("miss", t, ids[i])
            continue

        # -- freshness: the compiled protocol predicate -------------------
        # repro-fastpath-begin: freshness
        # RPR008 structurally diffs each branch below against the
        # corresponding protocol's is_fresh (docs/FASTPATH.md contract).
        if kind == KIND_TTL:
            fresh = (t - validated_at[i]) < p0
        elif kind == KIND_ALEX:
            age = validated_at[i] - last_modified[i]
            if age <= 0.0:
                fresh = False
            else:
                fresh = (t - validated_at[i]) < p0 * age
        elif kind == KIND_EXPIRES:
            if has_sx[i]:
                fresh = t < sx[i]
            else:
                fresh = (t - validated_at[i]) < p0
        elif kind == KIND_INVALIDATION:
            fresh = valid[i]
        elif kind == KIND_LEASED:
            fresh = valid[i] and t - validated_at[i] < p0
        elif kind == KIND_CERN:
            fresh = t < expires_at[i]
        else:  # KIND_POLL
            fresh = False
        # repro-fastpath-end: freshness

        if fresh:
            hits += 1
            v = version[i]
            nm = mod_count[i]
            # version_at(t) <= mod_count, so an entry at the final
            # version can never test stale: skip the bisect entirely.
            if v < nm:
                lo = mod_lo[i]
                hi = lo + nm
                if v < br(mod_times, t, lo, hi) - lo:
                    stale_hits += 1
                    # became_stale = next_change_after(last_modified):
                    # the entry's Last-Modified is exactly mod_times
                    # [lo + v - 1] (or created), so the first strictly
                    # later change is mod_times[lo + v] — in range
                    # because v < version_at(t) <= nm.
                    age_stale = t - mod_times[lo + v]
                    stale_age_sum += age_stale
                    if collect:
                        sa_counts[bl(sa_bounds, age_stale)] += 1
                        acc(sa_partials, age_stale)
                        sa_n += 1
                    if notify is not None:
                        notify("stale_hit", t, ids[i])
                elif notify is not None:
                    notify("hit", t, ids[i])
            elif notify is not None:
                notify("hit", t, ids[i])
            continue

        lo = mod_lo[i]
        vt = br(mod_times, t, lo, lo + mod_count[i]) - lo
        lm = obj_created[i] if vt == 0 else mod_times[lo + vt - 1]

        if base_mode:
            # Base simulator: unconditional refetch, even when unchanged.
            ctl_full += full_control
            body_full += sizes[i]
            ex_full += 1
            full_retrievals += 1
            server_gets += 1
            misses += 1
            valid[i] = True
            version[i] = vt
            validated_at[i] = t
            last_modified[i] = lm
            if has_expires[i]:
                has_sx[i] = True
                sx[i] = t + expires_after[i]
            else:
                has_sx[i] = False
            # repro-fastpath: cern-stamp
            if is_cern:
                if has_sx[i]:
                    expires_at[i] = sx[i]
                else:
                    age = t - lm
                    ttl = p0 * age if age > 0 else p1
                    if has_p2:
                        ttl = min(ttl, p2)
                    expires_at[i] = t + ttl
            n_store_miss += 1
            if collect:
                tb_val = float(sizes[i])
                tb_counts[bl(tb_bounds, tb_val)] += 1
                acc(tb_partials, tb_val)
                tb_n += 1
                if rw_kind:
                    if kind == KIND_TTL:
                        rw_val = p0
                    elif kind == KIND_EXPIRES:
                        rw_val = sx[i] - t if has_sx[i] else (t + p0) - t
                    else:
                        rw_val = p0 * max(t - lm, 0.0)
                    rw_counts[bl(rw_bounds, rw_val)] += 1
                    acc(rw_partials, rw_val)
                    rw_n += 1
            if notify is not None:
                notify("miss", t, ids[i])
            continue

        # Optimized simulator: conditional retrieval.
        validations += 1
        server_ims_queries += 1
        if lm <= last_modified[i]:
            # 304 Not Modified: revalidate in place, re-stamp Expires.
            ctl_304 += full_control
            ex_304 += 1
            validations_not_modified += 1
            validated_at[i] = t
            valid[i] = True
            if has_expires[i]:
                has_sx[i] = True
                sx[i] = t + expires_after[i]
            else:
                has_sx[i] = False
            # repro-fastpath: cern-stamp
            if is_cern:
                if has_sx[i]:
                    expires_at[i] = sx[i]
                else:
                    age = t - last_modified[i]
                    ttl = p0 * age if age > 0 else p1
                    if has_p2:
                        ttl = min(ttl, p2)
                    expires_at[i] = t + ttl
            if rw_kind:
                # The 304 path re-runs on_stored without a cache store.
                if kind == KIND_TTL:
                    rw_val = p0
                elif kind == KIND_EXPIRES:
                    rw_val = sx[i] - t if has_sx[i] else (t + p0) - t
                else:
                    rw_val = p0 * max(t - last_modified[i], 0.0)
                rw_counts[bl(rw_bounds, rw_val)] += 1
                acc(rw_partials, rw_val)
                rw_n += 1
            hits += 1
            if notify is not None:
                notify("validation_304", t, ids[i])
            continue
        # 200: body moves; store the new version.
        ctl_200 += full_control
        body_200 += sizes[i]
        ex_200 += 1
        misses += 1
        valid[i] = True
        version[i] = vt
        validated_at[i] = t
        last_modified[i] = lm
        if has_expires[i]:
            has_sx[i] = True
            sx[i] = t + expires_after[i]
        else:
            has_sx[i] = False
        # repro-fastpath: cern-stamp
        if is_cern:
            if has_sx[i]:
                expires_at[i] = sx[i]
            else:
                age = t - lm
                ttl = p0 * age if age > 0 else p1
                if has_p2:
                    ttl = min(ttl, p2)
                expires_at[i] = t + ttl
        if collect:
            tb_val = float(sizes[i])
            tb_counts[bl(tb_bounds, tb_val)] += 1
            acc(tb_partials, tb_val)
            tb_n += 1
            if rw_kind:
                if kind == KIND_TTL:
                    rw_val = p0
                elif kind == KIND_EXPIRES:
                    rw_val = sx[i] - t if has_sx[i] else (t + p0) - t
                else:
                    rw_val = p0 * max(t - lm, 0.0)
                rw_counts[bl(rw_bounds, rw_val)] += 1
                acc(rw_partials, rw_val)
                rw_n += 1
        if notify is not None:
            notify("validation_200", t, ids[i])

    # -- finish: trailing feed, duration, invariants ----------------------
    if end_time is not None:
        if end_time < now:
            raise ValueError(
                f"end_time {end_time!r} precedes last request {now!r}"
            )
        now = end_time
        while next_feed <= end_time:
            mi = feed_obj[feed_idx]
            mod_time = next_feed
            feed_idx += 1
            next_feed = (
                feed_times[feed_idx] if feed_idx < feed_len else _INFINITY
            )
            if not resident[mi]:
                continue
            if valid[mi]:
                valid[mi] = False
                went_invalid = True
                n_went_invalid += 1
            else:
                went_invalid = False
            if went_invalid or per_modification:
                invalidations_received += 1
                server_invalidations_sent += 1
                ctl_inv += control_message
                ex_inv += 1
                if notify is not None:
                    notify("invalidation", mod_time, ids[mi])

    if batch is not None:
        # Whole-run totals, mirroring every reference-loop publication
        # (preload included); zero counts are skipped so the registry's
        # lazily-created keys match the reference dump exactly.
        batch.count("cache.stores", n_preloaded + n_store_miss + ex_200)
        batch.count("cache.invalidated", n_went_invalid)
        batch.count("server.gets", n_preloaded + full_retrievals + ex_200)
        batch.count("server.ims_queries", server_ims_queries)
        batch.count(
            "sim.event.hit", (hits - validations_not_modified) - stale_hits
        )
        batch.count("sim.event.stale_hit", stale_hits)
        batch.count("sim.event.miss", n_store_miss)
        batch.count("sim.event.validation_304", validations_not_modified)
        batch.count("sim.event.validation_200", ex_200)
        batch.count("sim.event.invalidation", invalidations_received)
        batch.count("sim.event.dynamic_fetch", n_dynamic)
        batch.histogram(
            "sim.transfer_bytes", tb_bounds, tb_counts, tb_partials, tb_n
        )
        batch.histogram(
            "sim.stale_age_seconds", sa_bounds, sa_counts, sa_partials, sa_n
        )
        batch.histogram(
            "protocol.refresh_window_seconds",
            rw_bounds,
            rw_counts,
            rw_partials,
            rw_n,
        )

    counters = ConsistencyCounters(
        requests=requests,
        hits=hits,
        misses=misses,
        stale_hits=stale_hits,
        stale_age_sum=stale_age_sum,
        validations=validations,
        validations_not_modified=validations_not_modified,
        full_retrievals=full_retrievals,
        invalidations_received=invalidations_received,
        prefetches=0,
        server_gets=server_gets,
        server_ims_queries=server_ims_queries,
        server_invalidations_sent=server_invalidations_sent,
    )
    bandwidth = BandwidthLedger()
    bandwidth.control_bytes[FULL_RETRIEVAL] = ctl_full
    bandwidth.body_bytes[FULL_RETRIEVAL] = body_full
    bandwidth.exchanges[FULL_RETRIEVAL] = ex_full
    bandwidth.control_bytes[VALIDATION_304] = ctl_304
    bandwidth.exchanges[VALIDATION_304] = ex_304
    bandwidth.control_bytes[VALIDATION_200] = ctl_200
    bandwidth.body_bytes[VALIDATION_200] = body_200
    bandwidth.exchanges[VALIDATION_200] = ex_200
    bandwidth.control_bytes[INVALIDATION] = ctl_inv
    bandwidth.exchanges[INVALIDATION] = ex_inv
    result = SimulationResult(
        protocol_name=protocol_name,
        mode=mode_value,
        counters=counters,
        bandwidth=bandwidth,
        duration=now - float(start_time),
    )
    result.counters.check_invariants()
    return result
