"""Engine selection and the fast-path drop-in for ``simulate``.

Three public seams live here:

* :func:`resolve_engine` / :func:`set_engine` — which engine a run uses.
  Precedence: an explicit argument (the CLI ``--engine`` flag), then the
  process-wide override set by :func:`set_engine` (mirrored into the
  ``REPRO_ENGINE`` environment variable so forked *and* spawned sweep
  workers agree with the parent), then the environment variable, then
  the default — **fast**.
* :func:`unsupported_reason` — the fallback predicate.  The fast path
  refuses, rather than approximates, any configuration outside its
  compiled subset; the reason string is what diagnostics and docs show.
* :func:`engine_simulate` — the drop-in used by
  :func:`repro.verify.checked_simulate`: routes to
  :func:`fast_simulate` when the fast engine is selected and supported,
  and to the reference :func:`repro.core.simulator.simulate` otherwise.

Automatic fallback to the reference engine happens for:

* a ``faults`` plan (fault schedules interleave with delivery in ways
  the batched feed cursor does not model);
* adaptive protocols (``SelfTuningProtocol``) and any protocol subclass
  or wrapper the compiler does not recognize *exactly* (a subclass may
  override ``is_fresh``; byte identity demands the known formulas);
* eager invalidation variants (prefetch pushes);
* a caller-supplied ``cache`` (bounded capacity, pre-seeded state).

Observability no longer forces a fallback: with a metrics registry
active the kernel tallies the same ``cache.*`` / ``server.*`` / ``sim.*``
publications in flat locals and flushes them once per run through the
registry's exact merge path (byte-equal totals — the
docs/FASTPATH.md metrics-equivalence rule, enforced by
``contract.diff_metrics`` and the verify oracle), and with a trace sink
active the kernel's contract-pinned observer stream is teed into the
sink event for event.  (Profiling reports the fast path's own
``fastpath.compile`` / ``fastpath.simulate`` phases instead of the
reference's hook timings.)
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.core.cache import Cache
from repro.core.costs import DEFAULT_COSTS, MessageCosts
from repro.core.protocols import (
    AlexProtocol,
    CERNPolicyProtocol,
    ExpiresTTLProtocol,
    InvalidationProtocol,
    LeasedInvalidationProtocol,
    PollEveryRequestProtocol,
    TTLProtocol,
)
from repro.core.protocols.base import ConsistencyProtocol
from repro.core.results import SimulationResult
from repro.core.server import OriginServer
from repro.core.simulator import EventObserver, SimulatorMode, simulate
from repro.faults.plan import FaultPlan
from repro.fastpath.arrays import compile_server, encode_requests, initial_state
from repro.fastpath.kernels import (
    KIND_ALEX,
    KIND_CERN,
    KIND_EXPIRES,
    KIND_INVALIDATION,
    KIND_LEASED,
    KIND_POLL,
    KIND_TTL,
    MetricsBatch,
    run_kernel,
)
from repro.obs import clock as obs_clock
from repro.obs import profile as obs_profile
from repro.obs import registry as obs_metrics
from repro.obs import trace as obs_trace

#: Environment variable carrying the engine selection into workers.
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: The two engine names ``--engine`` accepts.
FAST = "fast"
REFERENCE = "reference"
ENGINES = (FAST, REFERENCE)

_engine_override: Optional[str] = None


class UnsupportedFastPathError(ValueError):
    """Raised by :func:`fast_simulate` for configurations outside the
    compiled subset (callers normally pre-check via
    :func:`unsupported_reason` instead)."""


def _validated(engine: str) -> str:
    name = engine.strip().lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    return name


def set_engine(engine: Optional[str]) -> Optional[str]:
    """Set the process-wide engine override; returns the previous one.

    Also mirrors the setting into ``REPRO_ENGINE`` so worker processes —
    forked *or* spawned — agree with the parent.  ``None`` clears the
    override (and the environment variable), restoring env/default
    resolution.

    Raises:
        ValueError: for an unknown engine name.
    """
    global _engine_override
    previous = _engine_override
    if engine is None:
        _engine_override = None
        os.environ.pop(ENGINE_ENV_VAR, None)
    else:
        _engine_override = _validated(engine)
        os.environ[ENGINE_ENV_VAR] = _engine_override
    return previous


def resolve_engine(engine: Optional[str] = None) -> str:
    """The effective engine name under the resolution precedence.

    Args:
        engine: an explicit request (e.g. a ``--engine`` flag value);
            wins when not None.

    Raises:
        ValueError: for an unknown engine name, whether explicit or via
            the ``REPRO_ENGINE`` environment variable.
    """
    if engine is not None:
        return _validated(engine)
    if _engine_override is not None:
        return _engine_override
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        return _validated(env)
    return FAST


def compile_protocol(
    protocol: ConsistencyProtocol,
) -> Optional[tuple[int, float, float, float, bool]]:
    """Compile a protocol instance to ``(kind, p0, p1, p2, has_p2)``.

    Only *exact* concrete classes compile — a subclass may override
    ``is_fresh``, and the kernel's byte-identity contract covers the
    known formulas only.  Returns None for anything else (including the
    eager invalidation variants, whose prefetch pushes the kernel does
    not model).
    """
    cls = type(protocol)
    if cls is TTLProtocol:
        assert isinstance(protocol, TTLProtocol)
        return (KIND_TTL, protocol.ttl, 0.0, 0.0, False)
    if cls is ExpiresTTLProtocol:
        assert isinstance(protocol, ExpiresTTLProtocol)
        return (KIND_EXPIRES, protocol.ttl, 0.0, 0.0, False)
    if cls is AlexProtocol:
        assert isinstance(protocol, AlexProtocol)
        return (KIND_ALEX, protocol.threshold, 0.0, 0.0, False)
    if cls is PollEveryRequestProtocol:
        return (KIND_POLL, 0.0, 0.0, 0.0, False)
    if cls is InvalidationProtocol:
        assert isinstance(protocol, InvalidationProtocol)
        if protocol.eager:
            return None
        return (KIND_INVALIDATION, 0.0, 0.0, 0.0, False)
    if cls is LeasedInvalidationProtocol:
        assert isinstance(protocol, LeasedInvalidationProtocol)
        if protocol.eager:
            return None
        return (KIND_LEASED, protocol.lease, 0.0, 0.0, False)
    if cls is CERNPolicyProtocol:
        assert isinstance(protocol, CERNPolicyProtocol)
        max_ttl = protocol.max_ttl
        return (
            KIND_CERN,
            protocol.lm_fraction,
            protocol.default_ttl,
            max_ttl if max_ttl is not None else 0.0,
            max_ttl is not None,
        )
    return None


def unsupported_reason(
    protocol: ConsistencyProtocol,
    *,
    cache: Optional[Cache] = None,
    faults: Optional[FaultPlan] = None,
) -> Optional[str]:
    """Why the fast path cannot run this configuration (None = it can).

    This is the fallback predicate :func:`engine_simulate` consults; the
    strings are stable enough to show in diagnostics and tests.
    """
    if cache is not None:
        return "caller-supplied cache (bounded capacity / pre-seeded state)"
    if faults is not None:
        return "fault plan installed (compiled delivery schedules)"
    if compile_protocol(protocol) is None:
        if getattr(protocol, "eager", False):
            return (
                f"eager invalidation ({type(protocol).__name__}): "
                "prefetch pushes are not compiled"
            )
        return (
            f"protocol {type(protocol).__name__} has no compiled kernel "
            "(adaptive state or unknown subclass)"
        )
    return None


def fast_simulate(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    preload: bool = True,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    observer: Optional[EventObserver] = None,
) -> SimulationResult:
    """Run one simulation on the fast path (no fallback).

    Byte-identical to :func:`repro.core.simulator.simulate` for every
    supported configuration — counters, ledger cells, the observer event
    stream, error messages, and float accumulation order included (the
    contract in docs/FASTPATH.md).

    Raises:
        UnsupportedFastPathError: for configurations outside the
            compiled subset (see :func:`unsupported_reason`).
    """
    compiled_protocol = compile_protocol(protocol)
    if compiled_protocol is None:
        reason = unsupported_reason(protocol)
        raise UnsupportedFastPathError(
            f"fast path cannot run this configuration: {reason}"
        )
    started = obs_clock.monotonic()
    # Observability without fallback: an active sink gets the observer
    # event stream through a recording tee (the stream is contract-
    # pinned identical to the reference's), and an active registry gets
    # the run's metrics as one batched flush through the exact merge
    # path — byte-equal totals, enforced by ``contract.diff_metrics``.
    sink = obs_trace.active()
    registry = obs_metrics.active()
    kernel_observer = (
        obs_trace.sink_observer(sink, observer) if sink is not None
        else observer
    )
    batch = MetricsBatch() if registry is not None else None
    with obs_profile.phase("fastpath.compile"):
        compiled = compile_server(server)
        req_times, req_objs = encode_requests(compiled, requests, start_time)
    kind, p0, p1, p2, has_p2 = compiled_protocol
    with obs_profile.phase("fastpath.simulate"):
        state = initial_state(compiled, float(start_time), preload)
        result = run_kernel(
            compiled,
            state,
            req_times,
            req_objs,
            kind=kind,
            p0=p0,
            p1=p1,
            p2=p2,
            has_p2=has_p2,
            base_mode=mode is SimulatorMode.BASE,
            costs=costs,
            charge_per_modification=bool(charge_per_modification),
            preload=preload,
            start_time=float(start_time),
            end_time=end_time,
            protocol_name=protocol.name,
            mode_value=mode.value,
            observer=kernel_observer,
            batch=batch,
        )
    if batch is not None and registry is not None:
        batch.flush(registry)
        obs_metrics.emit("fastpath.metrics_flush")
    obs_metrics.emit("engine.fastpath_runs")
    obs_trace.span(
        "fastpath.run",
        obs_clock.monotonic() - started,
        protocol=result.protocol_name,
        requests=result.counters.requests,
    )
    return result


def engine_simulate(
    server: OriginServer,
    protocol: ConsistencyProtocol,
    requests: Iterable[tuple[float, str]],
    mode: SimulatorMode = SimulatorMode.OPTIMIZED,
    *,
    costs: MessageCosts = DEFAULT_COSTS,
    cache: Optional[Cache] = None,
    preload: bool = True,
    start_time: float = 0.0,
    end_time: Optional[float] = None,
    charge_per_modification: bool = True,
    faults: Optional[FaultPlan] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Engine-dispatching drop-in for ``simulate``.

    Runs the fast path when the resolved engine is ``fast`` and the
    configuration is supported, falling back to the reference simulator
    otherwise (and always under ``--engine reference``).  Output is
    byte-identical either way; only throughput differs.
    """
    if resolve_engine(engine) == FAST:
        reason = unsupported_reason(protocol, cache=cache, faults=faults)
        if reason is None:
            return fast_simulate(
                server,
                protocol,
                requests,
                mode,
                costs=costs,
                preload=preload,
                start_time=start_time,
                end_time=end_time,
                charge_per_modification=charge_per_modification,
            )
        obs_metrics.emit("engine.fastpath_fallbacks")
    return simulate(
        server,
        protocol,
        requests,
        mode,
        costs=costs,
        cache=cache,
        preload=preload,
        start_time=start_time,
        end_time=end_time,
        charge_per_modification=charge_per_modification,
        faults=faults,
    )
