"""RFC 1123 (HTTP-date) formatting and parsing.

HTTP/1.0 headers such as ``Expires``, ``Last-Modified`` and
``If-Modified-Since`` carry timestamps in the RFC 1123 format, e.g.
``Sun, 06 Nov 1994 08:49:37 GMT``.  The simulator works in simulation
seconds, but the trace reader/writer and the HTTP message models round-trip
real header strings, so the conversion lives here.

Simulation time zero maps to an arbitrary but fixed real-world epoch
(:data:`SIM_EPOCH_UNIX`) chosen inside the period the paper studied
(1995).  Using a fixed epoch keeps synthetic traces byte-for-byte
reproducible.
"""

from __future__ import annotations

import calendar
import math
import time

#: Unix timestamp corresponding to simulation time 0.0.
#: Wed, 01 Mar 1995 00:00:00 GMT — inside the paper's measurement window.
SIM_EPOCH_UNIX: int = 794_016_000

_WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_INDEX = {name: i + 1 for i, name in enumerate(_MONTHS)}


def sim_to_unix(t: float) -> int:
    """Map a simulation timestamp to a Unix timestamp (whole seconds).

    Fractional times round *down* on the number line (``math.floor``),
    not toward zero: a pre-epoch ``t`` of ``-0.5`` lands in the second
    that contains it (``-1``), exactly like ``+0.5`` lands in ``0``.
    Truncation (``int(t)``) would collapse ``-0.5`` and ``+0.5`` into
    the same second and break ``parse_http_date(format_http_date(t))``
    round-trips for pre-epoch Last-Modified stamps.
    """
    return SIM_EPOCH_UNIX + math.floor(t)


def unix_to_sim(ts: int | float) -> float:
    """Map a Unix timestamp back to a simulation timestamp."""
    return float(ts) - SIM_EPOCH_UNIX


def format_http_date(t: float) -> str:
    """Format simulation time ``t`` as an RFC 1123 HTTP-date string."""
    st = time.gmtime(sim_to_unix(t))
    weekday = _WEEKDAYS[st.tm_wday]
    month = _MONTHS[st.tm_mon - 1]
    return (
        f"{weekday}, {st.tm_mday:02d} {month} {st.tm_year:04d} "
        f"{st.tm_hour:02d}:{st.tm_min:02d}:{st.tm_sec:02d} GMT"
    )


class HTTPDateError(ValueError):
    """Raised when an HTTP-date string cannot be parsed."""


def parse_http_date(value: str) -> float:
    """Parse an RFC 1123 HTTP-date string into simulation time.

    Only the RFC 1123 fixed-length format is accepted (the format this
    library emits).  The obsolete RFC 850 and asctime formats that HTTP/1.0
    servers tolerated are intentionally not supported; synthetic traces
    never contain them.

    Raises:
        HTTPDateError: if ``value`` is not a well-formed RFC 1123 date.
    """
    parts = value.strip().split()
    if len(parts) != 6 or parts[5] != "GMT":
        raise HTTPDateError(f"not an RFC 1123 HTTP-date: {value!r}")
    weekday, day_s, month_s, year_s, clock, _zone = parts
    if weekday.rstrip(",") not in _WEEKDAYS or not weekday.endswith(","):
        raise HTTPDateError(f"bad weekday in HTTP-date: {value!r}")
    if month_s not in _MONTH_INDEX:
        raise HTTPDateError(f"bad month in HTTP-date: {value!r}")
    try:
        day = int(day_s)
        year = int(year_s)
        hh_s, mm_s, ss_s = clock.split(":")
        hh, mm, ss = int(hh_s), int(mm_s), int(ss_s)
    except ValueError as exc:
        raise HTTPDateError(f"bad numeric field in HTTP-date: {value!r}") from exc
    if not (1 <= day <= 31 and 0 <= hh < 24 and 0 <= mm < 60 and 0 <= ss < 60):
        raise HTTPDateError(f"field out of range in HTTP-date: {value!r}")
    month = _MONTH_INDEX[month_s]
    # calendar.timegm silently *normalizes* impossible days (31 Feb
    # becomes 3 Mar), so a malformed header would parse to a wrong
    # timestamp instead of failing; validate against the real month
    # length first.
    try:
        _, month_days = calendar.monthrange(year, month)
    except ValueError as exc:
        raise HTTPDateError(f"invalid calendar date: {value!r}") from exc
    if day > month_days:
        raise HTTPDateError(
            f"impossible calendar day in HTTP-date: {value!r} "
            f"({month_s} {year} has {month_days} days)"
        )
    try:
        unix = calendar.timegm((year, month, day, hh, mm, ss, 0, 0, 0))
    except (ValueError, OverflowError) as exc:
        raise HTTPDateError(f"invalid calendar date: {value!r}") from exc
    # RFC 1123 dates are self-describing: the weekday token must match
    # the date.  Accepting a mismatch would parse a header that cannot
    # round-trip byte-identically through format_http_date.
    actual_weekday = _WEEKDAYS[calendar.weekday(year, month, day)]
    if weekday.rstrip(",") != actual_weekday:
        raise HTTPDateError(
            f"weekday does not match date in HTTP-date: {value!r} "
            f"({day:02d} {month_s} {year} is a {actual_weekday})"
        )
    return unix_to_sim(unix)
