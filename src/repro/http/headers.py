"""HTTP/1.0 header modelling for the consistency protocols.

The three consistency mechanisms the paper studies map onto three HTTP/1.0
header fields:

* ``Expires`` — carries the server-assigned time-to-live (the TTL
  protocol and the first rule of the CERN httpd policy).
* ``Last-Modified`` — the timestamp the Alex protocol uses as the object's
  age reference, and the second rule of the CERN policy.
* ``If-Modified-Since`` — the conditional-retrieval request header used by
  the *optimized* simulator ("send this file if it has changed since a
  specific date").

This module provides a small case-insensitive header container plus typed
accessors for those fields.  It exists so that the simulator's abstract
"43-byte control message" can be backed by a concrete, serializable HTTP
message when traces are written to disk.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Optional

from repro.http.datefmt import HTTPDateError, format_http_date, parse_http_date

EXPIRES = "Expires"
LAST_MODIFIED = "Last-Modified"
IF_MODIFIED_SINCE = "If-Modified-Since"
CONTENT_LENGTH = "Content-Length"
CONTENT_TYPE = "Content-Type"


class Headers:
    """A case-insensitive, order-preserving HTTP header collection.

    Header field names are case-insensitive per RFC 1945; the original
    casing of the first insertion is preserved for serialization.
    """

    def __init__(self, items: Optional[Mapping[str, str]] = None) -> None:
        self._fields: dict[str, tuple[str, str]] = {}
        if items:
            for name, value in items.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        """Set header ``name`` to ``value``, replacing any existing value."""
        key = name.lower()
        existing = self._fields.get(key)
        canonical = existing[0] if existing else name
        self._fields[key] = (canonical, str(value))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of header ``name`` or ``default``."""
        entry = self._fields.get(name.lower())
        return entry[1] if entry else default

    def remove(self, name: str) -> None:
        """Delete header ``name`` if present."""
        self._fields.pop(name.lower(), None)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._fields

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        # Field names compare case-insensitively; original casing is a
        # serialization detail, not part of the header's identity.
        if not isinstance(other, Headers):
            return NotImplemented
        return {k: v for k, (_, v) in self._fields.items()} == {
            k: v for k, (_, v) in other._fields.items()
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {v}" for n, v in self)
        return f"Headers({{{inner}}})"

    # -- typed accessors for the consistency-relevant fields ---------------

    def set_date(self, name: str, t: float) -> None:
        """Set header ``name`` to simulation time ``t`` as an HTTP-date."""
        self.set(name, format_http_date(t))

    def get_date(self, name: str) -> Optional[float]:
        """Parse header ``name`` as an HTTP-date into simulation time.

        Returns ``None`` when the header is absent.

        Raises:
            HTTPDateError: when the header is present but malformed.
        """
        raw = self.get(name)
        if raw is None:
            return None
        return parse_http_date(raw)

    @property
    def expires(self) -> Optional[float]:
        """The ``Expires`` timestamp, in simulation time, if present."""
        return self.get_date(EXPIRES)

    @property
    def last_modified(self) -> Optional[float]:
        """The ``Last-Modified`` timestamp, in simulation time, if present."""
        return self.get_date(LAST_MODIFIED)

    @property
    def if_modified_since(self) -> Optional[float]:
        """The ``If-Modified-Since`` timestamp, in simulation time."""
        return self.get_date(IF_MODIFIED_SINCE)

    @property
    def content_length(self) -> Optional[int]:
        """The ``Content-Length`` value as an int, if present and valid."""
        raw = self.get(CONTENT_LENGTH)
        if raw is None:
            return None
        try:
            n = int(raw)
        except ValueError as exc:
            raise HTTPDateError(f"bad Content-Length: {raw!r}") from exc
        if n < 0:
            raise HTTPDateError(f"negative Content-Length: {raw!r}")
        return n

    def wire_size(self) -> int:
        """On-the-wire size of these headers in bytes (``Name: value\\r\\n``)."""
        return sum(len(name) + 2 + len(value) + 2 for name, value in self)
