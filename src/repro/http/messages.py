"""Concrete HTTP/1.0 message models behind the simulator's cost accounting.

The paper's cost model is deliberately coarse: "each message averages 43
bytes and each file averages several thousand bytes".  The simulator
therefore charges a flat per-message byte cost (see
:mod:`repro.core.costs`).  This module provides the concrete message
objects that cost model abstracts: plain GETs, conditional GETs
(If-Modified-Since), 200/304 responses, and the out-of-band invalidation
notice used by the invalidation protocol.

These objects are used by the trace tooling and the examples to render
realistic exchanges, and by tests to sanity-check that the 43-byte flat
cost is the right order of magnitude for real HTTP/1.0 control messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.http.headers import (
    CONTENT_LENGTH,
    IF_MODIFIED_SINCE,
    LAST_MODIFIED,
    Headers,
)

#: Status line + reason phrases used by HTTP/1.0 servers of the era.
_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


@dataclass
class Request:
    """An HTTP/1.0 request.

    A conditional GET is an ordinary GET carrying ``If-Modified-Since`` —
    the paper's combined "send this file if it has changed since a specific
    date" message that the optimized simulator relies on.
    """

    method: str
    path: str
    headers: Headers = field(default_factory=Headers)

    @property
    def is_conditional(self) -> bool:
        """True when this request carries ``If-Modified-Since``."""
        return IF_MODIFIED_SINCE in self.headers

    def request_line(self) -> str:
        """The HTTP/1.0 request line, without the trailing CRLF."""
        return f"{self.method} {self.path} HTTP/1.0"

    def wire_size(self) -> int:
        """Bytes on the wire: request line + headers + blank line."""
        return len(self.request_line()) + 2 + self.headers.wire_size() + 2

    def serialize(self) -> str:
        """Render the full request text."""
        lines = [self.request_line()]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        return "\r\n".join(lines) + "\r\n\r\n"


@dataclass
class Response:
    """An HTTP/1.0 response; ``body_size`` stands in for the entity body."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body_size: int = 0

    def __post_init__(self) -> None:
        if self.body_size < 0:
            raise ValueError(f"negative body_size: {self.body_size}")
        if self.status == 304 and self.body_size:
            raise ValueError("304 Not Modified must not carry a body")

    def status_line(self) -> str:
        """The HTTP/1.0 status line, without the trailing CRLF."""
        reason = _REASONS.get(self.status, "Unknown")
        return f"HTTP/1.0 {self.status} {reason}"

    def header_size(self) -> int:
        """Bytes of status line + headers + blank line (excluding body)."""
        return len(self.status_line()) + 2 + self.headers.wire_size() + 2

    def wire_size(self) -> int:
        """Total bytes on the wire including the entity body."""
        return self.header_size() + self.body_size

    def serialize(self, body: Optional[str] = None) -> str:
        """Render the full response text, entity body included.

        The model carries only ``body_size``, not content; by default the
        body is rendered as that many filler bytes (the live origin
        serves real content this way — the consistency protocols are
        metadata-driven and never look at bodies).  Control endpoints
        pass an explicit ``body`` instead.

        Raises:
            ValueError: when an explicit ``body`` disagrees with
                ``body_size``.
        """
        if body is None:
            body = "x" * self.body_size
        elif len(body) != self.body_size:
            raise ValueError(
                f"body length {len(body)} != body_size {self.body_size}"
            )
        lines = [self.status_line()]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        return "\r\n".join(lines) + "\r\n\r\n" + body


@dataclass
class InvalidationNotice:
    """The server→cache callback message of the invalidation protocol.

    HTTP/1.0 has no such message; the paper's invalidation protocol assumes
    server modifications à la AFS callbacks.  We model it as a one-line
    datagram naming the object, which lands near the paper's 43-byte
    average control-message size.
    """

    path: str

    def wire_size(self) -> int:
        """Bytes on the wire for the notice."""
        return len(self.serialize())

    def serialize(self) -> str:
        """Render the notice text."""
        return f"INVALIDATE {self.path} CACHE/1.0\r\n\r\n"


class HTTPParseError(ValueError):
    """Raised when a serialized HTTP message cannot be parsed."""


def parse_request(text: str) -> Request:
    """Parse a serialized HTTP/1.0 request back into a :class:`Request`.

    Accepts exactly what :meth:`Request.serialize` emits (request line,
    ``Name: value`` headers, blank-line terminator), with either CRLF or
    bare-LF line endings — real 1995 clients produced both.

    Raises:
        HTTPParseError: for malformed request lines or header fields.
    """
    normalized = text.replace("\r\n", "\n")
    head, _, _body = normalized.partition("\n\n")
    lines = head.split("\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HTTPParseError(f"bad request line: {lines[0]!r}")
    method, path, _version = parts
    if not path.startswith("/"):
        raise HTTPParseError(f"bad request path: {path!r}")
    request = Request(method, path)
    for lineno, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HTTPParseError(f"bad header on line {lineno}: {line!r}")
        request.headers.set(name.strip(), value.strip())
    return request


def parse_response(text: str) -> Response:
    """Parse a serialized HTTP/1.0 response back into a :class:`Response`.

    Accepts what :meth:`Response.serialize` emits (status line,
    ``Name: value`` headers, blank line, entity body), with either CRLF
    or bare-LF line endings.  The body's *length* becomes ``body_size``;
    content is discarded — the models are metadata-only.

    Raises:
        HTTPParseError: for malformed status lines or header fields.
    """
    normalized = text.replace("\r\n", "\n")
    head, sep, body = normalized.partition("\n\n")
    if not sep:
        raise HTTPParseError("response lacks a blank-line terminator")
    lines = head.split("\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HTTPParseError(f"bad status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise HTTPParseError(f"bad status code: {lines[0]!r}") from exc
    try:
        response = Response(status, body_size=len(body))
    except ValueError as exc:  # e.g. a 304 carrying a body
        raise HTTPParseError(str(exc)) from exc
    for lineno, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        name, header_sep, value = line.partition(":")
        if not header_sep or not name.strip():
            raise HTTPParseError(f"bad header on line {lineno}: {line!r}")
        response.headers.set(name.strip(), value.strip())
    return response


def make_get(path: str) -> Request:
    """Build a plain (unconditional) GET request."""
    return Request("GET", path)


def make_conditional_get(path: str, since: float) -> Request:
    """Build a GET carrying ``If-Modified-Since: <since>``."""
    req = Request("GET", path)
    req.headers.set_date(IF_MODIFIED_SINCE, since)
    return req


def make_ok(body_size: int, last_modified: Optional[float] = None) -> Response:
    """Build a 200 response of ``body_size`` bytes."""
    resp = Response(200, body_size=body_size)
    resp.headers.set(CONTENT_LENGTH, str(body_size))
    if last_modified is not None:
        resp.headers.set_date(LAST_MODIFIED, last_modified)
    return resp


def make_not_modified() -> Response:
    """Build a 304 Not Modified response."""
    return Response(304)
