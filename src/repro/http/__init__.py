"""Minimal HTTP/1.0 modelling substrate.

Provides RFC 1123 date handling, case-insensitive headers with typed
accessors for the consistency-relevant fields (``Expires``,
``Last-Modified``, ``If-Modified-Since``), and concrete request/response/
invalidation message objects with on-the-wire byte sizes that ground the
simulator's 43-byte control-message cost model.
"""

from repro.http.datefmt import (
    HTTPDateError,
    format_http_date,
    parse_http_date,
    sim_to_unix,
    unix_to_sim,
)
from repro.http.headers import (
    EXPIRES,
    IF_MODIFIED_SINCE,
    LAST_MODIFIED,
    Headers,
)
from repro.http.messages import (
    HTTPParseError,
    InvalidationNotice,
    Request,
    Response,
    make_conditional_get,
    make_get,
    make_not_modified,
    make_ok,
    parse_request,
    parse_response,
)

__all__ = [
    "EXPIRES",
    "HTTPDateError",
    "HTTPParseError",
    "Headers",
    "IF_MODIFIED_SINCE",
    "InvalidationNotice",
    "LAST_MODIFIED",
    "Request",
    "Response",
    "format_http_date",
    "make_conditional_get",
    "make_get",
    "make_not_modified",
    "make_ok",
    "parse_http_date",
    "parse_request",
    "parse_response",
    "sim_to_unix",
    "unix_to_sim",
]
