"""The ``repro lint`` / ``repro-lint`` / ``python -m repro.lint`` CLI.

Diagnostics print as ``file:line:col: CODE message`` (one per line) by
default; ``--format json`` emits the stable ``repro.lint/1`` document
(see :mod:`repro.lint.formats`) and ``--format github`` emits GitHub
Actions ``::error``/``::warning`` annotation commands.  Whatever the
format, the exit status is the contract CI keys on:

* ``0`` — no new ERROR findings (warnings alone do not fail unless
  ``--strict``);
* ``1`` — at least one reportable error (or warning under ``--strict``);
* ``2`` — usage problems: bad paths, unparseable sources, malformed
  baseline, unknown ``--select`` code.

``--update-baseline`` rewrites the baseline from the current findings
and exits 0 — the mechanism for grandfathering pre-existing debt while
new findings stay fatal (see docs/DEVELOPING.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    write_baseline,
)
from repro.lint.engine import run_lint
from repro.lint.formats import render_github, render_json
from repro.lint.project import LintError
from repro.lint.registry import iter_registry


def make_parser() -> argparse.ArgumentParser:
    """Build the lint CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the cache-consistency "
            "reproduction (determinism, unit discipline, protocol "
            "registration, oracle exhaustiveness, hygiene)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[Path("src")],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated checker codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated checker codes to skip",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, metavar="FILE",
        help=f"baseline file for grandfathered findings "
             f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors for the exit status",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        dest="format",
        help=(
            "output format: text (default), json (stable repro.lint/1 "
            "document), or github (Actions ::error/::warning annotations)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the diagnostics, no summary line",
    )
    parser.add_argument(
        "--list-codes", action="store_true",
        help="list the registered checker codes and exit",
    )
    return parser


def _codes(raw: Optional[str]) -> Optional[list[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit status."""
    args = make_parser().parse_args(argv)

    if args.list_codes:
        for code, cls in iter_registry():
            print(f"{code}  {cls.summary}")
        return 0

    baseline_path: Optional[Path] = None
    if not args.no_baseline and not args.update_baseline:
        baseline_path = args.baseline

    try:
        result = run_lint(
            args.paths,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            baseline_path=baseline_path,
        )
    except (LintError, BaselineError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro-lint: {message}", file=sys.stderr)
        return 2

    if args.update_baseline:
        count = write_baseline(args.baseline, result.diagnostics)
        print(
            f"repro-lint: wrote {count} finding(s) to {args.baseline}"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    elif args.format == "github":
        for line in render_github(result):
            print(line)
    else:
        for diagnostic in result.diagnostics:
            print(diagnostic.render())

    failing = len(result.errors) + (
        len(result.warnings) if args.strict else 0
    )
    if not args.quiet and args.format != "json":
        summary = (
            f"repro-lint: {result.files_checked} file(s), "
            f"{len(result.errors)} error(s), "
            f"{len(result.warnings)} warning(s)"
        )
        if result.suppressed:
            summary += f", {len(result.suppressed)} noqa-suppressed"
        if result.baselined:
            summary += f", {len(result.baselined)} baselined"
        print(summary)
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
