"""Baseline files: grandfathered findings that do not fail the run.

A baseline is a committed JSON file mapping finding fingerprints (see
:attr:`repro.lint.diagnostics.Diagnostic.fingerprint`) to a snapshot of
the finding, so reviewers can read *what* was grandfathered without
re-running the linter.  The workflow:

1. ``repro lint src --update-baseline`` writes every current finding to
   the baseline and exits 0.
2. Subsequent runs report only findings **not** in the baseline; the
   committed tree stays green while the debt is paid down.
3. A fixed finding vanishes from the next ``--update-baseline`` pass —
   baselines only ever shrink unless someone deliberately regenerates
   one over new debt (which the diff makes obvious).

Fingerprints hash the finding's code, message, and offending source
line — never the path or line number — so unrelated edits that shift
code, and even file renames, do not resurrect grandfathered findings.
The committed repository keeps an **empty** baseline: every checker
passes on the tree as committed, and the file exists only so the
mechanism stays exercised and documented.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.lint.diagnostics import Diagnostic

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = Path(".repro-lint-baseline.json")

_VERSION = 1


class BaselineError(Exception):
    """The baseline file exists but cannot be parsed."""


def load_baseline(path: Path) -> dict[str, dict[str, object]]:
    """Read a baseline file; a missing file is an empty baseline.

    Raises:
        BaselineError: on malformed JSON or an unsupported version.
    """
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format "
            f"(expected version {_VERSION})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {path}: 'entries' must be an object")
    return entries


def write_baseline(path: Path, diagnostics: Iterable[Diagnostic]) -> int:
    """Write ``diagnostics`` as the new baseline; returns the entry count."""
    entries = {
        d.fingerprint: {
            "path": d.path,
            "code": d.code,
            "message": d.message,
            "context": d.context,
        }
        for d in diagnostics
    }
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def split_baselined(
    diagnostics: Iterable[Diagnostic], entries: dict[str, dict[str, object]]
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Partition diagnostics into (new, grandfathered) against a baseline."""
    fresh: list[Diagnostic] = []
    grandfathered: list[Diagnostic] = []
    for d in diagnostics:
        if d.fingerprint in entries:
            grandfathered.append(d)
        else:
            fresh.append(d)
    return fresh, grandfathered
