"""Machine-readable renderings of a :class:`~repro.lint.engine.LintResult`.

Two formats besides the default text rendering:

* ``json`` — the stable ``repro.lint/1`` document (schema below), for
  editors and any tooling that wants findings without scraping text;
* ``github`` — GitHub Actions `workflow commands
  <https://docs.github.com/actions/reference/workflow-commands>`_
  (``::error file=...,line=...::``), so CI findings surface as inline
  PR annotations.

JSON schema ``repro.lint/1`` (documented contract — additions may
append fields, never rename or remove them)::

    {
      "schema": "repro.lint/1",
      "files_checked": <int>,
      "diagnostics": [
        {
          "path": <str>, "line": <int>, "col": <int>,
          "code": "RPRxxx", "severity": "error" | "warning",
          "message": <str>,
          "fingerprint": <16-hex str>,     # baseline identity
          "context": <str>,                # stripped offending line
          "because": [                     # cross-file explanation chain
            {"path": <str>, "line": <int>, "note": <str>}, ...
          ]
        }, ...
      ],
      "summary": {
        "errors": <int>, "warnings": <int>,
        "suppressed": <int>, "baselined": <int>
      }
    }
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintResult

JSON_SCHEMA = "repro.lint/1"


def _diagnostic_dict(d: Diagnostic) -> dict:
    return {
        "path": d.path,
        "line": d.line,
        "col": d.col,
        "code": d.code,
        "severity": d.severity.value,
        "message": d.message,
        "fingerprint": d.fingerprint,
        "context": d.context,
        "because": [
            {"path": b.path, "line": b.line, "note": b.note}
            for b in d.because
        ],
    }


def render_json(result: LintResult) -> str:
    """The ``repro.lint/1`` document for one lint run."""
    document = {
        "schema": JSON_SCHEMA,
        "files_checked": result.files_checked,
        "diagnostics": [_diagnostic_dict(d) for d in result.diagnostics],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)


def escape_property(value: str) -> str:
    """Escape a workflow-command *property* value (file=, title=)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def escape_message(value: str) -> str:
    """Escape a workflow-command message (newlines render in the UI)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def github_command(
    level: str, path: str, line: int, col: int, title: str, message: str
) -> str:
    """One ``::level file=...`` annotation line."""
    return (
        f"::{level} file={escape_property(path)},line={line},col={col},"
        f"title={escape_property(title)}::{escape_message(message)}"
    )


def render_github(result: LintResult) -> list[str]:
    """Annotation lines for every reportable diagnostic."""
    lines = []
    for d in result.diagnostics:
        level = "error" if d.severity is Severity.ERROR else "warning"
        message = d.message
        if d.because:
            message += "\n" + "\n".join(b.render() for b in d.because)
        lines.append(
            github_command(level, d.path, d.line, d.col, d.code, message)
        )
    return lines
