"""RPR001 — determinism of the simulation core.

The sweep engine's contract (docs/PERFORMANCE.md) is *bit-identical
output for every worker count*, and the PR-2 oracle replays runs
assuming they are reproducible from their seeds.  Both collapse if any
code inside the simulation core draws entropy from outside the seed
chain.  The fault layer (:mod:`repro.faults`) is held to the same bar:
a fault schedule is part of the experiment configuration, so loss draws
and delivery times must be pure functions of the plan's seed.  Inside
:data:`SCOPED_PACKAGES` this checker flags:

* the stdlib global-state RNG: any ``random.<fn>()`` call or
  ``from random import ...`` (per-process hidden state; forked workers
  would diverge from the serial path);
* unseeded constructions: ``numpy.random.default_rng()`` /
  ``random.Random()`` with no arguments, and the legacy global numpy
  API (``np.random.rand`` etc., including ``np.random.seed`` — global
  state again).  Seeds must flow in explicitly, derived through
  ``repro.runtime.derive_seed``;
* wall-clock reads: ``time.time``/``time.time_ns``/``time.monotonic``/
  ``time.perf_counter``, ``datetime.now``/``utcnow``/``today``;
* ambient entropy: ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``,
  anything from ``secrets``;
* iteration over sets (``for x in {...}`` / ``for x in set(...)`` and
  set comprehensions' use as iteration sources): set order varies with
  insertion history and hash randomization, so it must be sorted before
  it can drive simulation behaviour.

Instrumentation that *measures* wall time lives outside these packages
(``repro.runtime.stats`` values are produced by callers such as the
experiment registry) — where a scoped module legitimately needs a
timestamp it must take one as an argument.  The observability layer
(:mod:`repro.obs`) is scoped too: its metric/trace state must replay
identically across worker counts, so its single sanctioned wall-clock
entry point (``repro.obs.clock``) carries an explicit per-line noqa and
everything else reads time through it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register

#: Packages whose modules must be deterministic given their seeds.
SCOPED_PACKAGES = ("repro.core", "repro.fastpath", "repro.workload",
                   "repro.verify", "repro.faults", "repro.obs",
                   "repro.live")

#: ``module attr`` call patterns that read wall clocks or ambient entropy.
_FORBIDDEN_CALLS: dict[tuple[str, str], str] = {
    ("time", "time"): "wall-clock read",
    ("time", "time_ns"): "wall-clock read",
    ("time", "monotonic"): "wall-clock read",
    ("time", "monotonic_ns"): "wall-clock read",
    ("time", "perf_counter"): "wall-clock read",
    ("time", "perf_counter_ns"): "wall-clock read",
    ("datetime", "now"): "wall-clock read",
    ("datetime", "utcnow"): "wall-clock read",
    ("datetime", "today"): "wall-clock read",
    ("date", "today"): "wall-clock read",
    ("os", "urandom"): "ambient entropy",
    ("uuid", "uuid1"): "ambient entropy",
    ("uuid", "uuid4"): "ambient entropy",
}

#: Names that, as the *module* part of a dotted call, mean numpy.
_NUMPY_ALIASES = {"numpy", "np"}


def _dotted(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` attribute chains as ``["a", "b", "c"]``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def in_scope(module_name: str) -> bool:
    """True when RPR001 applies to the module."""
    return any(
        module_name == pkg or module_name.startswith(pkg + ".")
        for pkg in SCOPED_PACKAGES
    )


@register
class DeterminismChecker(Checker):
    """RPR001: no unseeded randomness, wall clocks, or set-order iteration
    inside the simulation core."""

    code = "RPR001"
    summary = (
        "simulation core must be deterministic: no global/unseeded RNG, "
        "wall-clock reads, ambient entropy, or set-order iteration "
        f"(scope: {', '.join(SCOPED_PACKAGES)})"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Diagnostic]:
        if not in_scope(module.name):
            return
        yield from self._check_imports(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(module, node.iter)

    # -- rules ---------------------------------------------------------------

    def _check_imports(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in ("random", "secrets"):
                    yield self.diagnostic(
                        module.path, node.lineno, node.col_offset + 1,
                        f"import from the global-state {node.module!r} module; "
                        "derive seeds via repro.runtime.derive_seed and pass "
                        "an explicit numpy Generator instead",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        yield self.diagnostic(
                            module.path, node.lineno, node.col_offset + 1,
                            "the 'secrets' module draws ambient entropy; "
                            "simulation code must be seed-driven",
                        )

    def _check_call(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Diagnostic]:
        parts = _dotted(node.func)
        if parts is None:
            return
        line, col = node.lineno, node.col_offset + 1

        # random.<anything>() — the stdlib global RNG (or an unseeded
        # random.Random()); secrets.<anything>() — ambient entropy.
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random" and node.args:
                return  # random.Random(seed) is explicit and fine
            yield self.diagnostic(
                module.path, line, col,
                f"call to random.{parts[1]}() uses process-global RNG "
                "state; thread a seeded generator through the call chain "
                "(seeds from repro.runtime.derive_seed)",
            )
            return
        if parts[0] == "secrets":
            yield self.diagnostic(
                module.path, line, col,
                f"secrets.{parts[-1]}() draws ambient entropy; simulation "
                "code must be seed-driven",
            )
            return

        # numpy.random.* — unseeded construction or the legacy global API.
        if (
            len(parts) >= 3
            and parts[0] in _NUMPY_ALIASES
            and parts[1] == "random"
        ):
            fn = parts[2]
            if fn in ("default_rng", "Generator", "RandomState"):
                if not node.args and not node.keywords:
                    yield self.diagnostic(
                        module.path, line, col,
                        f"unseeded {'.'.join(parts)}(): pass an explicit "
                        "seed (derive per-task seeds with "
                        "repro.runtime.derive_seed)",
                    )
            else:
                yield self.diagnostic(
                    module.path, line, col,
                    f"legacy global numpy RNG {'.'.join(parts)}(): use a "
                    "seeded numpy.random.default_rng(seed) generator",
                )
            return

        # time.*/datetime.* wall clocks, os.urandom, uuid4 ...
        key = (parts[-2], parts[-1]) if len(parts) >= 2 else None
        if key in _FORBIDDEN_CALLS:
            yield self.diagnostic(
                module.path, line, col,
                f"{_FORBIDDEN_CALLS[key]} via {'.'.join(parts)}(): "
                "simulation time must come from the request stream / "
                "simulated clock, never the host",
            )

    def _check_iteration(
        self, module: ModuleInfo, iter_node: ast.expr
    ) -> Iterator[Diagnostic]:
        offender: Optional[str] = None
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            offender = "a set literal/comprehension"
        elif isinstance(iter_node, ast.Call):
            parts = _dotted(iter_node.func)
            if parts is not None and parts[-1] in ("set", "frozenset"):
                offender = f"{parts[-1]}(...)"
        if offender is not None:
            yield self.diagnostic(
                module.path, iter_node.lineno, iter_node.col_offset + 1,
                f"iteration over {offender}: set order depends on hash "
                "seeding and insertion history; sort it (sorted(...)) "
                "before it can influence simulation output",
            )
