"""RPR004 — observer-event / oracle exhaustiveness.

The PR-2 differential oracle diffs the simulator's observer stream
against the spec model *event-for-event*.  That only proves anything if
the two sides speak the same alphabet: an event kind the simulator emits
but the spec never produces is exactly the "missed handler" bug class
the oracle exists to catch — and it would surface as a confusing stream
diff (or, worse, not at all if the event never fires in the test
workloads).  This checker makes the alphabet agreement a static fact:

* every string literal passed to ``self._observe(...)`` in
  ``repro/core/simulator.py`` must be declared in its ``EVENT_KINDS``
  tuple;
* every declared kind must actually be emitted somewhere in the
  simulator (no dead alphabet entries);
* every declared kind must have a matching emission
  (``self.events.append(("<kind>", ...))``) in ``repro/verify/spec.py``'s
  :class:`SpecModel` — a missing one means the spec cannot replay that
  event;
* and the spec must not emit kinds outside the alphabet.

Everything is resolved from the linted ASTs; if either module is not
part of the run the checker stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register

SIMULATOR_MODULE = "repro.core.simulator"
SPEC_MODULE = "repro.verify.spec"


def _declared_kinds(
    simulator: ModuleInfo,
) -> Optional[tuple[ast.stmt, list[str]]]:
    """The EVENT_KINDS assignment and its string members."""
    for node in simulator.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "EVENT_KINDS":
                if isinstance(value, (ast.Tuple, ast.List)):
                    kinds = [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    return node, kinds
    return None


def _observer_emissions(simulator: ModuleInfo) -> dict[str, ast.Call]:
    """kind -> first ``self._observe("<kind>", ...)`` call site."""
    emissions: dict[str, ast.Call] = {}
    for node in ast.walk(simulator.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "_observe"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            emissions.setdefault(node.args[0].value, node)
    return emissions


def _spec_emissions(spec: ModuleInfo) -> dict[str, ast.Call]:
    """kind -> first ``<events>.append(("<kind>", ...))`` call site."""
    emissions: dict[str, ast.Call] = {}
    for node in ast.walk(spec.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "append"):
            continue
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Tuple):
            continue
        elts = node.args[0].elts
        if elts and isinstance(elts[0], ast.Constant) and isinstance(
            elts[0].value, str
        ):
            emissions.setdefault(elts[0].value, node)
    return emissions


@register
class EventExhaustivenessChecker(Checker):
    """RPR004: EVENT_KINDS, the simulator's observer emissions, and the
    SpecModel's replayed events must be the same alphabet."""

    code = "RPR004"
    summary = (
        "every observer event emitted by core/simulator.py is declared "
        "in EVENT_KINDS and replayed by a SpecModel handler in "
        "verify/spec.py (and vice versa)"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        simulator = project.module(SIMULATOR_MODULE)
        if simulator is None:
            return
        declared = _declared_kinds(simulator)
        emitted = _observer_emissions(simulator)
        if declared is None:
            first = simulator.tree.body[0] if simulator.tree.body else None
            yield self.diagnostic(
                simulator.path,
                first.lineno if first is not None else 1,
                1,
                "simulator module declares no EVENT_KINDS tuple — the "
                "oracle alphabet is undefined",
            )
            return
        declaration, kinds = declared
        yield from self._check_simulator(
            simulator, declaration, kinds, emitted
        )
        spec = project.module(SPEC_MODULE)
        if spec is not None:
            yield from self._check_spec(spec, kinds, set(emitted))

    def _check_simulator(
        self,
        simulator: ModuleInfo,
        declaration: ast.stmt,
        kinds: list[str],
        emitted: dict[str, ast.Call],
    ) -> Iterator[Diagnostic]:
        for kind, call in sorted(emitted.items()):
            if kind not in kinds:
                yield self.diagnostic(
                    simulator.path, call.lineno, call.col_offset + 1,
                    f"observer event {kind!r} is emitted but not declared "
                    "in EVENT_KINDS — the oracle will never compare it",
                )
        for kind in kinds:
            if kind not in emitted:
                yield self.diagnostic(
                    simulator.path,
                    declaration.lineno,
                    declaration.col_offset + 1,
                    f"EVENT_KINDS declares {kind!r} but the simulator "
                    "never emits it (dead alphabet entry)",
                )

    def _check_spec(
        self,
        spec: ModuleInfo,
        kinds: list[str],
        simulator_emits: set[str],
    ) -> Iterator[Diagnostic]:
        replayed = _spec_emissions(spec)
        for kind in kinds:
            if kind in simulator_emits and kind not in replayed:
                first = spec.tree.body[0] if spec.tree.body else None
                yield self.diagnostic(
                    spec.path,
                    first.lineno if first is not None else 1,
                    1,
                    f"SpecModel has no handler replaying observer event "
                    f"{kind!r} — the differential oracle cannot match the "
                    "simulator's stream",
                )
        for kind, call in sorted(replayed.items()):
            if kind not in kinds:
                yield self.diagnostic(
                    spec.path, call.lineno, call.col_offset + 1,
                    f"SpecModel replays event {kind!r} which is not in the "
                    "simulator's EVENT_KINDS alphabet",
                )
