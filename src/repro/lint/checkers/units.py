"""RPR002 — bytes / seconds / count unit discipline.

Table 1 and Figures 4-8 are derived from the bandwidth ledger, which
adds byte quantities; the staleness metrics add seconds; the counters
add events.  Mixing those in additive arithmetic is the accounting bug
class PR 2's oracle catches *at run time* — this checker catches the
obvious spellings of it at analysis time.

Units are inferred from naming conventions:

* identifiers ending ``_bytes`` (or equal to ``bytes``-suffixed ledger
  helpers) carry **bytes**;
* identifiers ending ``_seconds`` / ``_secs`` / ``_s`` carry
  **seconds** (``delay_s`` is this repo's common duration spelling);
* identifiers ending ``_count`` / ``_counts`` carry **count**;

plus a table of well-known quantities from ``repro/core/costs.py`` and
the metrics/clock modules whose names don't self-describe
(``control_message`` and ``body_size`` are bytes, ``duration`` /
``wall_seconds`` / ``stale_age_sum`` / ``ttl`` are seconds, ...).

Flagged forms, whenever *both* operands have known-but-different units:

* additive binary ops: ``a + b``, ``a - b``;
* augmented additive assignment: ``a += b``, ``a -= b``;
* ordered comparisons: ``a < b``, ``a <= b``, ``a > b``, ``a >= b``;
* ``min(...)`` / ``max(...)`` calls whose arguments disagree — picking
  the smaller of a byte count and a duration is as meaningless as
  adding them (and a ``min``/``max`` of agreeing units *carries* that
  unit into the surrounding expression).

Multiplication and division are conversions, not mixing, and are never
flagged; operands of unknown unit are skipped (the checker only fires
when it is *sure* both sides disagree).

RPR009 runs the same mixing rules again with *interprocedural*
inference (units flowing through returns, signatures, and locals, see
:mod:`repro.lint.checkers.unitflow`); this checker stays purely local
so a single file in isolation always gets the same verdicts.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register

#: suffix -> unit.  ``_s`` covers the ``delay_s`` duration convention;
#: string-ish ``*_s`` parser locals (``month_s``) never meet another
#: known unit in additive/ordered positions, so the wider net is safe.
_SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_bytes", "bytes"),
    ("_seconds", "seconds"),
    ("_secs", "seconds"),
    ("_s", "seconds"),
    ("_count", "count"),
    ("_counts", "count"),
)

#: Exact identifier names with a known unit — the §4.1 cost-model
#: quantities from repro/core/costs.py plus ledger/clock companions.
_KNOWN_NAMES: dict[str, str] = {
    "control_message": "bytes",    # MessageCosts.control_message
    "body_size": "bytes",          # costs.py helper argument
    "capacity_bytes": "bytes",
    "used_bytes": "bytes",
    "stale_age_sum": "seconds",    # ConsistencyCounters
    "wall_seconds": "seconds",     # RunStats
    "duration": "seconds",         # SimulationResult
    "ttl": "seconds",              # TTL-family protocols
    "default_ttl": "seconds",
    "max_ttl": "seconds",
}


def unit_of_identifier(identifier: str) -> Optional[str]:
    """The unit an identifier's *name* implies, or None.

    Shared with RPR009, which applies the same naming rules to function
    parameters and then propagates the results interprocedurally.
    """
    lowered = identifier.lower()
    if lowered in _KNOWN_NAMES:
        return _KNOWN_NAMES[lowered]
    for suffix, unit in _SUFFIX_UNITS:
        if lowered.endswith(suffix) and lowered != suffix.lstrip("_"):
            return unit
    return None


def infer_unit(node: ast.expr) -> Optional[str]:
    """The unit an expression carries, or None when unknown.

    Names and attribute accesses are classified by their identifier;
    additive expressions propagate their (agreeing) operands' unit, and
    unary +/- passes the operand's unit through.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return infer_unit(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = infer_unit(node.left)
        right = infer_unit(node.right)
        if left is not None and left == right:
            return left
        return None
    if _is_min_max(node):
        units = {infer_unit(arg) for arg in node.args}
        if len(units) == 1:
            return units.pop()
        return None
    identifier: Optional[str] = None
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    if identifier is None:
        return None
    return unit_of_identifier(identifier)


def _is_min_max(node: ast.expr) -> bool:
    """True for a direct ``min(...)``/``max(...)`` builtin call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("min", "max")
        and not node.keywords
        and len(node.args) >= 2
    )


_ORDERED_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@register
class UnitsChecker(Checker):
    """RPR002: bytes, seconds, and counts must not meet in additive
    arithmetic or ordered comparisons."""

    code = "RPR002"
    summary = (
        "no mixing of *_bytes / *_seconds / *_count quantities in "
        "additive arithmetic or ordered comparisons (units inferred "
        "from naming plus the repro/core/costs.py quantity table)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    module, node, node.left, node.right, "additive arithmetic"
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    module, node, node.target, node.value,
                    "augmented assignment",
                )
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif _is_min_max(node):
                yield from self._check_min_max(module, node)

    def _check_pair(
        self,
        module: ModuleInfo,
        node: ast.stmt | ast.expr,
        left: ast.expr,
        right: ast.expr,
        context: str,
    ) -> Iterator[Diagnostic]:
        left_unit = infer_unit(left)
        right_unit = infer_unit(right)
        if (
            left_unit is not None
            and right_unit is not None
            and left_unit != right_unit
        ):
            yield self.diagnostic(
                module.path, node.lineno, node.col_offset + 1,
                f"{context} mixes {left_unit} with {right_unit} "
                f"({ast.unparse(left)} vs {ast.unparse(right)}); convert "
                "explicitly before combining",
            )

    def _check_min_max(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Diagnostic]:
        assert isinstance(node.func, ast.Name)
        known = [
            (arg, unit)
            for arg in node.args
            if (unit := infer_unit(arg)) is not None
        ]
        for (left, left_unit), (right, right_unit) in zip(known, known[1:]):
            if left_unit != right_unit:
                yield self.diagnostic(
                    module.path, node.lineno, node.col_offset + 1,
                    f"{node.func.id}() mixes {left_unit} with {right_unit} "
                    f"({ast.unparse(left)} vs {ast.unparse(right)}); an "
                    "ordering between different units is meaningless",
                )
                return

    def _check_compare(
        self, module: ModuleInfo, node: ast.Compare
    ) -> Iterator[Diagnostic]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, _ORDERED_CMPS):
                continue
            left_unit = infer_unit(left)
            right_unit = infer_unit(right)
            if (
                left_unit is not None
                and right_unit is not None
                and left_unit != right_unit
            ):
                yield self.diagnostic(
                    module.path, left.lineno, left.col_offset + 1,
                    f"ordered comparison mixes {left_unit} with "
                    f"{right_unit} ({ast.unparse(left)} vs "
                    f"{ast.unparse(right)}); convert explicitly first",
                )
