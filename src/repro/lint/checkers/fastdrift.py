"""RPR008 — fastpath transcription drift.

docs/FASTPATH.md's equivalence contract says the batched kernel's
freshness predicates and CERN expiry stamping are "transcribed
expression-for-expression" from the protocol classes.  PR 6 enforced
that promise with a differential *test*; this checker enforces it
*statically*: it parses both sides, normalizes each into canonical
decision leaves, and diffs them.  A one-token divergence — ``<=``
flipped to ``<``, a dropped ``min(ttl, p2)`` clamp, a renamed field —
is reported at the kernel line that drifted, with a because-chain
pointing at the protocol method it was transcribed from.

**Normalization** is alpha-renaming only — *no* constant folding, no
algebraic rewriting (the contract is transcription, not semantic
equivalence).  Both sides are rewritten over one vocabulary:

* ``NOW`` — the protocol's ``now`` parameter; the kernel's ``t`` (and
  ``start_time`` inside the preload stamp);
* ``FIELD:x`` — ``entry.x`` on the protocol side; the state array
  ``x[i]`` on the kernel side (``sx[i]`` is ``FIELD:server_expires``,
  the kernel local ``lm`` is the just-stored ``FIELD:last_modified``);
* ``PARAM0/1/2`` — the protocol's compiled constructor attributes in
  :mod:`repro.fastpath.dispatch` order; the kernel's ``p0/p1/p2``;
* ``ISSET(x)`` — ``x is not None`` on the protocol side; the kernel's
  presence flags ``has_sx[i]`` / ``has_p2``.

**Flattening** is path-sensitive: each function body becomes a set of
``(branch conditions, result expression)`` leaves with locals
(``age``, ``ttl``) substituted by their canonical definitions, so an
early-return protocol body and the kernel's if/else chain produce
identical leaves when — and only when — they compute the same thing.
``super().is_fresh(...)`` and ``self._derive_expiry(...)`` tail calls
are inlined through the symbol table.  CERN's ``is_fresh`` lazy-init
branch (``entry.expires_at is None``) is pruned under the documented
kernel precondition that every resident entry was stamped at store
time.

**Anchors**: the kernel marks the diffed regions with
``# repro-fastpath-begin/end: freshness`` around the dispatch chain and
``# repro-fastpath: cern-stamp`` above each of the expiry-stamp blocks.
Missing anchors are themselves reported — the contract must stay
machine-checkable.

The checker is silent when ``repro.fastpath.kernels`` is not among the
linted modules (linting a subtree), and reports a finding when the
kernel is present but a counterpart protocol module is not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.lint.diagnostics import Because, Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register
from repro.lint.symbols import FunctionNode, SymbolTable

KERNEL_MODULE = "repro.fastpath.kernels"

#: kernel kind constant -> (protocol module, class, attr -> PARAMi map),
#: mirroring repro.fastpath.dispatch.compile_protocol.
_SPECS: dict[str, tuple[str, str, dict[str, str]]] = {
    "KIND_TTL": (
        "repro.core.protocols.ttl", "TTLProtocol", {"ttl": "PARAM0"}
    ),
    "KIND_EXPIRES": (
        "repro.core.protocols.ttl", "ExpiresTTLProtocol", {"ttl": "PARAM0"}
    ),
    "KIND_ALEX": (
        "repro.core.protocols.alex", "AlexProtocol", {"threshold": "PARAM0"}
    ),
    "KIND_POLL": (
        "repro.core.protocols.polling", "PollEveryRequestProtocol", {}
    ),
    "KIND_INVALIDATION": (
        "repro.core.protocols.invalidation", "InvalidationProtocol", {}
    ),
    "KIND_LEASED": (
        "repro.core.protocols.invalidation", "LeasedInvalidationProtocol",
        {"lease": "PARAM0"},
    ),
    "KIND_CERN": (
        "repro.core.protocols.cern", "CERNPolicyProtocol",
        {"lm_fraction": "PARAM0", "default_ttl": "PARAM1",
         "max_ttl": "PARAM2"},
    ),
}

#: Kernel scalar names -> canonical vocabulary.
_KERNEL_NAMES = {
    "t": "NOW",
    "start_time": "NOW",
    "p0": "PARAM0",
    "p1": "PARAM1",
    "p2": "PARAM2",
    "has_p2": "ISSET(PARAM2)",
    "lm": "FIELD:last_modified",
}

#: Kernel state arrays (indexed by ``i``) -> canonical vocabulary.
_KERNEL_ARRAYS = {
    "validated_at": "FIELD:validated_at",
    "last_modified": "FIELD:last_modified",
    "valid": "FIELD:valid",
    "expires_at": "FIELD:expires_at",
    "sx": "FIELD:server_expires",
    "has_sx": "ISSET(FIELD:server_expires)",
}

_BINOPS = {
    ast.Add: "ADD", ast.Sub: "SUB", ast.Mult: "MUL", ast.Div: "DIV",
    ast.FloorDiv: "FDIV", ast.Mod: "MOD", ast.Pow: "POW",
}
_CMPOPS = {
    ast.Lt: "LT", ast.LtE: "LE", ast.Gt: "GT", ast.GtE: "GE",
    ast.Eq: "EQ", ast.NotEq: "NE",
}

#: One branch condition: canonical string + the polarity taken.
Cond = tuple[str, bool]
#: One decision leaf: the conditions on the path + the result.
Leaf = tuple[frozenset[Cond], str]


class _CanonError(Exception):
    """A construct the normalizer does not model (reported, not raised
    through)."""


def _render(node: ast.expr, env: dict[str, str], attr_map: dict[str, str]) -> str:
    """Canonical string for an expression under ``env`` renamings."""
    if isinstance(node, ast.Constant):
        value = node.value
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if value is None:
            return "NONE"
        if isinstance(value, (int, float)):
            return repr(float(value))
        return repr(value)
    if isinstance(node, ast.Name):
        return env.get(node.id, f"VAR:{node.id}")
    if isinstance(node, ast.Attribute):
        base = _render(node.value, env, attr_map)
        if base == "ENTRY":
            return f"FIELD:{node.attr}"
        if base == "SELF":
            return attr_map.get(node.attr, f"SELFATTR:{node.attr}")
        return f"(ATTR {base} {node.attr})"
    if isinstance(node, ast.Subscript):
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in _KERNEL_ARRAYS
        ):
            return _KERNEL_ARRAYS[node.value.id]
        base = _render(node.value, env, attr_map)
        index = _render(node.slice, env, attr_map)
        return f"(INDEX {base} {index})"
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise _CanonError(f"unsupported operator {node.op!r}")
        left = _render(node.left, env, attr_map)
        right = _render(node.right, env, attr_map)
        return f"({op} {left} {right})"
    if isinstance(node, ast.BoolOp):
        op = "AND" if isinstance(node.op, ast.And) else "OR"
        parts = " ".join(_render(v, env, attr_map) for v in node.values)
        return f"({op} {parts})"
    if isinstance(node, ast.UnaryOp):
        operand = _render(node.operand, env, attr_map)
        if isinstance(node.op, ast.Not):
            return f"(NOT {operand})"
        if isinstance(node.op, ast.USub):
            return f"(NEG {operand})"
        raise _CanonError(f"unsupported unary {node.op!r}")
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1:
            raise _CanonError("chained comparison")
        op, right = node.ops[0], node.comparators[0]
        left = node.left
        if isinstance(op, (ast.Is, ast.IsNot)):
            if not (isinstance(right, ast.Constant) and right.value is None):
                raise _CanonError("is-comparison against non-None")
            inner = _render(left, env, attr_map)
            isset = f"ISSET({inner})"
            return isset if isinstance(op, ast.IsNot) else f"(NOT {isset})"
        sym = _CMPOPS.get(type(op))
        if sym is None:
            raise _CanonError(f"unsupported comparison {op!r}")
        return (
            f"({sym} {_render(left, env, attr_map)} "
            f"{_render(right, env, attr_map)})"
        )
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("min", "max"):
            parts = " ".join(_render(a, env, attr_map) for a in node.args)
            return f"({node.func.id.upper()} {parts})"
        raise _CanonError(f"call {ast.unparse(node)!r} not inlined")
    if isinstance(node, ast.IfExp):
        # Handled by the flattener via statement transformation; a
        # nested conditional inside a larger expression stays inline.
        test = _render(node.test, env, attr_map)
        body = _render(node.body, env, attr_map)
        orelse = _render(node.orelse, env, attr_map)
        return f"(IFEXP {test} {body} {orelse})"
    raise _CanonError(f"unsupported expression {ast.unparse(node)!r}")


def _render_cond(
    test: ast.expr, env: dict[str, str], attr_map: dict[str, str]
) -> Cond:
    """Canonical (condition, polarity), folding a leading NOT."""
    rendered = _render(test, env, attr_map)
    if rendered.startswith("(NOT ") and rendered.endswith(")"):
        return rendered[len("(NOT "):-1], False
    return rendered, True


@dataclass
class _FlattenContext:
    """Everything one body flattening needs."""

    attr_map: dict[str, str]
    result_target: Optional[str] = None  # "fresh" or an array name
    assumptions: Optional[dict[str, bool]] = None
    inliner: Optional["_Inliner"] = None


def _flatten(
    stmts: list[ast.stmt],
    conds: tuple[Cond, ...],
    env: dict[str, str],
    ctx: _FlattenContext,
) -> list[Leaf]:
    """Decision leaves of a statement sequence (see module docs)."""
    for idx, stmt in enumerate(stmts):
        rest = stmts[idx + 1:]
        if isinstance(stmt, ast.If):
            cond = _render_cond(stmt.test, env, ctx.attr_map)
            assumed = (ctx.assumptions or {}).get(cond[0])
            if assumed is not None:
                branch = stmt.body if assumed == cond[1] else stmt.orelse
                return _flatten(list(branch) + rest, conds, dict(env), ctx)
            return _flatten(
                list(stmt.body) + rest, conds + (cond,), dict(env), ctx
            ) + _flatten(
                list(stmt.orelse) + rest,
                conds + ((cond[0], not cond[1]),),
                dict(env),
                ctx,
            )
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return [(frozenset(conds), "NONE")]
            if ctx.inliner is not None and isinstance(stmt.value, ast.Call):
                inlined = ctx.inliner.try_inline(stmt.value, conds, env, ctx)
                if inlined is not None:
                    return inlined
            return [(frozenset(conds), _render(stmt.value, env, ctx.attr_map))]
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise _CanonError("multi-target assignment")
            target = stmt.targets[0]
            if isinstance(stmt.value, ast.IfExp):
                # x = a if c else b  ->  if c: x = a  else: x = b
                forked = ast.If(
                    test=stmt.value.test,
                    body=[ast.Assign(targets=[target], value=stmt.value.body)],
                    orelse=[
                        ast.Assign(targets=[target], value=stmt.value.orelse)
                    ],
                )
                ast.copy_location(forked, stmt)
                ast.fix_missing_locations(forked)
                return _flatten([forked] + rest, conds, dict(env), ctx)
            name = _assign_name(target, ctx)
            if name is None:
                raise _CanonError(
                    f"unsupported assignment target {ast.unparse(target)!r}"
                )
            env = dict(env)
            env[name] = _render(stmt.value, env, ctx.attr_map)
            continue
        if isinstance(stmt, ast.Expr):
            continue  # docstrings, metric observations
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            return []  # path aborts / invariant, not a result
        raise _CanonError(
            f"unsupported statement {type(stmt).__name__} at line "
            f"{stmt.lineno}"
        )
    if "__result__" in env:
        return [(frozenset(conds), env["__result__"])]
    return []


def _assign_name(target: ast.expr, ctx: _FlattenContext) -> Optional[str]:
    """Env key for an assignment target; ``__result__`` for the block's
    declared result variable/array."""
    if isinstance(target, ast.Name):
        if target.id == ctx.result_target:
            return "__result__"
        return target.id
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id == ctx.result_target
    ):
        return "__result__"
    return None


class _Inliner:
    """Inlines ``self.m(...)`` / ``super().m(...)`` tail calls through
    the symbol table."""

    def __init__(
        self, symbols: SymbolTable, module: ModuleInfo, class_qualname: str
    ) -> None:
        self.symbols = symbols
        self.module = module
        self.class_qualname = class_qualname

    def try_inline(
        self,
        call: ast.Call,
        conds: tuple[Cond, ...],
        env: dict[str, str],
        ctx: _FlattenContext,
    ) -> Optional[list[Leaf]]:
        func = call.func
        target: Optional[FunctionNode] = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            symbol = self.symbols.resolve_super_method(
                self.module, self.class_qualname, func.attr
            )
            target = symbol.node if symbol is not None else None  # type: ignore[assignment]
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            symbol = self.symbols.resolve_method(
                self.module, self.class_qualname, func.attr
            )
            target = symbol.node if symbol is not None else None  # type: ignore[assignment]
        if target is None:
            return None
        params = [a.arg for a in target.args.args]
        if params and params[0] == "self":
            params = params[1:]
        if len(params) != len(call.args):
            raise _CanonError(
                f"cannot inline {ast.unparse(call)!r}: argument mismatch"
            )
        callee_env = {"self": "SELF"}
        for param, arg in zip(params, call.args):
            callee_env[param] = _render(arg, env, ctx.attr_map)
        return _flatten(list(target.body), conds, callee_env, ctx)


def _function_leaves(
    symbols: SymbolTable,
    module: ModuleInfo,
    class_name: str,
    method: str,
    attr_map: dict[str, str],
    assumptions: Optional[dict[str, bool]] = None,
) -> list[Leaf]:
    """Leaves of a protocol method, resolved through the class chain."""
    symbol = symbols.resolve_method(module, class_name, method)
    if symbol is None:
        raise _CanonError(f"{class_name}.{method} not found")
    owner = symbol.qualname.rsplit(".", 1)[0]
    ctx = _FlattenContext(
        attr_map=attr_map,
        assumptions=assumptions,
        inliner=_Inliner(symbols, symbol.module, owner),
    )
    env = {"self": "SELF", "entry": "ENTRY", "now": "NOW"}
    return _flatten(list(symbol.node.body), (), env, ctx)


def _method_symbol(
    symbols: SymbolTable, module: ModuleInfo, class_name: str, method: str
):
    return symbols.resolve_method(module, class_name, method)


def _describe_diff(expected: list[Leaf], actual: list[Leaf]) -> str:
    """First divergence between two leaf sets, for the message."""
    expected_set, actual_set = set(expected), set(actual)
    missing = sorted(
        expected_set - actual_set, key=lambda leaf: (sorted(leaf[0]), leaf[1])
    )
    extra = sorted(
        actual_set - expected_set, key=lambda leaf: (sorted(leaf[0]), leaf[1])
    )

    def _show(leaf: Leaf) -> str:
        conds = " & ".join(
            canon if pol else f"!{canon}" for canon, pol in sorted(leaf[0])
        )
        return f"[{conds or 'always'}] -> {leaf[1]}"

    parts = []
    if missing:
        parts.append(f"protocol computes {_show(missing[0])}")
    if extra:
        parts.append(f"kernel computes {_show(extra[0])}")
    return "; ".join(parts) if parts else "leaf multiplicity differs"


@register
class FastpathDriftChecker(Checker):
    """RPR008: the fastpath kernel must stay an expression-for-expression
    transcription of the protocol predicates."""

    code = "RPR008"
    summary = (
        "fastpath transcription drift: the kernel freshness chain and "
        "CERN expiry stamps are normalized (alpha-renaming only) and "
        "structurally diffed against the protocol is_fresh/_derive_expiry "
        "bodies they transcribe"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        kernels = project.module(KERNEL_MODULE)
        if kernels is None:
            return
        run_kernel = project.symbols.functions_in(kernels).get("run_kernel")
        if run_kernel is None:
            yield self.diagnostic(
                kernels.path, 1, 1,
                "repro.fastpath.kernels defines no run_kernel; the "
                "transcription contract has nothing to check against",
            )
            return
        yield from self._check_freshness(project, kernels, run_kernel)
        yield from self._check_cern_stamps(project, kernels, run_kernel)

    # -- freshness dispatch chain --------------------------------------------

    def _check_freshness(
        self,
        project: Project,
        kernels: ModuleInfo,
        run_kernel: FunctionNode,
    ) -> Iterator[Diagnostic]:
        region = self._marker_region(kernels)
        if region is None:
            yield self.diagnostic(
                kernels.path, run_kernel.lineno, 1,
                "missing '# repro-fastpath-begin/end: freshness' anchors "
                "around the kernel freshness chain; RPR008 cannot locate "
                "the transcribed region",
            )
            return
        begin, end = region
        chain = self._freshness_chain(run_kernel, begin, end)
        if chain is None:
            yield self.diagnostic(
                kernels.path, begin, 1,
                "no 'if kind == KIND_*' dispatch chain found between the "
                "freshness anchors",
            )
            return
        branches, else_body, else_line = chain
        seen = set(branches)
        remaining = sorted(set(_SPECS) - seen)
        if else_body is not None:
            if len(remaining) != 1:
                yield self.diagnostic(
                    kernels.path, else_line, 1,
                    "the freshness chain's else branch is ambiguous: "
                    f"unmatched kinds {', '.join(remaining) or '(none)'}",
                )
            else:
                branches[remaining[0]] = (else_body, else_line)
        for kind in sorted(_SPECS):
            if kind not in branches:
                yield self.diagnostic(
                    kernels.path, begin, 1,
                    f"the freshness chain has no branch for {kind}; every "
                    "compiled protocol kind must be dispatched",
                )
                continue
            yield from self._diff_branch(project, kernels, kind, *branches[kind])

    def _diff_branch(
        self,
        project: Project,
        kernels: ModuleInfo,
        kind: str,
        body: list[ast.stmt],
        line: int,
    ) -> Iterator[Diagnostic]:
        module_name, class_name, attr_map = _SPECS[kind]
        protocol_module = project.module(module_name)
        if protocol_module is None:
            yield self.diagnostic(
                kernels.path, line, 1,
                f"{kind} transcribes {module_name}.{class_name}.is_fresh, "
                "but that module is not among the linted files — lint the "
                "whole src tree so the contract can be checked",
            )
            return
        assumptions = (
            {"ISSET(FIELD:expires_at)": True} if kind == "KIND_CERN" else None
        )
        try:
            expected = _function_leaves(
                project.symbols, protocol_module, class_name, "is_fresh",
                attr_map, assumptions,
            )
            ctx = _FlattenContext(attr_map=attr_map, result_target="fresh")
            actual = _flatten(
                list(body), (), dict(_KERNEL_NAMES), ctx
            )
        except _CanonError as exc:
            yield self.diagnostic(
                kernels.path, line, 1,
                f"cannot normalize the {kind} freshness transcription: "
                f"{exc}",
            )
            return
        if set(expected) != set(actual):
            symbol = _method_symbol(
                project.symbols, protocol_module, class_name, "is_fresh"
            )
            because = ()
            if symbol is not None:
                because = (
                    Because(
                        path=symbol.module.path,
                        line=symbol.node.lineno,
                        note=(
                            f"{class_name}.is_fresh is the reference "
                            "this branch transcribes"
                        ),
                    ),
                )
            yield self.diagnostic(
                kernels.path, line, 1,
                f"fastpath freshness for {kind} has drifted from "
                f"{class_name}.is_fresh: {_describe_diff(expected, actual)}",
                because=because,
            )

    # -- CERN expiry stamps --------------------------------------------------

    def _check_cern_stamps(
        self,
        project: Project,
        kernels: ModuleInfo,
        run_kernel: FunctionNode,
    ) -> Iterator[Diagnostic]:
        marker_lines = [
            lineno
            for lineno, text in enumerate(kernels.source.splitlines(), 1)
            if text.strip() == "# repro-fastpath: cern-stamp"
        ]
        if not marker_lines:
            yield self.diagnostic(
                kernels.path, run_kernel.lineno, 1,
                "no '# repro-fastpath: cern-stamp' anchors in the kernel; "
                "the CERN expiry stamping cannot be diffed against "
                "CERNPolicyProtocol._derive_expiry",
            )
            return
        module_name, class_name, attr_map = _SPECS["KIND_CERN"]
        protocol_module = project.module(module_name)
        if protocol_module is None:
            yield self.diagnostic(
                kernels.path, marker_lines[0], 1,
                f"CERN stamp blocks transcribe {module_name}."
                f"{class_name}._derive_expiry, but that module is not "
                "among the linted files",
            )
            return
        try:
            expected = _function_leaves(
                project.symbols, protocol_module, class_name,
                "_derive_expiry", attr_map,
            )
        except _CanonError as exc:
            yield self.diagnostic(
                protocol_module.path, 1, 1,
                f"cannot normalize {class_name}._derive_expiry: {exc}",
            )
            return
        statements = [
            node
            for node in ast.walk(run_kernel)
            if isinstance(node, ast.stmt)
        ]
        for marker in marker_lines:
            following = [s for s in statements if s.lineno > marker]
            if not following:
                yield self.diagnostic(
                    kernels.path, marker, 1,
                    "cern-stamp anchor is not followed by a statement",
                )
                continue
            stmt = min(following, key=lambda s: s.lineno)
            body = self._stamp_body(stmt)
            if body is None:
                yield self.diagnostic(
                    kernels.path, stmt.lineno, 1,
                    "cern-stamp anchor must sit directly above the "
                    "'if is_cern:' guard or the 'if has_sx[i]:' stamp",
                )
                continue
            ctx = _FlattenContext(
                attr_map=attr_map, result_target="expires_at"
            )
            try:
                actual = _flatten(body, (), dict(_KERNEL_NAMES), ctx)
            except _CanonError as exc:
                yield self.diagnostic(
                    kernels.path, stmt.lineno, 1,
                    f"cannot normalize the CERN stamp block: {exc}",
                )
                continue
            if set(expected) != set(actual):
                symbol = _method_symbol(
                    project.symbols, protocol_module, class_name,
                    "_derive_expiry",
                )
                because = ()
                if symbol is not None:
                    because = (
                        Because(
                            path=symbol.module.path,
                            line=symbol.node.lineno,
                            note=(
                                f"{class_name}._derive_expiry is the "
                                "reference this stamp transcribes"
                            ),
                        ),
                    )
                yield self.diagnostic(
                    kernels.path, stmt.lineno, 1,
                    "CERN expiry stamp has drifted from "
                    f"{class_name}._derive_expiry: "
                    f"{_describe_diff(expected, actual)}",
                    because=because,
                )

    @staticmethod
    def _stamp_body(stmt: ast.stmt) -> Optional[list[ast.stmt]]:
        """The statements of one stamp block, given the anchored stmt."""
        if not isinstance(stmt, ast.If):
            return None
        test = stmt.test
        if isinstance(test, ast.Name) and test.id == "is_cern":
            return list(stmt.body)
        if (
            isinstance(test, ast.Subscript)
            and isinstance(test.value, ast.Name)
            and test.value.id == "has_sx"
        ):
            return [stmt]
        return None

    # -- kernel region location ----------------------------------------------

    @staticmethod
    def _marker_region(kernels: ModuleInfo) -> Optional[tuple[int, int]]:
        begin = end = None
        for lineno, text in enumerate(kernels.source.splitlines(), 1):
            stripped = text.strip()
            if stripped.startswith("# repro-fastpath-begin: freshness"):
                begin = lineno
            elif stripped.startswith("# repro-fastpath-end: freshness"):
                end = lineno
        if begin is None or end is None or end <= begin:
            return None
        return begin, end

    @staticmethod
    def _freshness_chain(
        run_kernel: FunctionNode, begin: int, end: int
    ) -> Optional[
        tuple[
            dict[str, tuple[list[ast.stmt], int]],
            Optional[list[ast.stmt]],
            int,
        ]
    ]:
        """The dispatch chain between the anchors.

        Returns ``(branches, else_body, else_line)`` where branches maps
        KIND names to their body + line.
        """

        def _kind_test(test: ast.expr) -> Optional[str]:
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "kind"
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.comparators[0], ast.Name)
                and test.comparators[0].id in _SPECS
            ):
                return test.comparators[0].id
            return None

        heads = [
            node
            for node in ast.walk(run_kernel)
            if isinstance(node, ast.If)
            and begin < node.lineno < end
            and _kind_test(node.test) is not None
        ]
        if not heads:
            return None
        current = min(heads, key=lambda n: n.lineno)
        branches: dict[str, tuple[list[ast.stmt], int]] = {}
        else_body: Optional[list[ast.stmt]] = None
        else_line = current.lineno
        while True:
            kind = _kind_test(current.test)
            assert kind is not None
            branches[kind] = (list(current.body), current.lineno)
            orelse = current.orelse
            if (
                len(orelse) == 1
                and isinstance(orelse[0], ast.If)
                and _kind_test(orelse[0].test) is not None
            ):
                current = orelse[0]
                continue
            if orelse:
                else_body = list(orelse)
                else_line = orelse[0].lineno
            break
        return branches, else_body, else_line
