"""RPR009 — interprocedural unit inference (bytes / seconds / count).

RPR002 classifies an expression by its own spelling: ``total_bytes +
delay_s`` is flagged because both names carry units.  It goes blind the
moment a quantity flows through a neutral name::

    def backlog(delay_s):
        window = delay_s          # 'window' carries seconds now
        return window             # ...and so does backlog(...)

    total_bytes += backlog(d)     # RPR002 sees nothing; RPR009 flags it

This checker runs the same mixing rules with units *propagated*:

* **parameters** take the unit their name implies (same naming rules as
  RPR002, shared via :func:`~repro.lint.checkers.units
  .unit_of_identifier`) — including dataclass ``__init__`` parameters,
  which is how unit-bearing dataclass fields enter the flow;
* **locals** take the unit of their assigned expression (forward,
  flow-insensitive: branches are not joined, the last textual
  assignment before use wins);
* **returns** take the function's inferred return unit, resolved
  through the project call graph to a global fixpoint, so units flow
  through arbitrarily long chains of helpers;
* **call arguments** are checked against the callee's parameter units —
  passing a seconds value to a ``body_size`` parameter is flagged even
  though no arithmetic happens at the call site.

To keep one finding per bug, RPR009 reports a mixing site **only when
RPR002 cannot see it** — when at least one operand's unit exists only
through propagation.  Every finding carries a because-chain giving the
provenance of each propagated unit (the assignment, parameter, or
return that introduced it).

Scope: ``repro.core``, ``repro.fastpath``, ``repro.live`` — the layers
whose quantities feed Table 1 and Figures 4-8.  Like every project
checker, the propagation is deliberately under-approximate: unresolved
calls and tuple-unpacking assignments contribute no unit, so every
report rests on a provable chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.diagnostics import Because, Diagnostic
from repro.lint.project import Project
from repro.lint.registry import Checker, register
from repro.lint.checkers.units import (
    _ORDERED_CMPS,
    _is_min_max,
    infer_unit,
    unit_of_identifier,
)

SCOPED_PACKAGES = ("repro.core", "repro.fastpath", "repro.live")

#: Fixpoint bound; unit chains deeper than this stay unknown (a cycle
#: of mutually recursive helpers cannot settle anyway).
_MAX_ROUNDS = 8


def in_scope(module_name: str) -> bool:
    """True when ``module_name`` falls under a scoped package."""
    return any(
        module_name == pkg or module_name.startswith(pkg + ".")
        for pkg in SCOPED_PACKAGES
    )


@dataclass(frozen=True)
class _Inferred:
    """A propagated unit plus the evidence that produced it."""

    unit: str
    provenance: tuple[Because, ...] = ()


class _FlowAnalysis:
    """Shared inference machinery for one lint run."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph: CallGraph = project.call_graph
        #: function ref -> inferred return unit
        self.returns: dict[str, _Inferred] = {}

    # -- fixpoint ------------------------------------------------------------

    def solve(self) -> None:
        """Iterate return-unit inference to a fixpoint."""
        for _ in range(_MAX_ROUNDS):
            changed = False
            for info in self.graph.functions.values():
                inferred = self._return_unit(info)
                previous = self.returns.get(info.ref)
                if inferred is not None and (
                    previous is None or previous.unit != inferred.unit
                ):
                    self.returns[info.ref] = inferred
                    changed = True
            if not changed:
                return

    def _return_unit(self, info: FunctionInfo) -> Optional[_Inferred]:
        env = self.param_env(info)
        units: set[str] = set()
        provenance: tuple[Because, ...] = ()
        for stmt in _ordered_stmts(info.node.body):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                self.bind(env, stmt.targets[0], stmt.value, info)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self.bind(env, stmt.target, stmt.value, info)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                inferred = self.infer(stmt.value, env, info)
                if inferred is None:
                    return None  # one unit-less return: unknown overall
                units.add(inferred.unit)
                provenance = inferred.provenance
        if len(units) != 1:
            return None
        return _Inferred(units.pop(), provenance)

    # -- environments --------------------------------------------------------

    def param_env(self, info: FunctionInfo) -> dict[str, _Inferred]:
        env: dict[str, _Inferred] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            unit = unit_of_identifier(arg.arg)
            if unit is not None:
                env[arg.arg] = _Inferred(
                    unit,
                    (
                        Because(
                            path=info.module.path,
                            line=info.node.lineno,
                            note=(
                                f"parameter {arg.arg} of "
                                f"{_short(info.ref)}() carries {unit}"
                            ),
                        ),
                    ),
                )
        return env

    def bind(
        self,
        env: dict[str, _Inferred],
        target: ast.expr,
        value: ast.expr,
        info: FunctionInfo,
    ) -> None:
        """Record a local assignment's unit (plain Name targets only)."""
        if not isinstance(target, ast.Name):
            return
        inferred = self.infer(value, env, info)
        if inferred is None:
            env.pop(target.id, None)
            return
        if unit_of_identifier(target.id) == inferred.unit:
            # The name already says it; nothing propagated.
            env.pop(target.id, None)
            return
        note = Because(
            path=info.module.path,
            line=target.lineno,
            note=(
                f"{target.id} is assigned a {inferred.unit} value here"
            ),
        )
        env[target.id] = _Inferred(
            inferred.unit, _cap(inferred.provenance + (note,))
        )

    # -- expression inference ------------------------------------------------

    def infer(
        self,
        node: ast.expr,
        env: dict[str, _Inferred],
        info: FunctionInfo,
    ) -> Optional[_Inferred]:
        """Extended :func:`infer_unit`: environment + call returns."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            unit = unit_of_identifier(node.id)
            return _Inferred(unit) if unit is not None else None
        if isinstance(node, ast.Attribute):
            unit = unit_of_identifier(node.attr)
            return _Inferred(unit) if unit is not None else None
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.UAdd, ast.USub)
        ):
            return self.infer(node.operand, env, info)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left = self.infer(node.left, env, info)
            right = self.infer(node.right, env, info)
            if left is not None and right is not None and (
                left.unit == right.unit
            ):
                return _Inferred(
                    left.unit, _cap(left.provenance + right.provenance)
                )
            return None
        if _is_min_max(node):
            parts = [self.infer(arg, env, info) for arg in node.args]
            units = {p.unit if p else None for p in parts}
            if len(units) == 1 and None not in units:
                provenance: tuple[Because, ...] = ()
                for part in parts:
                    if part is not None:
                        provenance += part.provenance
                return _Inferred(units.pop(), _cap(provenance))
            return None
        if isinstance(node, ast.Call):
            return self._call_unit(node, info)
        return None

    def _call_unit(
        self, call: ast.Call, info: FunctionInfo
    ) -> Optional[_Inferred]:
        ref = self.graph._resolve_callee(info, call)
        if ref is None:
            return None
        inferred = self.returns.get(ref)
        if inferred is None:
            return None
        callee = self.graph.functions[ref]
        note = Because(
            path=callee.module.path,
            line=callee.node.lineno,
            note=f"{_short(ref)}() returns {inferred.unit}",
        )
        return _Inferred(inferred.unit, _cap(inferred.provenance + (note,)))

    def callee_params(
        self, call: ast.Call, info: FunctionInfo
    ) -> Optional[tuple[FunctionInfo, list[str]]]:
        """The resolved callee and its parameter names (sans self)."""
        ref = self.graph._resolve_callee(info, call)
        if ref is None:
            return None
        callee = self.graph.functions[ref]
        params = [
            a.arg
            for a in [
                *callee.node.args.posonlyargs, *callee.node.args.args
            ]
        ]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        return callee, params


def _cap(provenance: tuple[Because, ...]) -> tuple[Because, ...]:
    """Bound a because-chain to its three most recent steps."""
    return provenance[-3:]


def _short(ref: str) -> str:
    return ref.split("::", 1)[-1]


def _ordered_stmts(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement, nested blocks included, in source order."""
    for stmt in body:
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner and isinstance(inner[0], ast.stmt):
                yield from _ordered_stmts(inner)
        for handler in getattr(stmt, "handlers", []):
            yield from _ordered_stmts(handler.body)


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The statement's own expressions (nested blocks excluded)."""
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers"):
            continue
        nodes = value if isinstance(value, list) else [value]
        for node in nodes:
            if isinstance(node, ast.expr):
                yield node
            elif isinstance(node, ast.withitem):
                yield node.context_expr


@register
class UnitFlowChecker(Checker):
    """RPR009: the RPR002 mixing rules, with units propagated through
    signatures, returns, and locals across the project."""

    code = "RPR009"
    summary = (
        "interprocedural unit discipline: bytes/seconds/count inferred "
        "through parameters, locals, and return values (call-graph "
        "fixpoint) must not mix in arithmetic, comparisons, or call "
        "arguments (scope: repro.core, repro.fastpath, repro.live)"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        flow = _FlowAnalysis(project)
        flow.solve()
        for info in sorted(
            flow.graph.functions.values(), key=lambda i: i.ref
        ):
            if not in_scope(info.module.name):
                continue
            yield from self._check_function(flow, info)

    def _check_function(
        self, flow: _FlowAnalysis, info: FunctionInfo
    ) -> Iterator[Diagnostic]:
        env = flow.param_env(info)
        for stmt in _ordered_stmts(info.node.body):
            for root in _own_exprs(stmt):
                for node in ast.walk(root):
                    if isinstance(node, ast.expr):
                        yield from self._check_expr(flow, info, env, node)
            if isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(
                    flow, info, env, stmt, stmt.target, stmt.value,
                    "augmented assignment",
                )
            # Update the environment after checking the statement.
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                flow.bind(env, stmt.targets[0], stmt.value, info)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                flow.bind(env, stmt.target, stmt.value, info)

    def _check_expr(
        self,
        flow: _FlowAnalysis,
        info: FunctionInfo,
        env: dict[str, _Inferred],
        node: ast.expr,
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            yield from self._check_pair(
                flow, info, env, node, node.left, node.right,
                "additive arithmetic",
            )
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, _ORDERED_CMPS):
                    yield from self._check_pair(
                        flow, info, env, node, left, right,
                        "ordered comparison",
                    )
        elif _is_min_max(node):
            known = [
                (arg, inferred)
                for arg in node.args
                if (inferred := flow.infer(arg, env, info)) is not None
            ]
            for (la, lu), (ra, ru) in zip(known, known[1:]):
                if lu.unit != ru.unit and not self._rpr002_sees(la, ra):
                    yield self._mixing(
                        info, node, la, lu, ra, ru, "min()/max()"
                    )
                    break
        elif isinstance(node, ast.Call):
            yield from self._check_call_args(flow, info, env, node)

    def _check_pair(
        self,
        flow: _FlowAnalysis,
        info: FunctionInfo,
        env: dict[str, _Inferred],
        node: ast.stmt | ast.expr,
        left: ast.expr,
        right: ast.expr,
        context: str,
    ) -> Iterator[Diagnostic]:
        left_inf = flow.infer(left, env, info)
        right_inf = flow.infer(right, env, info)
        if (
            left_inf is None
            or right_inf is None
            or left_inf.unit == right_inf.unit
        ):
            return
        if self._rpr002_sees(left, right):
            return
        yield self._mixing(
            info, node, left, left_inf, right, right_inf, context
        )

    def _check_call_args(
        self,
        flow: _FlowAnalysis,
        info: FunctionInfo,
        env: dict[str, _Inferred],
        call: ast.Call,
    ) -> Iterator[Diagnostic]:
        resolved = flow.callee_params(call, info)
        if resolved is None:
            return
        callee, params = resolved
        pairs = list(zip(params, call.args))
        pairs += [
            (kw.arg, kw.value)
            for kw in call.keywords
            if kw.arg is not None and kw.arg in params
        ]
        for param, arg in pairs:
            expected = unit_of_identifier(param)
            if expected is None:
                continue
            inferred = flow.infer(arg, env, info)
            if inferred is None or inferred.unit == expected:
                continue
            because = _cap(inferred.provenance) + (
                Because(
                    path=callee.module.path,
                    line=callee.node.lineno,
                    note=(
                        f"parameter {param} of {_short(callee.ref)}() "
                        f"expects {expected}"
                    ),
                ),
            )
            yield self.diagnostic(
                info.module.path, arg.lineno, arg.col_offset + 1,
                f"argument {ast.unparse(arg)} carries {inferred.unit} "
                f"but parameter {param} of {_short(callee.ref)}() "
                f"expects {expected}; convert before the call",
                because=because,
            )

    @staticmethod
    def _rpr002_sees(left: ast.expr, right: ast.expr) -> bool:
        """True when plain local inference already flags this pair —
        RPR002 owns the finding then."""
        lu, ru = infer_unit(left), infer_unit(right)
        return lu is not None and ru is not None and lu != ru

    def _mixing(
        self,
        info: FunctionInfo,
        node: ast.stmt | ast.expr,
        left: ast.expr,
        left_inf: _Inferred,
        right: ast.expr,
        right_inf: _Inferred,
        context: str,
    ) -> Diagnostic:
        because = _cap(left_inf.provenance + right_inf.provenance)
        return self.diagnostic(
            info.module.path, node.lineno, node.col_offset + 1,
            f"{context} mixes {left_inf.unit} with {right_inf.unit} "
            f"({ast.unparse(left)} vs {ast.unparse(right)}) under "
            "propagated units; convert explicitly before combining",
            because=because,
        )
