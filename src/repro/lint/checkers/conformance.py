"""RPR003 — protocol conformance and registration.

Three structural promises tie the protocol zoo together:

1. every concrete :class:`ConsistencyProtocol` subclass in
   ``repro.core.protocols`` implements the required hook set (a ``name``
   property and ``is_fresh``) somewhere in its package-local MRO — an
   abstract leftover would only explode at instantiation time, deep in a
   sweep;
2. every such class is exported through
   ``repro/core/protocols/__init__.py``'s ``__all__`` — the experiments,
   the CLI, and the oracle all import from the package, so an unexported
   protocol is dead code;
3. every such class has a spec-rule dispatch entry in
   ``repro/verify/spec.py``'s ``rule_for`` (a ``kind is ClassName``
   comparison) — otherwise the PR-2 oracle silently skips it and its
   runs are never verified;

and, on the experiment side:

4. every module under ``repro/experiments/`` that defines an
   ``EXPERIMENT_ID`` must be registered in ``experiments/registry.py``'s
   ``_MODULES`` tuple, or ``python -m repro.experiments all`` silently
   omits the table/figure it reproduces.

The checker works purely on the ASTs in the linted
:class:`~repro.lint.project.Project`; when the counterpart modules are
not part of the lint run (e.g. linting a single unrelated file) the
cross-checks simply have nothing to say.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register

PROTOCOLS_PACKAGE = "repro.core.protocols"
PROTOCOLS_INIT = "repro.core.protocols"
SPEC_MODULE = "repro.verify.spec"
EXPERIMENTS_PACKAGE = "repro.experiments"
REGISTRY_MODULE = "repro.experiments.registry"

#: Hooks a concrete protocol must resolve to a non-abstract definition.
REQUIRED_HOOKS = ("name", "is_fresh")

_BASE_CLASS = "ConsistencyProtocol"


class _ClassInfo:
    """What RPR003 needs to know about one class definition."""

    def __init__(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        self.node = node
        self.module = module
        self.name = node.name
        self.bases = [
            b for b in (_base_name(base) for base in node.bases)
            if b is not None
        ]
        self.defined: set[str] = set()
        self.abstract: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.defined.add(stmt.name)
                if _is_abstract(stmt):
                    self.abstract.add(stmt.name)

    @property
    def is_abstract_class(self) -> bool:
        return bool(self.abstract) or "ABC" in self.bases or any(
            b.endswith(".ABC") for b in self.bases
        )


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        return ".".join(reversed(parts))
    return None


def _is_abstract(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in fn.decorator_list:
        name = _base_name(decorator)
        if name is not None and name.split(".")[-1] in (
            "abstractmethod", "abstractproperty"
        ):
            return True
    return False


def _collect_classes(modules: Iterable[ModuleInfo]) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _ClassInfo(node, module)
    return classes


def _protocol_classes(
    classes: dict[str, _ClassInfo],
) -> dict[str, _ClassInfo]:
    """Classes that transitively subclass ConsistencyProtocol."""

    def descends(info: _ClassInfo, seen: frozenset[str]) -> bool:
        for base in info.bases:
            simple = base.split(".")[-1]
            if simple == _BASE_CLASS:
                return True
            if simple in classes and simple not in seen:
                if descends(classes[simple], seen | {simple}):
                    return True
        return False

    return {
        name: info
        for name, info in classes.items()
        if name != _BASE_CLASS and descends(info, frozenset())
    }


def _resolves_hook(
    name: str, info: _ClassInfo, classes: dict[str, _ClassInfo]
) -> bool:
    """True when ``info`` inherits or defines a non-abstract ``name``."""
    if name in info.defined and name not in info.abstract:
        return True
    for base in info.bases:
        simple = base.split(".")[-1]
        base_info = classes.get(simple)
        if base_info is not None and _resolves_hook(name, base_info, classes):
            return True
    return False


def _dunder_all(module: ModuleInfo) -> Optional[set[str]]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return {
                            elt.value
                            for elt in node.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        }
    return None


def _spec_dispatched_classes(spec: ModuleInfo) -> set[str]:
    """Class names compared with ``is`` inside spec.py's rule_for."""
    dispatched: set[str] = set()
    for node in ast.walk(spec.tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "rule_for"):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Compare) and any(
                isinstance(op, ast.Is) for op in sub.ops
            ):
                for comparand in (sub.left, *sub.comparators):
                    name = _base_name(comparand)
                    if name is not None:
                        dispatched.add(name.split(".")[-1])
    return dispatched


def _registry_modules(registry: ModuleInfo) -> Optional[set[str]]:
    """Module basenames listed in registry.py's ``_MODULES`` tuple."""
    for node in registry.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "_MODULES":
                    if isinstance(node.value, (ast.Tuple, ast.List)):
                        names: set[str] = set()
                        for elt in node.value.elts:
                            name = _base_name(elt)
                            if name is not None:
                                names.add(name.split(".")[-1])
                        return names
    return None


def _experiment_id_assignment(module: ModuleInfo) -> Optional[ast.Assign]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "EXPERIMENT_ID"
                ):
                    return node
    return None


@register
class ConformanceChecker(Checker):
    """RPR003: protocols implement the hook set, are exported, and have a
    spec rule; experiment modules are registered."""

    code = "RPR003"
    summary = (
        "every ConsistencyProtocol subclass implements name/is_fresh, is "
        "exported from repro.core.protocols, and has a rule_for dispatch "
        "entry in repro/verify/spec.py; every EXPERIMENT_ID module is in "
        "experiments/registry.py's _MODULES"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        yield from self._check_protocols(project)
        yield from self._check_experiments(project)

    def _check_protocols(self, project: Project) -> Iterator[Diagnostic]:
        package_modules = project.in_package(PROTOCOLS_PACKAGE)
        if not package_modules:
            return
        classes = _collect_classes(package_modules)
        protocols = _protocol_classes(classes)

        init = project.module(PROTOCOLS_INIT)
        exported = _dunder_all(init) if init is not None else None

        spec = project.module(SPEC_MODULE)
        dispatched = _spec_dispatched_classes(spec) if spec is not None else None

        for name in sorted(protocols):
            info = protocols[name]
            line = info.node.lineno
            col = info.node.col_offset + 1
            path = info.module.path
            if info.is_abstract_class:
                continue
            for hook in REQUIRED_HOOKS:
                if not _resolves_hook(hook, info, classes):
                    yield self.diagnostic(
                        path, line, col,
                        f"protocol class {name} never provides a concrete "
                        f"{hook!r} (required consistency-protocol hook)",
                    )
            if exported is not None and name not in exported:
                yield self.diagnostic(
                    path, line, col,
                    f"protocol class {name} is not exported in "
                    f"{PROTOCOLS_INIT}.__all__",
                )
            if dispatched is not None and name not in dispatched:
                yield self.diagnostic(
                    path, line, col,
                    f"protocol class {name} has no spec-rule dispatch in "
                    f"{SPEC_MODULE}.rule_for — the repro.verify oracle "
                    "cannot certify its runs",
                )

    def _check_experiments(self, project: Project) -> Iterator[Diagnostic]:
        registry = project.module(REGISTRY_MODULE)
        if registry is None:
            return
        registered = _registry_modules(registry)
        if registered is None:
            return
        for module in project.in_package(EXPERIMENTS_PACKAGE):
            basename = module.name.rsplit(".", 1)[-1]
            if basename in ("registry", "__main__", "common", "panels"):
                continue
            assignment = _experiment_id_assignment(module)
            if assignment is None:
                continue
            if basename not in registered:
                yield self.diagnostic(
                    module.path,
                    assignment.lineno,
                    assignment.col_offset + 1,
                    f"experiment module {module.name} defines EXPERIMENT_ID "
                    f"but is not listed in {REGISTRY_MODULE}._MODULES — "
                    "'python -m repro.experiments all' will skip it",
                )
