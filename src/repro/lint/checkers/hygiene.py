"""RPR005 — mutable default arguments and shadowed builtins.

Two classic Python hazards, both of which have bitten simulation code
before (a mutable default shared across :class:`Simulation` instances
would leak counter state between sweep points):

* **mutable defaults** — a parameter default of ``[]``, ``{}``,
  ``set()``, ``list()``, ``dict()``, or a literal/comprehension thereof
  is evaluated once at def time and shared by every call;
* **shadowed builtins** — binding a name like ``list``, ``id``, or
  ``sum`` (as a parameter, assignment target, loop variable, or
  ``with``/``except`` alias) silently changes the meaning of later code
  in the scope.

The shadow list is curated to names that realistically appear in this
codebase's vocabulary; single-letter or domain names (``bytes`` is *not*
flagged as a variable named ``size_bytes`` — only the exact builtin
name is).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register

#: Builtins whose shadowing is flagged.
SHADOWED_BUILTINS = frozenset({
    "all", "any", "bool", "bytes", "callable", "dict", "dir", "enumerate",
    "filter", "float", "format", "frozenset", "hash", "id", "input", "int",
    "isinstance", "iter", "len", "list", "map", "max", "min", "next",
    "object", "open", "print", "range", "repr", "reversed", "round", "set",
    "sorted", "str", "sum", "tuple", "type", "vars", "zip",
})

_MUTABLE_CALLS = ("list", "dict", "set", "collections.defaultdict",
                  "defaultdict", "OrderedDict", "collections.OrderedDict")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            parts = [func.attr]
            value = func.value
            if isinstance(value, ast.Name):
                parts.insert(0, value.id)
            name = ".".join(parts)
        return name in _MUTABLE_CALLS
    return False


def _bound_names(target: ast.expr) -> Iterator[tuple[str, ast.expr]]:
    """Names bound by an assignment/loop target, with their nodes."""
    if isinstance(target, ast.Name):
        yield target.id, target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bound_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


@register
class HygieneChecker(Checker):
    """RPR005: no mutable parameter defaults, no shadowed builtins."""

    code = "RPR005"
    summary = (
        "no mutable default arguments ([], {}, set(), ...) and no "
        "rebinding of common builtins (list, dict, id, type, sum, ...)"
    )

    def check_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield from self._check_defaults(module, node)
                yield from self._check_params(module, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_binding(module, target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                yield from self._check_binding(module, node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_binding(module, node.target)
            elif isinstance(node, ast.comprehension):
                yield from self._check_binding(module, node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        yield from self._check_binding(
                            module, item.optional_vars
                        )
            elif isinstance(node, ast.ExceptHandler):
                if node.name is not None and node.name in SHADOWED_BUILTINS:
                    yield self._shadow(
                        module, node.name, node.lineno, node.col_offset + 1
                    )

    def _check_defaults(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> Iterator[Diagnostic]:
        args = fn.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                label = (
                    "<lambda>" if isinstance(fn, ast.Lambda) else fn.name
                )
                yield self.diagnostic(
                    module.path, default.lineno, default.col_offset + 1,
                    f"mutable default argument in {label}(): the object is "
                    "created once and shared across calls; default to None "
                    "and construct inside the function",
                )

    def _check_params(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> Iterator[Diagnostic]:
        args = fn.args
        every = (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
        for arg in every:
            if arg.arg in SHADOWED_BUILTINS:
                yield self._shadow(
                    module, arg.arg, arg.lineno, arg.col_offset + 1
                )

    def _check_binding(
        self, module: ModuleInfo, target: ast.expr
    ) -> Iterator[Diagnostic]:
        for name, node in _bound_names(target):
            if name in SHADOWED_BUILTINS:
                yield self._shadow(
                    module, name, node.lineno, node.col_offset + 1
                )

    def _shadow(
        self, module: ModuleInfo, name: str, line: int, col: int
    ) -> Diagnostic:
        return self.diagnostic(
            module.path, line, col,
            f"binding {name!r} shadows the builtin of the same name; "
            "rename to keep the builtin reachable",
        )
