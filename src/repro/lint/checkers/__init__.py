"""Built-in checkers; importing this package registers them all.

* :mod:`repro.lint.checkers.determinism` — RPR001
* :mod:`repro.lint.checkers.units` — RPR002
* :mod:`repro.lint.checkers.conformance` — RPR003
* :mod:`repro.lint.checkers.events` — RPR004
* :mod:`repro.lint.checkers.hygiene` — RPR005
* :mod:`repro.lint.checkers.obsnames` — RPR006

Third-party checkers register the same way: subclass
:class:`repro.lint.registry.Checker`, decorate with
:func:`repro.lint.registry.register`, and import the module before
calling the engine.
"""

from repro.lint.checkers import (  # noqa: F401  (registration side effects)
    asyncsafety,
    conformance,
    determinism,
    events,
    fastdrift,
    hygiene,
    obsnames,
    unitflow,
    units,
)

__all__ = [
    "asyncsafety",
    "conformance",
    "determinism",
    "events",
    "fastdrift",
    "hygiene",
    "obsnames",
    "unitflow",
    "units",
]
