"""RPR006 — observability-name discipline.

The :mod:`repro.obs` layer keys every published measurement on a string
name: counters and histograms via ``emit``/``observe``/``set_gauge``,
engine and sweep timings via ``span``.  Those names are the join key for
everything downstream — trace/metrics schemas, the Prometheus renderer,
the serial-vs-parallel equivalence tests, dashboards built on the JSONL
output.  A typo'd name does not fail; it silently becomes a *new* time
series, which is the worst possible failure mode for instrumentation.

This checker makes the name alphabet a static fact, mirroring what
RPR004 does for observer events:

* every **string literal** passed as the first argument to a call named
  ``emit``, ``observe``, or ``set_gauge`` must be declared in
  ``repro/obs/names.py``'s ``METRIC_NAMES`` tuple;
* every string literal passed to a call named ``span`` must be declared
  in ``SPAN_NAMES``;
* every string literal passed as the first argument to a call named
  ``mark`` — the live mode's cross-process causal points — must be
  declared in ``TRACE_MARK_NAMES``;
* every declared metric/span name must occur as a string literal in at
  least one *other* linted module (no dead alphabet entries).  Names
  emitted through a variable — e.g. the ``EVENT_METRICS`` tee table in
  ``repro/obs/trace.py`` or the totals dict in ``repro/faults/plan.py``
  — stay live through the dict literals that hold them.

Calls whose first argument is not a string literal are out of scope
(they are fed from tables this checker validates at their literal
source).  When ``repro.obs.names`` is not part of the lint run the
checker stays silent, so linting an isolated subtree still works.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, Project
from repro.lint.registry import Checker, register

NAMES_MODULE = "repro.obs.names"

#: Call names whose literal first argument must be a declared metric.
METRIC_CALLS = frozenset({"emit", "observe", "set_gauge"})
#: Call names whose literal first argument must be a declared span.
SPAN_CALLS = frozenset({"span"})
#: Call names whose literal first argument must be a declared trace mark.
MARK_CALLS = frozenset({"mark"})


def _declared_tuple(
    module: ModuleInfo, variable: str
) -> Optional[tuple[ast.stmt, list[str]]]:
    """The module-level ``variable = (...)`` assignment and its strings."""
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == variable:
                if isinstance(value, (ast.Tuple, ast.List)):
                    names = [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    return node, names
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of the called function, if syntactically plain."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_first_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
        node.args[0].value, str
    ):
        return node.args[0].value
    return None


def _string_literals(module: ModuleInfo) -> set[str]:
    """Every string constant in the module (docstrings included)."""
    return {
        node.value
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register
class ObsNameChecker(Checker):
    """RPR006: metric/span names used by emit/observe/set_gauge/span
    calls and the METRIC_NAMES/SPAN_NAMES alphabet must agree."""

    code = "RPR006"
    summary = (
        "every literal metric/span/mark name passed to obs emit/observe/"
        "set_gauge/span/mark is declared in repro/obs/names.py, and "
        "every declared name is used somewhere (no silent new series, "
        "no dead alphabet entries)"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        names = project.module(NAMES_MODULE)
        if names is None:
            return
        metrics = _declared_tuple(names, "METRIC_NAMES")
        spans = _declared_tuple(names, "SPAN_NAMES")
        marks = _declared_tuple(names, "TRACE_MARK_NAMES")
        first = names.tree.body[0] if names.tree.body else None
        anchor = first.lineno if first is not None else 1
        if metrics is None:
            yield self.diagnostic(
                names.path, anchor, 1,
                "repro/obs/names.py declares no METRIC_NAMES tuple — the "
                "metric alphabet is undefined",
            )
            return
        if spans is None:
            yield self.diagnostic(
                names.path, anchor, 1,
                "repro/obs/names.py declares no SPAN_NAMES tuple — the "
                "span alphabet is undefined",
            )
            return
        if marks is None:
            yield self.diagnostic(
                names.path, anchor, 1,
                "repro/obs/names.py declares no TRACE_MARK_NAMES tuple — "
                "the trace-mark alphabet is undefined",
            )
            return
        metric_decl, metric_names = metrics
        span_decl, span_names = spans
        mark_decl, mark_names = marks
        used: set[str] = set()
        for module in project.modules:
            if module.name == NAMES_MODULE:
                continue
            used |= _string_literals(module)
            yield from self._check_calls(
                module, set(metric_names), set(span_names),
                set(mark_names),
            )
        yield from self._check_liveness(
            names, metric_decl, metric_names, "METRIC_NAMES", used
        )
        yield from self._check_liveness(
            names, span_decl, span_names, "SPAN_NAMES", used
        )
        yield from self._check_liveness(
            names, mark_decl, mark_names, "TRACE_MARK_NAMES", used
        )

    def _check_calls(
        self,
        module: ModuleInfo,
        metric_names: set[str],
        span_names: set[str],
        mark_names: set[str],
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            call = _call_name(node)
            if call in METRIC_CALLS:
                alphabet, variable = metric_names, "METRIC_NAMES"
            elif call in SPAN_CALLS:
                alphabet, variable = span_names, "SPAN_NAMES"
            elif call in MARK_CALLS:
                alphabet, variable = mark_names, "TRACE_MARK_NAMES"
            else:
                continue
            name = _literal_first_arg(node)
            if name is None or name in alphabet:
                continue
            yield self.diagnostic(
                module.path, node.lineno, node.col_offset + 1,
                f"{call}() publishes undeclared name {name!r} — declare "
                f"it in {variable} (repro/obs/names.py) or fix the typo; "
                "an unknown name silently becomes a new series",
            )

    def _check_liveness(
        self,
        names: ModuleInfo,
        declaration: ast.stmt,
        declared: list[str],
        variable: str,
        used: set[str],
    ) -> Iterator[Diagnostic]:
        for name in declared:
            if name not in used:
                yield self.diagnostic(
                    names.path,
                    declaration.lineno,
                    declaration.col_offset + 1,
                    f"{variable} declares {name!r} but no linted module "
                    "references it (dead alphabet entry)",
                )
